#!/usr/bin/env python
"""Docking scan: ligand poses against a receptor with octree reuse.

The paper's motivating application (§IV-C, Step 1): "for drug-design
and docking where we need to place the ligand at thousands of different
positions w.r.t. the receptor, we can move the same octree to different
positions or rotate it … and then recompute the energy values.
Therefore, we can consider the octree construction cost as a
pre-processing cost."

This example scores a small ligand at many rigid poses around a
receptor.  The receptor's and ligand's octrees are each built once; for
every pose the ligand octree is *transformed* (no rebuild, no re-sort)
and the polarization energy of the complex is recomputed.  The binding
signal reported is ΔE_pol = E_pol(complex) − E_pol(receptor) −
E_pol(ligand), the desolvation part of a docking score.

Run:  python examples/docking_scan.py [n_poses]
"""

import sys
import time

import numpy as np

from repro import ApproxParams, Molecule, PolarizationSolver
from repro.molecules import random_ligand, synthetic_protein
from repro.molecules.molecule import SurfaceSamples
from repro.molecules.transform import RigidTransform


def merge(receptor: Molecule, ligand: Molecule, name: str) -> Molecule:
    """Concatenate two molecules (their surfaces included)."""
    rs, ls = receptor.require_surface(), ligand.require_surface()
    surface = SurfaceSamples(
        np.vstack([rs.points, ls.points]),
        np.vstack([rs.normals, ls.normals]),
        np.concatenate([rs.weights, ls.weights]),
    )
    return Molecule(
        np.vstack([receptor.positions, ligand.positions]),
        np.concatenate([receptor.charges, ligand.charges]),
        np.concatenate([receptor.radii, ligand.radii]),
        surface=surface, name=name)


def main() -> None:
    n_poses = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    params = ApproxParams(eps_born=0.9, eps_epol=0.9)

    receptor = synthetic_protein(2500, seed=7, name="receptor")
    ligand = random_ligand(40, seed=3, name="ligand")
    print(f"receptor: {receptor.natoms} atoms; ligand: {ligand.natoms} atoms")

    e_receptor = PolarizationSolver(receptor, params).energy()
    e_ligand = PolarizationSolver(ligand, params).energy()
    print(f"E_pol(receptor) = {e_receptor:.2f}, "
          f"E_pol(ligand) = {e_ligand:.2f} kcal/mol")

    # Poses: ligand approaches from random directions at grazing distance.
    approach = receptor.bounding_radius() + 6.0
    rng = np.random.default_rng(11)
    best = (np.inf, -1)
    t0 = time.perf_counter()
    for pose in range(n_poses):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        spin = RigidTransform.rotation_about_axis(
            rng.normal(size=3), rng.uniform(0, 2 * np.pi))
        move = RigidTransform.translation_of(
            receptor.centroid() + approach * direction
            - ligand.centroid()).compose(spin)

        posed = Molecule(move.apply(ligand.positions), ligand.charges,
                         ligand.radii, name=f"pose{pose}")
        lsurf = ligand.require_surface()
        posed = posed.with_surface(SurfaceSamples(
            move.apply(lsurf.points), move.apply_vectors(lsurf.normals),
            lsurf.weights))

        complex_mol = merge(receptor, posed, name=f"complex{pose}")
        e_complex = PolarizationSolver(complex_mol, params).energy()
        delta = e_complex - e_receptor - e_ligand
        marker = ""
        if delta < best[0]:
            best = (delta, pose)
            marker = "  <- best so far"
        print(f"pose {pose:3d}: dE_pol = {delta:9.3f} kcal/mol{marker}")
    dt = time.perf_counter() - t0
    print(f"\nscanned {n_poses} poses in {dt:.1f} s "
          f"({dt / n_poses * 1000:.0f} ms/pose)")
    print(f"best pose: #{best[1]} with dE_pol = {best[0]:.3f} kcal/mol")
    print("(positive dE_pol = desolvation penalty; the full docking score "
          "adds Coulomb/LJ terms)")


if __name__ == "__main__":
    main()
