#!/usr/bin/env python
"""Rigid-body pose refinement by following the polarization force.

Extends the docking example with the force API: after a coarse pose is
chosen, the ligand is *refined* by translating it along the net GB
polarization force acting on its atoms (with Born radii re-evaluated
every few steps).  This is the gradient piece an MD/docking engine
would combine with Coulomb and Lennard-Jones terms.

Run:  python examples/pose_refinement.py [steps]
"""

import sys

import numpy as np

from repro import ApproxParams, Molecule, PolarizationSolver
from repro.core.born_octree import born_radii_octree
from repro.core.forces import forces_octree
from repro.molecules import random_ligand, synthetic_protein
from repro.molecules.molecule import SurfaceSamples


def merged(receptor: Molecule, lig_pos: np.ndarray,
           ligand: Molecule) -> Molecule:
    rs = receptor.require_surface()
    ls = ligand.require_surface()
    offset = lig_pos.mean(axis=0) - ligand.positions.mean(axis=0)
    return Molecule(
        np.vstack([receptor.positions, lig_pos]),
        np.concatenate([receptor.charges, ligand.charges]),
        np.concatenate([receptor.radii, ligand.radii]),
        surface=SurfaceSamples(
            np.vstack([rs.points, ls.points + offset]),
            np.vstack([rs.normals, ls.normals]),
            np.concatenate([rs.weights, ls.weights])),
        name="complex")


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    params = ApproxParams()
    receptor = synthetic_protein(1500, seed=7)
    ligand = random_ligand(35, seed=4)
    nrec = receptor.natoms

    # Start the ligand off to one side of the receptor.
    direction = np.array([1.0, 0.3, -0.2])
    direction /= np.linalg.norm(direction)
    lig_pos = (ligand.positions - ligand.centroid()
               + receptor.centroid()
               + (receptor.bounding_radius() + 8.0) * direction)

    print(f"receptor {nrec} atoms, ligand {ligand.natoms} atoms; "
          f"{steps} refinement steps")
    step_size = 0.5  # Å per unit normalised force
    for it in range(steps):
        complex_mol = merged(receptor, lig_pos, ligand)
        born = born_radii_octree(complex_mol, params)
        energy = PolarizationSolver(complex_mol, params).energy()
        fr = forces_octree(complex_mol, born.radii, params,
                           atoms_tree=born.atoms_tree)
        net = fr.forces[nrec:].sum(axis=0)
        norm = np.linalg.norm(net)
        print(f"step {it:2d}: E_pol = {energy:12.4f} kcal/mol, "
              f"|F_ligand| = {norm:8.3f} kcal/mol/Å")
        if norm < 1e-6:
            break
        lig_pos = lig_pos + step_size * net / norm

    print("\nrefined displacement:",
          np.round(lig_pos.mean(axis=0) - ligand.centroid(), 2))
    print("(the polarization force alone pulls charged ligands toward "
          "the solvent-rich side; a docking engine adds Coulomb/LJ)")


if __name__ == "__main__":
    main()
