#!/usr/bin/env python
"""Drive the implicit-solvent minimiser and thermostat end-to-end.

The paper's intro motivates GB energies with conformation search
("determining the molecular conformation with minimal total free
energy").  This example runs that machinery on a small protein:
backtracking minimisation over the GB + soft-sphere potential, then a
short Langevin shake.

An honest caveat it also demonstrates: the library's potential is
*only* polarization + a steric floor — with no bonds or LJ attraction,
gradient descent legitimately compacts the structure (opposite charges
approach until the soft spheres stop them).  The minimiser's contract —
monotone energy decrease between Born refreshes, bounded displacement
per step — is what is being exercised; a production force field would
add its bonded/LJ terms through the same ``energy_and_forces``
interface.

Run:  python examples/minimize_capsid_patch.py [natoms]
"""

import sys

import numpy as np

from repro import ApproxParams
from repro.md import ImplicitSolventPotential, langevin, minimize
from repro.molecules import synthetic_protein


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    mol = synthetic_protein(natoms, seed=27)
    rng = np.random.default_rng(3)

    # Strain: shove 5 % of the atoms toward their neighbours.
    x = mol.positions.copy()
    victims = rng.choice(mol.natoms, size=max(2, mol.natoms // 20),
                         replace=False)
    x[victims] += rng.normal(scale=0.8, size=(len(victims), 3))

    pot = ImplicitSolventPotential(mol, ApproxParams(),
                                   use_octree=(natoms > 600))
    pot.refresh(x)
    e0 = pot.energy(x)
    print(f"{mol.natoms} atoms; strained energy: {e0:10.2f} kcal/mol")

    res = minimize(pot, x, max_steps=30, refresh_every=10)
    mono = bool(np.all(np.diff(res.energies) <= 1e-9))
    rms = float(np.sqrt(np.mean(np.sum((res.positions - x) ** 2,
                                       axis=1))))
    print(f"minimised:  {res.energy:10.2f} kcal/mol "
          f"({res.steps_taken} accepted steps, {res.refreshes} Born "
          f"refreshes)")
    print(f"monotone within refresh windows: {mono};  "
          f"RMS displacement: {rms:.2f} Å")
    print("(the large drop is implicit-solvent compaction — this toy "
          "potential has no bonds/LJ to oppose it; see the module "
          "docstring)")

    shake = langevin(pot, res.positions, steps=30, dt=0.001,
                     temperature=300.0, friction=20.0, seed=5)
    print(f"Langevin shake (30 x 1 fs): final E = "
          f"{shake.energies[-1]:10.2f} kcal/mol, "
          f"<T> = {shake.mean_temperature(skip=10):5.0f} K")


if __name__ == "__main__":
    main()
