#!/usr/bin/env python
"""Virus capsid at scale: distributed vs hybrid on the simulated cluster.

Reproduces the paper's large-molecule story (§V-B, §V-F) on a Cucumber
Mosaic Virus stand-in: a hollow icosahedral protein shell.  One real
octree solve provides the work profile; the simulated Lonestar4 cluster
then replays it as ``OCT_MPI`` (12 ranks/node) and ``OCT_MPI+CILK``
(2 ranks × 6 threads/node) across core counts, printing running time,
speedup and per-process memory — including the ~6× memory ratio the
paper measures between the two layouts.

Run:  python examples/virus_capsid.py [natoms] [max_nodes]
"""

import sys
import time

from repro.analysis.tables import Table
from repro.cluster.machine import lonestar4
from repro.config import ApproxParams
from repro.molecules import virus_capsid
from repro.parallel import WorkProfile, simulate_fig4


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    max_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    machine = lonestar4(nodes=max_nodes)

    print(f"building a ~{natoms}-atom capsid …")
    t0 = time.perf_counter()
    capsid = virus_capsid(natoms, seed=11)
    print(f"  {capsid.natoms} atoms, {capsid.nqpoints} quadrature points "
          f"({time.perf_counter() - t0:.1f} s)")

    t0 = time.perf_counter()
    profile = WorkProfile.from_molecule(
        capsid, ApproxParams(eps_born=0.9, eps_epol=0.9, approx_math=True))
    print(f"solved once for the work profile "
          f"({time.perf_counter() - t0:.1f} s): "
          f"E_pol = {profile.energy:.1f} kcal/mol")

    table = Table(["cores", "OCT_MPI (s)", "OCT_MPI+CILK (s)",
                   "hybrid wins", "mem/proc MPI (MB)",
                   "mem/node MPI (MB)", "mem/node HYB (MB)"],
                  title="simulated Lonestar4 scaling")
    for cores in (12, 24, 48, 96, 144, 192, 288, 480):
        if cores > machine.total_cores:
            break
        mpi = simulate_fig4(profile, cores, 1, machine=machine, seed=1)
        hyb = simulate_fig4(profile, max(1, cores // 6), 6,
                            machine=machine, seed=1)
        mb = 1.0 / 1e6
        table.add_row(cores, mpi.wall_seconds, hyb.wall_seconds,
                      hyb.wall_seconds < mpi.wall_seconds,
                      mpi.memory_per_process() * mb,
                      mpi.memory_per_node(12) * mb,
                      hyb.memory_per_node(2) * mb)
    print()
    print(table.render())
    print("\nnote: per-process data is fully replicated (the paper "
          "distributes only work), so a 12-rank node holds ~6x the bytes "
          "of a 2-rank hybrid node — the paper's 8.2 GB vs 1.4 GB effect.")


if __name__ == "__main__":
    main()
