#!/usr/bin/env python
"""Speed–accuracy trade-off: sweeping the approximation parameter ε.

The paper's octree algorithms are tunable (§II, §V-E): increasing ε
accepts more node pairs as "far", trading accuracy for speed, while the
octree itself never changes — the "space-independent speed-accuracy
tradeoff" property.  This example sweeps ε for both the Born-radius and
energy traversals on one molecule and prints error vs the naive exact
reference together with the interaction counts that shrink as ε grows.

Run:  python examples/epsilon_tradeoff.py [natoms]
"""

import sys
import time

from repro import ApproxParams, PolarizationSolver
from repro.analysis.tables import Table
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules import synthetic_protein


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    mol = synthetic_protein(natoms, seed=13)
    print(f"molecule: {mol.natoms} atoms, {mol.nqpoints} q-points")

    radii_ref = born_radii_naive_r6(mol)
    e_ref = epol_naive(mol, radii_ref)
    print(f"naive exact E_pol = {e_ref:.3f} kcal/mol "
          f"({mol.natoms ** 2} pair terms)\n")

    table = Table(["eps", "E_pol", "% err", "exact pair terms",
                   "far node pairs", "time (s)"],
                  title="speed-accuracy sweep (eps_born = eps_epol = eps)")
    for eps in (0.1, 0.2, 0.3, 0.5, 0.7, 0.9):
        t0 = time.perf_counter()
        solver = PolarizationSolver(
            mol, ApproxParams(eps_born=eps, eps_epol=eps))
        energy = solver.energy()
        dt = time.perf_counter() - t0
        rep = solver.report()
        err = 100.0 * abs(energy - e_ref) / abs(e_ref)
        table.add_row(eps, energy, err,
                      rep.epol_counts.exact_interactions,
                      rep.epol_counts.far_evaluations, dt)
    print(table.render())
    print("\nlarger eps -> fewer exact terms, more far-field collapses, "
          "larger (but bounded) error; the octree is built once per "
          "molecule regardless of eps.")


if __name__ == "__main__":
    main()
