#!/usr/bin/env python
"""Flexible-molecule trajectory: dynamic octree maintenance in action.

The paper's case against nonbonded lists (§II and its ref [8]) is that
for *flexible* molecules — where atoms move every step — an nblist
update is expensive and cutoff-cubic, while an octree can be maintained
cheaply.  This example walks a synthetic protein through an MD-like
random trajectory, *refitting* the atoms octree each step (rebuilding
only when the refit degrades), and recomputes E_pol along the way,
reporting the refit/rebuild decisions and the drift of the energy.

Run:  python examples/flexible_md.py [steps]
"""

import sys
import time

import numpy as np

from repro import ApproxParams, Molecule
from repro.core.born_octree import born_radii_octree
from repro.core.energy_octree import epol_octree
from repro.molecules import sample_surface, synthetic_protein
from repro.octree import build_octree, update_octree


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    params = ApproxParams()
    mol = synthetic_protein(2000, seed=19)
    rng = np.random.default_rng(7)

    pos = mol.positions.copy()
    atoms_tree = build_octree(pos, params.leaf_size)
    rebuilds = 0

    print(f"{mol.natoms} atoms, {steps} MD-like steps "
          f"(0.08 Å RMS jiggle + slow collective drift)\n")
    print("step | E_pol (kcal/mol) | refit/rebuild | radius inflation")
    t0 = time.perf_counter()
    for step in range(steps):
        # Thermal jiggle plus a slow breathing mode.
        pos = pos + rng.normal(scale=0.08, size=pos.shape)
        pos = pos * (1.0 + 0.002 * np.sin(step / 3.0))

        atoms_tree, stats = update_octree(atoms_tree, pos)
        rebuilds += stats.rebuilt

        # Surface resampling is the physically honest per-step cost for
        # the Born integral; for this demo we re-sample every step.
        moved = sample_surface(
            Molecule(pos, mol.charges, mol.radii, name=f"step{step}"))
        born = born_radii_octree(moved, params, atoms_tree=atoms_tree)
        energy = epol_octree(moved, born.radii, params,
                             atoms_tree=atoms_tree).energy
        print(f"{step:4d} | {energy:16.3f} | "
              f"{'rebuild' if stats.rebuilt else 'refit  '} | "
              f"{stats.radius_inflation:6.3f}")
    dt = time.perf_counter() - t0
    print(f"\n{steps} steps in {dt:.1f} s; {rebuilds} full rebuilds — "
          "gentle motion is absorbed by refits (an nblist would have "
          "paid a cutoff-cubic update every step)")


if __name__ == "__main__":
    main()
