#!/usr/bin/env python
"""Quickstart: polarization energy of one synthetic protein.

Generates a 3,000-atom folded-protein-like molecule, computes its
surface-based r⁶ Born radii and GB polarization energy with the octree
solver, and compares against the naive exact reference — the paper's
core accuracy claim (<1 % error at ε = 0.9) in ~20 lines.

Run:  python examples/quickstart.py [natoms]
"""

import sys
import time

from repro import ApproxParams, PolarizationSolver
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules import synthetic_protein


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"generating a ~{natoms}-atom synthetic protein …")
    mol = synthetic_protein(natoms, seed=42)
    print(f"  {mol.natoms} atoms, {mol.nqpoints} surface quadrature points")

    t0 = time.perf_counter()
    solver = PolarizationSolver(mol, ApproxParams(eps_born=0.9,
                                                  eps_epol=0.9))
    energy = solver.energy()
    t_oct = time.perf_counter() - t0
    print(f"octree solver:  E_pol = {energy:12.3f} kcal/mol   ({t_oct:.2f} s)")

    t0 = time.perf_counter()
    radii = born_radii_naive_r6(mol)
    e_naive = epol_naive(mol, radii)
    t_naive = time.perf_counter() - t0
    print(f"naive exact:    E_pol = {e_naive:12.3f} kcal/mol   ({t_naive:.2f} s)")

    err = 100.0 * abs(energy - e_naive) / abs(e_naive)
    print(f"error vs naive: {err:.3f} %   (paper: < 1 % at eps = 0.9)")

    rep = solver.report()
    print(f"traversal: {rep.epol_counts.far_evaluations} far node pairs, "
          f"{rep.epol_counts.exact_interactions} exact pair terms "
          f"(naive would be {mol.natoms ** 2})")


if __name__ == "__main__":
    main()
