"""repro — octree-based hybrid-parallel GB polarization energy.

Reproduction of Tithi & Chowdhury, *"Polarization Energy on a Cluster
of Multicores"* (SC 2012): a hierarchical O(M log M) solver for the
surface-based r⁶ Generalized-Born polarization energy, its distributed
(``OCT_MPI``) and hybrid (``OCT_MPI+CILK``) parallelisations on a
simulated cluster of multicores, and emulators of the five MD packages
the paper compares against.

Quick start::

    from repro import PolarizationSolver, ApproxParams
    from repro.molecules import synthetic_protein

    mol = synthetic_protein(5000, seed=1)
    solver = PolarizationSolver(mol, ApproxParams())
    print(solver.energy())           # kcal/mol
"""

from repro.config import ApproxParams, ParallelConfig
from repro.constants import COULOMB_KCAL, EPSILON_SOLVENT, TAU_WATER, tau
from repro.core.solver import PolarizationSolver, SolverReport
from repro.molecules.molecule import Molecule, SurfaceSamples

__version__ = "1.0.0"

__all__ = [
    "ApproxParams",
    "ParallelConfig",
    "PolarizationSolver",
    "SolverReport",
    "Molecule",
    "SurfaceSamples",
    "COULOMB_KCAL",
    "EPSILON_SOLVENT",
    "TAU_WATER",
    "tau",
    "__version__",
]
