"""Physical constants and unit conventions.

All geometry is in angstroms (Å), charges in units of the elementary
charge *e*, and energies in kcal/mol.  These are the conventions used by
the MD packages the paper compares against (Amber, Gromacs, NAMD, Tinker,
GBr6), which lets energy values be compared directly.
"""

from __future__ import annotations

#: Coulomb's constant in kcal·Å/(mol·e²) — the standard MD electrostatics
#: prefactor (often written ``332.0636`` in Amber/CHARMM source).
COULOMB_KCAL = 332.063713

#: Dielectric constant of water at 300 K, the solvent the paper assumes.
EPSILON_SOLVENT = 80.0

#: Interior (solute) dielectric constant for the GB model.
EPSILON_INTERIOR = 1.0


def tau(epsilon_solvent: float = EPSILON_SOLVENT,
        epsilon_interior: float = EPSILON_INTERIOR) -> float:
    """Return the GB dielectric prefactor ``τ = 1/ε_in − 1/ε_solv``.

    With ``ε_in = 1`` this reduces to the paper's ``(1 − 1/ε_solv)`` from
    Eq. 2.  The polarization energy is ``E_pol = −τ/2 · Σ q_i q_j / f_GB``
    (in Gaussian units; multiplied by :data:`COULOMB_KCAL` for kcal/mol).
    """
    if epsilon_solvent <= 0 or epsilon_interior <= 0:
        raise ValueError("dielectric constants must be positive")
    return 1.0 / epsilon_interior - 1.0 / epsilon_solvent


#: Default ``τ`` for water over vacuum interior.
TAU_WATER = tau()

#: 4π, used by the r⁶ Born-radius surface integral (paper Eq. 4).
FOUR_PI = 12.566370614359172

#: Deterministic cap on effective Born radii (Å), the ``rgbmax`` of real
#: GB packages.  Atoms whose accumulated integral is tiny or nonpositive
#: (numerically "infinitely buried") get this radius; a fixed constant
#: keeps serial, work-division and data-distributed solvers bit-consistent.
RGBMAX = 30.0
