"""Per-tenant token-bucket rate limiting with an injectable clock.

Classic token bucket: a tenant's bucket holds up to ``burst`` tokens
and refills at ``rate_per_s``.  Admission takes one token; an empty
bucket is a typed :class:`~repro.edge.errors.RateLimitedError` whose
``retry_after_s`` is the *exact* refill time for one token — a pure
function of the injected clock, so the 429 boundary (and the header
derived from it) is deterministic in tests (the
:class:`~repro.serve.resilience.CircuitBreaker` clock idiom).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from repro import obs
from repro.edge.auth import TenantConfig
from repro.edge.errors import RateLimitedError

__all__ = ["RateLimiter"]


class RateLimiter:
    """One token bucket per tenant, lazily created, thread-safe."""

    def __init__(self, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = obs.named_lock("edge.ratelimit._lock")
        #: tenant name → (tokens, last refill t).  guarded-by: _lock
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def check(self, tenant: TenantConfig) -> None:
        """Take one token, or raise :class:`RateLimitedError`.

        The retry hint is ``(1 - tokens) / rate`` — when the bucket
        will next hold a whole token at the configured refill rate.
        """
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(
                tenant.name, (float(tenant.burst), now))
            tokens = min(float(tenant.burst),
                         tokens + (now - last) * tenant.rate_per_s)
            if tokens >= 1.0:
                self._buckets[tenant.name] = (tokens - 1.0, now)
                return
            self._buckets[tenant.name] = (tokens, now)
            retry_after = (1.0 - tokens) / tenant.rate_per_s
        if obs.is_enabled():
            obs.registry.counter(
                "edge.ratelimited",
                "requests refused by per-tenant token buckets").inc()
        raise RateLimitedError(tenant.name, retry_after)

    def tokens(self, tenant: TenantConfig) -> float:
        """Current token count (refilled to the injected clock)."""
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(
                tenant.name, (float(tenant.burst), now))
            return min(float(tenant.burst),
                       tokens + (now - last) * tenant.rate_per_s)
