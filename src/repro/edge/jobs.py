"""Background-job table over the serve tier's ticket machinery.

``POST /v1/jobs`` submits a solve and returns immediately with a job
ticket; ``GET /v1/jobs/<ticket>`` polls it.  The table is a thin,
bounded index from seeded job ids to the service's own
:class:`~repro.serve.service.Ticket` objects — completion, first-set-
wins delivery and coalescing all stay where they already live.

Bounded by contract (the RPR008 discipline): at most ``capacity``
jobs are retained.  Completed jobs are evicted oldest-first to make
room; when every retained job is still running the table refuses new
work with a typed 503 :class:`~repro.edge.errors.JobsFullError` —
explicit backpressure, never unbounded growth.  Capacity is claimed
with :meth:`JobTable.reserve` *before* the solve is submitted to the
backend, so a full table rejects the request before any work is
admitted — a 503 never strands a running, untracked ticket.

Tenant isolation: a job is only visible to the tenant that created
it; a foreign (or unknown) ticket is the same 404, so job ids leak
nothing across tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import obs
from repro.edge.errors import JobsFullError, NotFoundError
from repro.serve.service import Ticket

__all__ = ["JobRecord", "JobTable"]


@dataclass(frozen=True)
class JobRecord:
    """One background job: identity plus the serve-tier ticket."""

    job_id: str
    tenant: str
    key: str
    ticket: Ticket
    created_t: float

    @property
    def done(self) -> bool:
        return self.ticket.done()


class JobTable:
    """Bounded, tenant-scoped id → ticket index."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = obs.named_lock("edge.jobs._lock")
        self._jobs: Dict[str, JobRecord] = {}   # guarded-by: _lock
        self._order: List[str] = []             # guarded-by: _lock
        self._reserved = 0                      # guarded-by: _lock

    def reserve(self) -> None:
        """Claim one slot *before* submitting to the backend.

        Raises :class:`JobsFullError` when no slot can be made (every
        retained job still running), so the caller rejects the request
        without ever admitting backend work it cannot track.  Pair
        with :meth:`create` (``reserved=True``) on success or
        :meth:`release` if the backend submit fails.
        """
        with self._lock:
            if len(self._order) + self._reserved >= self.capacity:
                self._evict_done()
            if len(self._order) + self._reserved >= self.capacity:
                raise JobsFullError(
                    len(self._order) + self._reserved, self.capacity)
            self._reserved += 1

    def release(self) -> None:
        """Return a reserved slot (the backend submit failed)."""
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1

    def create(self, job_id: str, tenant: str, key: str,
               ticket: Ticket, created_t: float, *,
               reserved: bool = False) -> JobRecord:
        """Register a submitted ticket; evicts done jobs if full.

        ``reserved=True`` consumes a slot claimed via
        :meth:`reserve`, so registration cannot fail after the solve
        was already admitted.
        """
        rec = JobRecord(job_id=job_id, tenant=tenant, key=key,
                        ticket=ticket, created_t=created_t)
        with self._lock:
            if reserved and self._reserved > 0:
                self._reserved -= 1
            if len(self._order) + self._reserved >= self.capacity:
                self._evict_done()
            if len(self._order) + self._reserved >= self.capacity:
                raise JobsFullError(
                    len(self._order) + self._reserved, self.capacity)
            self._jobs[job_id] = rec
            self._order.append(job_id)
        if obs.is_enabled():
            obs.registry.counter(
                "edge.jobs.created",
                "background jobs accepted via POST /v1/jobs").inc()
        return rec

    def _evict_done(self) -> None:
        # guarded-by: _lock (callers hold it).  Oldest-first, done-only:
        # a running job is never dropped — its ticket would be stranded.
        # Reserved (submit-in-flight) slots count against capacity.
        excess = len(self._order) + self._reserved - self.capacity + 1
        keep: List[str] = []
        for jid in self._order:
            if excess > 0 and self._jobs[jid].done:
                del self._jobs[jid]
                excess -= 1
            else:
                keep.append(jid)
        self._order = keep

    def get(self, job_id: str, tenant: str) -> JobRecord:
        """The tenant's job, or 404 (unknown and foreign look alike)."""
        with self._lock:
            rec = self._jobs.get(job_id)
        if rec is None or rec.tenant != tenant:
            raise NotFoundError(
                f"no such job {job_id!r}",
                hint="job ids are tenant-scoped; POST /v1/jobs "
                     "returns yours")
        return rec

    def counts(self) -> Dict[str, int]:
        """``{"open": running, "done": finished, "retained": total}``."""
        with self._lock:
            records = list(self._jobs.values())
        done = sum(1 for r in records if r.done)
        return {"open": len(records) - done, "done": done,
                "retained": len(records)}
