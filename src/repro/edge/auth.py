"""Tenant registry and bearer-token authentication.

A tenant is a name plus a static bearer token plus its quota knobs
(request rate, burst, body-size limit).  The registry is immutable
after construction — the edge holds no mutable auth state, so
authentication takes no locks and is trivially thread-safe under the
ThreadingHTTPServer.

Tokens travel as ``Authorization: Bearer <token>``.  Lookup failures
are one typed :class:`~repro.edge.errors.UnauthorizedError` regardless
of *why* (missing header, malformed scheme, unknown token) so the
response does not leak which tokens exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.edge.errors import UnauthorizedError

__all__ = ["TenantConfig", "TenantRegistry", "DEFAULT_MAX_BODY_BYTES"]

#: Solve bodies are recipes (a few hundred bytes), not arrays; 64 KiB
#: is two orders of magnitude of headroom.
DEFAULT_MAX_BODY_BYTES = 64 * 1024


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity and quotas.

    ``rate_per_s``/``burst`` parameterize the per-tenant token bucket
    (:mod:`repro.edge.ratelimit`); ``max_body_bytes`` bounds one
    request body (413 beyond it).
    """

    name: str
    token: str
    rate_per_s: float = 50.0
    burst: int = 20
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.token:
            raise ValueError(f"tenant {self.name!r} needs a token")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")


class TenantRegistry:
    """Immutable token → tenant lookup."""

    def __init__(self, tenants: Iterable[TenantConfig]) -> None:
        self._by_token: Dict[str, TenantConfig] = {}
        self._by_name: Dict[str, TenantConfig] = {}
        for t in tenants:
            if t.name in self._by_name:
                raise ValueError(f"duplicate tenant name {t.name!r}")
            if t.token in self._by_token:
                raise ValueError(
                    f"tenant {t.name!r} reuses another tenant's token")
            self._by_name[t.name] = t
            self._by_token[t.token] = t
        if not self._by_name:
            raise ValueError("registry needs at least one tenant")

    @classmethod
    def from_specs(cls, specs: Iterable[str], *,
                   rate_per_s: float = 50.0, burst: int = 20,
                   max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
                   ) -> "TenantRegistry":
        """Build from CLI ``name:token[:rate[:burst]]`` strings."""
        tenants: List[TenantConfig] = []
        for spec in specs:
            parts = spec.split(":")
            if len(parts) < 2 or len(parts) > 4:
                raise ValueError(
                    f"bad tenant spec {spec!r}: use "
                    f"name:token[:rate_per_s[:burst]]")
            name, token = parts[0], parts[1]
            rate = float(parts[2]) if len(parts) > 2 else rate_per_s
            b = int(parts[3]) if len(parts) > 3 else burst
            tenants.append(TenantConfig(
                name=name, token=token, rate_per_s=rate, burst=b,
                max_body_bytes=max_body_bytes))
        return cls(tenants)

    @property
    def tenants(self) -> List[TenantConfig]:
        return sorted(self._by_name.values(), key=lambda t: t.name)

    @property
    def max_body_bytes(self) -> int:
        """The largest body any registered tenant may send (the
        transport reads at most this many bytes plus one)."""
        return max(t.max_body_bytes for t in self._by_name.values())

    def get(self, name: str) -> Optional[TenantConfig]:
        return self._by_name.get(name)

    def authenticate(self, authorization: Optional[str]) -> TenantConfig:
        """Resolve an ``Authorization`` header value to its tenant.

        Raises :class:`UnauthorizedError` on a missing header, a
        non-Bearer scheme, or an unknown token.
        """
        if not authorization:
            raise UnauthorizedError()
        scheme, _, credential = authorization.partition(" ")
        if scheme.lower() != "bearer" or not credential.strip():
            raise UnauthorizedError()
        tenant = self._by_token.get(credential.strip())
        if tenant is None:
            raise UnauthorizedError()
        return tenant
