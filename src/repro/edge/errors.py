"""Typed errors of the HTTP edge.

Every error the edge returns over the wire is one of these classes:
each carries the HTTP ``status`` it maps to, a stable machine-readable
``code`` (the error taxonomy of ``docs/HTTP.md``), and — following the
:class:`~repro.guard.errors.DiagnosticError` conventions — a concrete
fix ``hint``.  :meth:`EdgeError.to_body` renders the JSON error body
every non-2xx response carries, so clients can write policy against
``code`` instead of parsing prose.

Backpressure errors from the serve tier
(:class:`~repro.serve.errors.ServiceOverloadedError`,
:class:`~repro.serve.errors.QueueFullError`) are converted at the
boundary by :func:`from_backpressure`; the admission controller's
``retry_after_s`` hint survives the conversion and is surfaced as the
``Retry-After`` response header.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.guard.errors import DiagnosticError
from repro.serve.errors import QueueFullError, ServiceOverloadedError

__all__ = [
    "EdgeError",
    "BadRequestError",
    "UnauthorizedError",
    "NotFoundError",
    "MethodNotAllowedError",
    "PayloadTooLargeError",
    "RateLimitedError",
    "OverloadedError",
    "UpstreamQueueFullError",
    "JobsFullError",
    "SolveTimeoutError",
    "from_backpressure",
]


class EdgeError(DiagnosticError, RuntimeError):
    """Base of every error the edge returns over HTTP.

    ``status`` is the HTTP status code, ``code`` the stable
    machine-readable taxonomy entry, and ``retry_after_s`` — when not
    ``None`` — becomes the ``Retry-After`` header.
    """

    status: int = 500
    code: str = "internal"

    def __init__(self, message: str, *, hint: str = "",
                 retry_after_s: Optional[float] = None) -> None:
        self.retry_after_s = retry_after_s
        super().__init__(message, phase="edge", hint=hint)

    def to_body(self) -> Dict[str, object]:
        """The JSON error body (``{"error": {...}}``)."""
        detail: Dict[str, object] = {
            "code": self.code,
            "status": self.status,
            "message": str(self.args[0]) if self.args else self.code,
        }
        if self.hint:
            detail["hint"] = self.hint
        if self.retry_after_s is not None:
            detail["retry_after_s"] = float(self.retry_after_s)
        return {"error": detail}


class BadRequestError(EdgeError):
    """400 — the request body or path is malformed."""

    status = 400
    code = "bad_request"


class UnauthorizedError(EdgeError):
    """401 — missing or unknown tenant token."""

    status = 401
    code = "unauthorized"

    def __init__(self, message: str = "missing or invalid bearer "
                                      "token") -> None:
        super().__init__(
            message,
            hint="send 'Authorization: Bearer <token>' for a "
                 "registered tenant")


class NotFoundError(EdgeError):
    """404 — unknown route or unknown/foreign job ticket."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(EdgeError):
    """405 — the route exists but not for this HTTP method."""

    status = 405
    code = "method_not_allowed"

    def __init__(self, method: str, allowed: Sequence[str]) -> None:
        self.allowed = tuple(allowed)
        super().__init__(
            f"method {method} not allowed here",
            hint=f"use {' or '.join(self.allowed)}")


class PayloadTooLargeError(EdgeError):
    """413 — the request body exceeds the tenant's size limit."""

    status = 413
    code = "payload_too_large"

    def __init__(self, size: int, limit: int) -> None:
        self.size = int(size)
        self.limit = int(limit)
        super().__init__(
            f"request body of {size} bytes exceeds the tenant limit "
            f"of {limit} bytes",
            hint="shrink the request (solve bodies are recipes, not "
                 "arrays) or raise the tenant's max_body_bytes")


class RateLimitedError(EdgeError):
    """429 — the tenant's token bucket is empty."""

    status = 429
    code = "rate_limited"

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        self.tenant = tenant
        super().__init__(
            f"tenant {tenant!r} exceeded its request rate; retry "
            f"after {retry_after_s:.3f}s",
            hint="spread requests out or raise the tenant's "
                 "rate_per_s/burst",
            retry_after_s=retry_after_s)


class OverloadedError(EdgeError):
    """429 — the serve tier's admission controller shed the request."""

    status = 429
    code = "overloaded"


class JobsFullError(EdgeError):
    """503 — the background-job table is at capacity."""

    status = 503
    code = "jobs_full"

    def __init__(self, open_jobs: int, capacity: int) -> None:
        self.open_jobs = int(open_jobs)
        self.capacity = int(capacity)
        super().__init__(
            f"job table full ({open_jobs} of {capacity} jobs still "
            f"running)",
            hint="poll outstanding tickets to completion, retry "
                 "later, or raise job_capacity")


class UpstreamQueueFullError(EdgeError):
    """503 — the serve tier's bounded queue rejected the request."""

    status = 503
    code = "queue_full"


class SolveTimeoutError(EdgeError):
    """504 — a synchronous solve missed its deadline."""

    status = 504
    code = "deadline_exceeded"

    def __init__(self, waited_s: float) -> None:
        self.waited_s = float(waited_s)
        super().__init__(
            f"solve did not complete within the {waited_s:g}s "
            f"synchronous budget",
            hint="raise deadline_s, or submit via POST /v1/jobs and "
                 "poll the ticket")


def from_backpressure(
        exc: Union[ServiceOverloadedError, QueueFullError]) -> EdgeError:
    """Convert serve-tier backpressure into the edge taxonomy.

    Admission shedding keeps its ``retry_after_s`` hint (surfaced as
    ``Retry-After``); a hard-full queue maps to 503 with the observed
    depth in the message.
    """
    if isinstance(exc, ServiceOverloadedError):
        return OverloadedError(
            str(exc.args[0]) if exc.args else "service overloaded",
            hint=exc.hint, retry_after_s=exc.retry_after_s)
    return UpstreamQueueFullError(
        str(exc.args[0]) if exc.args else "job queue full",
        hint=exc.hint)
