"""Payload and credential redaction for edge request logging.

This module is the *only* place edge code may turn request bodies,
headers or tokens into loggable material — lint rule RPR010 flags any
logging-sink call elsewhere in ``repro/edge`` whose arguments name raw
bodies or credentials.  The helpers never return the sensitive bytes:
bodies become a length + content digest (enough to correlate a log
line with a cache key or a replayed request), credential-bearing
headers become :data:`REDACTED`, and tokens become a short digest
prefix that identifies *which* token without revealing it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping

__all__ = [
    "REDACTED",
    "SENSITIVE_HEADERS",
    "body_digest",
    "redact_headers",
    "redact_token",
]

#: Replacement value for credential-bearing header values.
REDACTED = "[REDACTED]"

#: Lower-cased header names whose values never reach a log record.
SENSITIVE_HEADERS = frozenset({
    "authorization", "proxy-authorization", "cookie", "set-cookie",
    "x-api-key", "x-repro-token",
})


def body_digest(data: bytes) -> str:
    """A loggable fingerprint of a request body (never the bytes)."""
    if not data:
        return "sha256:empty"
    return "sha256:" + hashlib.sha256(data).hexdigest()[:16]


def redact_token(value: str) -> str:
    """Identify a token in logs without revealing it (digest prefix)."""
    if not value:
        return REDACTED
    digest = hashlib.sha256(value.encode("utf-8")).hexdigest()[:8]
    return f"sha256:{digest}"


def redact_headers(headers: Mapping[str, str]) -> Dict[str, str]:
    """Lower-cased copy of ``headers`` with credentials redacted."""
    out: Dict[str, str] = {}
    for name, value in headers.items():
        key = name.lower()
        out[key] = REDACTED if key in SENSITIVE_HEADERS else value
    return out
