"""repro.edge — the multi-tenant HTTP front-end of the serve tier.

The ROADMAP's "network front-end" item made concrete: a stdlib-only
HTTP API (``http.server``; no new dependencies) in front of
:class:`~repro.serve.service.SolveService` and
:class:`~repro.fleet.fleet.ShardedFleet`, so the batched, resilient,
sharded solve stack of PRs 5–9 is reachable as a *service* rather
than a library call.

Layers, outermost first:

* :mod:`repro.edge.server` — :class:`EdgeServer`, the threaded
  socket transport (one thread per connection, bounded reads);
* :mod:`repro.edge.app` — :class:`EdgeApp`, transport-independent
  routing + middleware: bearer-token tenancy (:mod:`~.auth`),
  per-tenant token-bucket rate limits (:mod:`~.ratelimit`), body-size
  limits, typed JSON errors (:mod:`~.errors`), security headers,
  structured redacted request logging (:mod:`~.reqlog`,
  :mod:`~.redaction`) and background jobs (:mod:`~.jobs`);
* the serve/fleet backend — untouched: the edge submits the same
  :class:`~repro.serve.request.SolveRequest` objects the in-process
  path does, so coalescing, caching and energies are bitwise
  identical across the wire.

Determinism is a feature of the surface: clocks are injectable,
request/job ids are seeded, and logged fields never read the wall
clock — the whole middleware stack is unit-testable byte-for-byte.
``repro serve --http`` is the CLI surface; see ``docs/HTTP.md``.
"""

from repro.edge.app import (
    EdgeApp,
    EdgeResponse,
    SECURITY_HEADERS,
    result_to_json,
    workload_bodies,
)
from repro.edge.auth import (
    DEFAULT_MAX_BODY_BYTES,
    TenantConfig,
    TenantRegistry,
)
from repro.edge.errors import (
    BadRequestError,
    EdgeError,
    JobsFullError,
    MethodNotAllowedError,
    NotFoundError,
    OverloadedError,
    PayloadTooLargeError,
    RateLimitedError,
    SolveTimeoutError,
    UnauthorizedError,
    UpstreamQueueFullError,
    from_backpressure,
)
from repro.edge.jobs import JobRecord, JobTable
from repro.edge.ratelimit import RateLimiter
from repro.edge.redaction import (
    REDACTED,
    SENSITIVE_HEADERS,
    body_digest,
    redact_headers,
    redact_token,
)
from repro.edge.reqlog import RequestLog
from repro.edge.server import EdgeServer

__all__ = [
    "EdgeApp",
    "EdgeResponse",
    "SECURITY_HEADERS",
    "result_to_json",
    "workload_bodies",
    "TenantConfig",
    "TenantRegistry",
    "DEFAULT_MAX_BODY_BYTES",
    "EdgeError",
    "BadRequestError",
    "UnauthorizedError",
    "NotFoundError",
    "MethodNotAllowedError",
    "PayloadTooLargeError",
    "RateLimitedError",
    "OverloadedError",
    "UpstreamQueueFullError",
    "JobsFullError",
    "SolveTimeoutError",
    "from_backpressure",
    "JobRecord",
    "JobTable",
    "RateLimiter",
    "REDACTED",
    "SENSITIVE_HEADERS",
    "body_digest",
    "redact_headers",
    "redact_token",
    "RequestLog",
    "EdgeServer",
]
