"""The edge application: routing + middleware over a serve backend.

:class:`EdgeApp` is transport-independent: :meth:`EdgeApp.handle` maps
``(method, path, headers, body)`` to a complete
:class:`EdgeResponse`, so every middleware behavior — auth, rate
limits, size limits, typed errors, redacted logging — is unit-testable
with an injected clock and no sockets.  The HTTP transport
(:mod:`repro.edge.server`) is a thin adapter over this method.

Routes
------
* ``POST /v1/solve`` — synchronous, deadline-bounded solve;
* ``POST /v1/jobs`` / ``GET /v1/jobs/<ticket>`` — background solve +
  ticket polling (:mod:`repro.edge.jobs`);
* ``GET /healthz`` — queue/breaker/fleet/job summary (unauthenticated);
* ``GET /metrics`` — the obs registry's Prometheus text exposition
  (unauthenticated).

The backend is either a :class:`~repro.serve.service.SolveService` or
a :class:`~repro.fleet.fleet.ShardedFleet`; both share the submit/
ticket surface, so one app serves both ``--shards 1`` and a fleet.

Solve bodies are *recipes* (the workload-file entry schema:
``atoms``/``seed``/``capsid`` plus ε knobs), not coordinate arrays:
the molecule is rebuilt seeded on the server, so an HTTP request's
content fingerprint — and therefore its cache key, coalescing and
bitwise energy — is identical to the same request submitted
in-process.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Tuple, Union

from repro import obs
from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.edge.auth import TenantConfig, TenantRegistry
from repro.edge.errors import (
    BadRequestError,
    EdgeError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    SolveTimeoutError,
    from_backpressure,
)
from repro.edge.jobs import JobTable
from repro.edge.ratelimit import RateLimiter
from repro.edge.redaction import body_digest
from repro.edge.reqlog import RequestLog
from repro.fleet.fleet import ShardedFleet
from repro.molecules.generator import synthetic_protein, virus_capsid
from repro.molecules.molecule import Molecule
from repro.serve.errors import QueueFullError, ServiceOverloadedError
from repro.serve.request import SolveRequest, SolveResult
from repro.serve.service import LATENCY_BOUNDS_SECONDS, SolveService

__all__ = ["EdgeApp", "EdgeResponse", "SECURITY_HEADERS",
           "result_to_json", "workload_bodies"]

#: Hardening headers attached to every response.
SECURITY_HEADERS = {
    "X-Content-Type-Options": "nosniff",
    "X-Frame-Options": "DENY",
    "Content-Security-Policy": "default-src 'none'",
    "Referrer-Policy": "no-referrer",
    "Cache-Control": "no-store",
}

#: Fields a solve body may carry (the workload-entry schema minus
#: ``repeat``, which only makes sense in a trace file).
_SOLVE_FIELDS = frozenset({
    "atoms", "seed", "capsid", "eps_born", "eps_epol", "approx_math",
    "method", "priority", "deadline_s", "tau", "idempotency_key",
    "tenant",
})

#: Largest recipe the edge will build (synthetic molecules are O(atoms)
#: to generate; this is a request-hygiene bound, not a solver limit).
MAX_ATOMS = 20_000

#: Distinct molecule recipes kept in memory (FIFO; a re-request after
#: eviction rebuilds the seeded molecule bit-identically).
MAX_RECIPES = 32


@dataclass
class EdgeResponse:
    """One complete HTTP response, transport-agnostic."""

    status: int
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def json(self) -> object:
        """Decode the body (tests/clients convenience)."""
        return json.loads(self.body.decode("utf-8"))


def result_to_json(result: SolveResult) -> Dict[str, object]:
    """The wire form of a :class:`SolveResult`.

    ``energy_hex`` is ``float.hex()`` of the energy — the bitwise
    acceptance channel (two runs agree iff these strings match).
    """
    energy = result.energy
    return {
        "key": result.key,
        "status": result.status,
        "energy": energy,
        "energy_hex": float(energy).hex() if energy is not None else None,
        "method": result.method,
        "rung": result.rung,
        "degradations": result.degradations,
        "cache": result.cache,
        "wait_seconds": result.wait_seconds,
        "service_seconds": result.service_seconds,
        "worker": result.worker,
        "attempt": result.attempt,
        "shard": result.shard,
        "error": result.error,
    }


def workload_bodies(path: Union[str, Path]
                    ) -> List[Tuple[str, Dict[str, object]]]:
    """Explode a workload file into ``(tenant, solve body)`` pairs.

    The repeat-expansion mirror of
    :func:`repro.serve.workload.load_workload`: each entry's
    ``repeat`` becomes that many identical bodies, every body keeps
    the entry's ``tenant`` (default ``"default"``), and the ``repeat``
    /``tenant`` keys themselves are stripped — what remains is exactly
    what ``POST /v1/solve`` accepts, so a recorded multi-tenant trace
    replays through the edge verbatim.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = doc.get("requests", []) if isinstance(doc, dict) else doc
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected a non-empty list of "
                         f"request entries (or {{'requests': [...]}})")
    out: List[Tuple[str, Dict[str, object]]] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "atoms" not in entry:
            raise ValueError(f"{path}: entry {i} must be an object "
                             f"with at least an 'atoms' field")
        tenant = str(entry.get("tenant", "default"))
        body = {k: v for k, v in entry.items()
                if k not in ("repeat", "tenant")}
        # One dict per repeat: list-multiplication would alias a single
        # body object across every repeated entry.
        out.extend((tenant, dict(body))
                   for _ in range(max(1, int(entry.get("repeat", 1)))))
    return out


class EdgeApp:
    """Routing + middleware over one serve/fleet backend."""

    def __init__(self, backend: Union[SolveService, ShardedFleet],
                 tenants: TenantRegistry, *,
                 clock: Callable[[], float] = time.monotonic,
                 seed: int = 0,
                 limiter: Optional[RateLimiter] = None,
                 log_stream: Optional[IO[str]] = None,
                 sync_timeout_s: float = 60.0,
                 job_capacity: int = 256) -> None:
        if sync_timeout_s <= 0:
            raise ValueError("sync_timeout_s must be positive")
        self.backend = backend
        self.tenants = tenants
        self.sync_timeout_s = float(sync_timeout_s)
        self.limiter = limiter or RateLimiter(clock=clock)
        self.log = RequestLog(seed=seed, clock=clock,
                              stream=log_stream)
        self.jobs = JobTable(capacity=job_capacity)
        self._mol_lock = obs.named_lock("edge.app._mol_lock")
        self._molecules: Dict[Tuple[int, int, bool], Molecule] = \
            {}                                 # guarded-by: _mol_lock
        self._mol_order: List[Tuple[int, int, bool]] = \
            []                                 # guarded-by: _mol_lock

    # -- transport surface ------------------------------------------------

    @property
    def read_cap_bytes(self) -> int:
        """Most bytes a transport needs to read to judge any tenant's
        limit (one byte over the largest limit proves oversize)."""
        return self.tenants.max_body_bytes + 1

    def handle(self, method: str, path: str,
               headers: Optional[Dict[str, str]] = None,
               body: bytes = b"",
               declared_length: Optional[int] = None) -> EdgeResponse:
        """One request through the full middleware stack."""
        headers = headers or {}
        t0 = self.log.now()
        request_id = self.log.next_id("req")
        box: Dict[str, str] = {"tenant": "-"}
        error_code = ""
        try:
            resp = self._route(method, path, headers, body,
                               declared_length, box)
        except EdgeError as exc:
            error_code = exc.code
            resp = self._error_response(exc)
        except (ServiceOverloadedError, QueueFullError) as exc:
            edge_exc = from_backpressure(exc)
            error_code = edge_exc.code
            resp = self._error_response(edge_exc)
        # Deliberate boundary: whatever breaks, the edge answers with a
        # typed 500 instead of a dropped connection; the failure is
        # counted as edge.errors.internal.
        except Exception:  # lint: ignore[RPR003]
            error_code = "internal"
            resp = self._error_response(EdgeError(
                "internal edge error",
                hint="see the server log; the request was not charged "
                     "against your quota"))
        duration = self.log.now() - t0
        self.log.record(
            request_id=request_id, tenant=box["tenant"], method=method,
            path=path, status=resp.status, t_s=t0,
            duration_s=duration, bytes_in=len(body),
            body_sha256=body_digest(body), error_code=error_code)
        self._observe(method, box["tenant"], resp.status, duration)
        resp.headers.setdefault("X-Request-Id", request_id)
        return resp

    # -- routing ----------------------------------------------------------

    def _route(self, method: str, path: str, headers: Dict[str, str],
               body: bytes, declared_length: Optional[int],
               box: Dict[str, str]) -> EdgeResponse:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            self._require(method, ("GET",))
            return self._healthz()
        if path == "/metrics":
            self._require(method, ("GET",))
            return self._metrics()
        if path == "/v1/solve":
            self._require(method, ("POST",))
            tenant = self._admit(headers, body, declared_length, box)
            return self._solve_sync(tenant, body)
        if path == "/v1/jobs":
            self._require(method, ("POST",))
            tenant = self._admit(headers, body, declared_length, box)
            return self._job_create(tenant, body)
        if path.startswith("/v1/jobs/"):
            self._require(method, ("GET",))
            tenant = self._admit(headers, body, declared_length, box)
            return self._job_poll(tenant, path[len("/v1/jobs/"):])
        raise NotFoundError(
            f"no route for {path!r}",
            hint="see docs/HTTP.md for the endpoint list")

    @staticmethod
    def _require(method: str, allowed: Tuple[str, ...]) -> None:
        if method not in allowed:
            raise MethodNotAllowedError(method, allowed)

    def _admit(self, headers: Dict[str, str], body: bytes,
               declared_length: Optional[int],
               box: Dict[str, str]) -> TenantConfig:
        """Auth → size limit → rate limit, in that order."""
        authorization = next(
            (v for k, v in headers.items()
             if k.lower() == "authorization"), None)
        try:
            tenant = self.tenants.authenticate(authorization)
        except EdgeError:
            if obs.is_enabled():
                obs.registry.counter(
                    "edge.auth.failures",
                    "requests with missing/unknown bearer "
                    "tokens").inc()
            raise
        box["tenant"] = tenant.name
        size = len(body) if declared_length is None \
            else max(len(body), int(declared_length))
        if size > tenant.max_body_bytes:
            if obs.is_enabled():
                obs.registry.counter(
                    "edge.rejected.oversize",
                    "requests over the tenant body-size limit").inc()
            raise PayloadTooLargeError(size, tenant.max_body_bytes)
        self.limiter.check(tenant)
        return tenant

    # -- endpoints --------------------------------------------------------

    def _solve_sync(self, tenant: TenantConfig,
                    body: bytes) -> EdgeResponse:
        request = self._parse_solve(tenant, body)
        ticket = self.backend.submit(request)
        budget = request.deadline_s if request.deadline_s is not None \
            else self.sync_timeout_s
        try:
            result = ticket.result(timeout=budget)
        except TimeoutError as exc:
            raise SolveTimeoutError(budget) from exc
        if obs.is_enabled():
            obs.registry.counter(
                "edge.solve.sync",
                "synchronous solves served via POST /v1/solve").inc()
        status = {"ok": 200, "degraded": 200,
                  "expired": 504}.get(result.status, 502)
        return self._json(status, {"result": result_to_json(result)})

    def _job_create(self, tenant: TenantConfig,
                    body: bytes) -> EdgeResponse:
        request = self._parse_solve(tenant, body)
        job_id = self.log.next_id("job")
        # Claim table capacity before the backend sees the request: a
        # full table must answer 503 *without* admitting a solve whose
        # ticket nobody could ever poll.
        self.jobs.reserve()
        try:
            ticket = self.backend.submit(request)
        # Deliberate boundary: whatever submit raises (including the
        # backpressure types handled upstream), the reserved slot must
        # go back before the error propagates.
        except BaseException:  # lint: ignore[RPR003]
            self.jobs.release()
            raise
        rec = self.jobs.create(job_id, tenant.name, ticket.key, ticket,
                               created_t=self.log.now(), reserved=True)
        return self._json(202, {
            "ticket": rec.job_id,
            "key": rec.key,
            "done": False,
            "status_url": f"/v1/jobs/{rec.job_id}",
        })

    def _job_poll(self, tenant: TenantConfig,
                  job_id: str) -> EdgeResponse:
        rec = self.jobs.get(job_id, tenant.name)
        if obs.is_enabled():
            obs.registry.counter(
                "edge.jobs.polls",
                "GET /v1/jobs/<ticket> polls").inc()
        doc: Dict[str, object] = {
            "ticket": rec.job_id, "key": rec.key, "done": rec.done,
            "result": None,
        }
        if rec.done:
            doc["result"] = result_to_json(rec.ticket.result(timeout=0))
        return self._json(200, doc)

    def _healthz(self) -> EdgeResponse:
        doc: Dict[str, object] = {
            "status": "ok",
            "jobs": self.jobs.counts(),
            # Count only: /healthz is unauthenticated, and tenant
            # names are customer identity — never disclosed here.
            "tenants": len(self.tenants.tenants),
        }
        backend = self.backend
        if isinstance(backend, ShardedFleet):
            fstats = backend.stats()
            doc["backend"] = "fleet"
            doc["fleet"] = {
                "shards_live": fstats.shards_live,
                "shards_dead": fstats.shards_dead,
                "queue_depth": sum(fstats.queue_depth.values()),
                "outstanding": backend.router.outstanding,
                "submitted": fstats.submitted,
                "completed": fstats.completed,
                "shed": fstats.shed,
                "rerouted": fstats.rerouted,
            }
            if fstats.shards_live == 0:
                doc["status"] = "unavailable"
        else:
            doc["backend"] = "service"
            doc["service"] = {
                "queue_depth": backend.queue_depth,
                "pending": backend.pending,
                "breaker": (backend.cache.breaker.state
                            if backend.cache.breaker is not None
                            else "absent"),
                "cache_entries": backend.cache.stats().entries,
            }
        return self._json(200, doc)

    def _metrics(self) -> EdgeResponse:
        text = obs.metrics_to_prometheus(obs.registry)
        return EdgeResponse(
            status=200, body=text.encode("utf-8"),
            headers=self._headers(
                "text/plain; version=0.0.4; charset=utf-8"))

    # -- parsing ----------------------------------------------------------

    def _parse_solve(self, tenant: TenantConfig,
                     body: bytes) -> SolveRequest:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(
                f"malformed JSON body: {exc}",
                hint="POST a JSON object; see docs/HTTP.md for the "
                     "solve schema") from exc
        if not isinstance(doc, dict):
            raise BadRequestError(
                "solve body must be a JSON object",
                hint="see docs/HTTP.md for the solve schema")
        unknown = sorted(set(doc) - _SOLVE_FIELDS)
        if unknown:
            raise BadRequestError(
                f"unknown solve field(s): {', '.join(unknown)}",
                hint=f"allowed fields: "
                     f"{', '.join(sorted(_SOLVE_FIELDS))}")
        body_tenant = doc.get("tenant")
        if body_tenant is not None and body_tenant != tenant.name:
            raise BadRequestError(
                f"body names tenant {body_tenant!r} but the bearer "
                f"token belongs to {tenant.name!r}",
                hint="drop the body field or use the matching token")
        if "atoms" not in doc:
            raise BadRequestError(
                "solve body needs an 'atoms' field",
                hint="molecules are seeded recipes: atoms + seed "
                     "(+ capsid)")
        try:
            atoms = int(doc["atoms"])
            seed = int(doc.get("seed", 0))
            capsid = bool(doc.get("capsid", False))
            params = ApproxParams(
                eps_born=float(doc.get("eps_born", 0.9)),
                eps_epol=float(doc.get("eps_epol", 0.9)),
                approx_math=bool(doc.get("approx_math", False)))
            priority = int(doc.get("priority", 0))
            deadline_s = doc.get("deadline_s")
            deadline = None if deadline_s is None else float(deadline_s)
            tau = float(doc.get("tau", TAU_WATER))
            raw_key = str(doc.get("idempotency_key", ""))
            method = str(doc.get("method", "octree"))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"bad solve field: {exc}",
                hint="numeric fields must be JSON numbers") from exc
        if not 1 <= atoms <= MAX_ATOMS:
            raise BadRequestError(
                f"atoms must be in [1, {MAX_ATOMS}], got {atoms}",
                hint="split larger systems or raise MAX_ATOMS "
                     "server-side")
        molecule = self._molecule(atoms, seed, capsid)
        # The serve tier coalesces/caches on SolveRequest.key(), which
        # returns an explicit idempotency_key verbatim.  Namespace
        # client-supplied keys per tenant so tenant B replaying tenant
        # A's key can never coalesce onto (or poison the cache with)
        # A's result.
        idempotency_key = f"{tenant.name}:{raw_key}" if raw_key else ""
        try:
            return SolveRequest(
                molecule=molecule, params=params, method=method,
                priority=priority, deadline_s=deadline,
                idempotency_key=idempotency_key, tau=tau,
                tenant=tenant.name)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from exc

    def _molecule(self, atoms: int, seed: int,
                  capsid: bool) -> Molecule:
        """Recipe-cached seeded molecule (same recipe semantics as
        :mod:`repro.serve.workload`, so fingerprints line up)."""
        recipe = (int(atoms), int(seed), bool(capsid))
        with self._mol_lock:
            mol = self._molecules.get(recipe)
        if mol is not None:
            return mol
        # Build outside the lock (O(atoms) generation must not stall
        # other requests); a racing duplicate build is harmless — the
        # seeded generator is deterministic, so last-write-wins keeps
        # the same fingerprint.
        mol = (virus_capsid(recipe[0], seed=recipe[1]) if capsid
               else synthetic_protein(recipe[0], seed=recipe[1]))
        with self._mol_lock:
            if recipe not in self._molecules:
                self._molecules[recipe] = mol
                self._mol_order.append(recipe)
                while len(self._mol_order) > MAX_RECIPES:
                    oldest = self._mol_order.pop(0)
                    del self._molecules[oldest]
            mol = self._molecules[recipe]
        return mol

    # -- responses --------------------------------------------------------

    @staticmethod
    def _headers(content_type: str) -> Dict[str, str]:
        headers = dict(SECURITY_HEADERS)
        headers["Content-Type"] = content_type
        return headers

    def _json(self, status: int,
              doc: Dict[str, object]) -> EdgeResponse:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        return EdgeResponse(
            status=status, body=body,
            headers=self._headers("application/json; charset=utf-8"))

    def _error_response(self, exc: EdgeError) -> EdgeResponse:
        resp = self._json(exc.status, exc.to_body())
        if exc.retry_after_s is not None:
            # RFC 9110 Retry-After is integer delta-seconds; the exact
            # float is in the JSON body as retry_after_s.
            resp.headers["Retry-After"] = str(
                max(1, math.ceil(exc.retry_after_s)))
        if exc.status == 405 and isinstance(exc, MethodNotAllowedError):
            resp.headers["Allow"] = ", ".join(exc.allowed)
        return resp

    # -- instrumentation --------------------------------------------------

    @staticmethod
    def _observe(method: str, tenant: str, status: int,
                 duration_s: float) -> None:
        if not obs.is_enabled():
            return
        obs.registry.counter(
            "edge.requests", "HTTP requests handled by the edge").inc()
        obs.registry.counter(
            f"edge.responses.{status // 100}xx",
            "edge responses by status class").inc()
        if tenant != "-":
            obs.registry.counter(
                f"edge.tenant.requests.{tenant}",
                "edge requests per tenant").inc()
        obs.registry.histogram(
            "edge.request_seconds",
            "edge request handling time",
            bounds=LATENCY_BOUNDS_SECONDS).observe(duration_s)
