"""Structured request logging with seeded IDs and injected time.

One JSON record per completed request: seeded request id, tenant,
method, path, status, error code, body size + digest, and a duration
measured on the injected clock.  Nothing sensitive enters a record —
callers pass material through :mod:`repro.edge.redaction` (enforced by
lint rule RPR010) — and nothing reads the wall clock: ``t_s`` is the
injected clock's value at arrival, so two same-seed runs with the same
fake clock produce byte-identical logs.

Records stream to an optional text sink (the CI artifact) and are
retained in a bounded in-memory ring for tests and ``stats()``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from hashlib import sha256
from typing import Callable, Deque, Dict, IO, List, Optional

from repro import obs

__all__ = ["RequestLog"]

#: In-memory ring size: enough for any test or smoke run to inspect,
#: bounded so a long-lived edge cannot grow without limit (RPR008).
RING_SIZE = 1024


class RequestLog:
    """Thread-safe structured request log.

    ``clock`` stamps arrival times and durations; ``seed`` drives the
    request-id sequence (``req-<sha256(seed:n)[:12]>``).  ``stream``
    receives one JSON line per record as it is committed; line writes
    are serialized by a dedicated cold lock so the hot record lock is
    never held across I/O.
    """

    def __init__(self, *, seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 stream: Optional[IO[str]] = None) -> None:
        self._seed = int(seed)
        self._clock = clock
        self._stream = stream
        self._lock = obs.named_lock("edge.reqlog._lock")
        self._records: Deque[Dict[str, object]] = deque(maxlen=RING_SIZE)
        # guarded-by: _lock (records ring + id counter)
        self._counter = 0
        self._io_lock = obs.named_lock("edge.reqlog._io_lock")

    def next_id(self, kind: str = "req") -> str:
        """The next seeded id (``req-…`` / ``job-…``)."""
        with self._lock:
            n = self._counter
            self._counter += 1
        digest = sha256(f"{self._seed}:{n}".encode()).hexdigest()[:12]
        return f"{kind}-{digest}"

    def now(self) -> float:
        """The injected clock (shared so app timings line up)."""
        return self._clock()

    def record(self, *, request_id: str, tenant: str, method: str,
               path: str, status: int, t_s: float,
               duration_s: float, bytes_in: int, body_sha256: str,
               error_code: str = "") -> Dict[str, object]:
        """Commit one completed request to the ring (and the stream)."""
        rec: Dict[str, object] = {
            "id": request_id,
            "t_s": round(float(t_s), 6),
            "tenant": tenant,
            "method": method,
            "path": path,
            "status": int(status),
            "error_code": error_code,
            "bytes_in": int(bytes_in),
            "body_sha256": body_sha256,
            "duration_s": round(float(duration_s), 6),
        }
        with self._lock:
            self._records.append(rec)
        stream = self._stream
        if stream is not None:
            line = json.dumps(rec, sort_keys=True)
            with self._io_lock:
                stream.write(line + "\n")
                stream.flush()
        return rec

    def records(self) -> List[Dict[str, object]]:
        """Snapshot of the retained ring (oldest first)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
