"""Threaded stdlib HTTP transport over :class:`~repro.edge.app.EdgeApp`.

A thin ``http.server`` adapter — no framework, no new dependency: one
:class:`ThreadingHTTPServer` whose handler reads the request, hands it
to :meth:`EdgeApp.handle`, and writes the complete response back.  All
policy (auth, limits, errors, logging, metrics) lives in the app; the
transport only enforces the *read cap*: it never reads more than one
byte past the largest registered body limit, so an oversized upload
costs bounded memory and the app can still answer a typed 413 from
the declared ``Content-Length``.

The default handler access log is disabled — the app's structured,
redacted request log (:mod:`repro.edge.reqlog`) is the log of record.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.edge.app import EdgeApp

__all__ = ["EdgeServer"]


class _EdgeHandler(BaseHTTPRequestHandler):
    """Per-connection adapter; all behavior delegates to the app."""

    server_version = "repro-edge"
    sys_version = ""
    protocol_version = "HTTP/1.1"
    #: Socket timeout (seconds) applied to every connection.  A client
    #: that declares Content-Length N and then stalls mid-body would
    #: otherwise block rfile.read() forever and pin a handler thread
    #: (slowloris); on timeout http.server drops the connection.
    timeout = 30.0

    def _dispatch(self) -> None:
        app: EdgeApp = self.server.app  # type: ignore[attr-defined]
        try:
            declared = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            declared = 0
        declared = max(0, declared)
        cap = app.read_cap_bytes
        body = self.rfile.read(min(declared, cap)) if declared else b""
        resp = app.handle(self.command, self.path,
                          dict(self.headers.items()), body,
                          declared_length=declared)
        truncated = declared > len(body)
        self.send_response(resp.status)
        for name, value in resp.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(resp.body)))
        if truncated:
            # Unread body bytes would desync keep-alive framing; drop
            # the connection after answering (the 413 path).
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(resp.body)

    def do_GET(self) -> None:    # noqa: N802 — http.server contract
        self._dispatch()

    def do_POST(self) -> None:   # noqa: N802 — http.server contract
        self._dispatch()

    def do_PUT(self) -> None:    # noqa: N802 — http.server contract
        self._dispatch()

    def do_DELETE(self) -> None:  # noqa: N802 — http.server contract
        self._dispatch()

    def log_message(self, format: str, *args: object) -> None:
        """Silenced: the structured request log is the log of record."""


class EdgeServer:
    """Owns the listening socket and its acceptor thread.

    ``port=0`` binds an ephemeral port (the default for tests); the
    bound address is available as :attr:`address` after construction.
    Context-manager use closes the socket and joins the thread.
    """

    def __init__(self, app: EdgeApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), _EdgeHandler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound."""
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "EdgeServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="edge.http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "EdgeServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
