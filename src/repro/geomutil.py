"""Small geometric utilities shared across subpackages.

The central tool is :class:`UniformCellGrid`, a classic uniform spatial
hash used (a) by the surface sampler to cull buried quadrature points
and (b) by the baseline emulators to build cutoff nonbonded lists.  It
is intentionally simple — the *octree* is the paper's contribution; the
cell grid is the commodity substrate the comparison packages use.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np


class UniformCellGrid:
    """Uniform hash grid over a set of 3-D points.

    Parameters
    ----------
    points:
        ``(n, 3)`` positions.
    cell_size:
        Edge length of a cubic cell.  Queries with radius ≤ ``cell_size``
        only need the 27 surrounding cells; larger radii scan a larger
        cube of cells.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.origin = points.min(axis=0) if len(points) else np.zeros(3)
        ijk = np.floor((points - self.origin) / self.cell_size).astype(np.int64)
        self.dims = ijk.max(axis=0) + 1 if len(points) else np.ones(3, np.int64)
        self._cell_of = self._flatten(ijk)
        order = np.argsort(self._cell_of, kind="stable")
        self._order = order
        sorted_cells = self._cell_of[order]
        # start offsets of each occupied cell in the sorted permutation
        self._unique_cells, self._starts = np.unique(sorted_cells,
                                                     return_index=True)
        self._ends = np.append(self._starts[1:], len(sorted_cells))

    def _flatten(self, ijk: np.ndarray) -> np.ndarray:
        d = self.dims
        return (ijk[..., 0] * d[1] + ijk[..., 1]) * d[2] + ijk[..., 2]

    def _members(self, flat_cell: int) -> np.ndarray:
        pos = np.searchsorted(self._unique_cells, flat_cell)
        if pos >= len(self._unique_cells) or self._unique_cells[pos] != flat_cell:
            return np.empty(0, dtype=np.int64)
        return self._order[self._starts[pos]:self._ends[pos]]

    def query_ball(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of ``center``."""
        center = np.asarray(center, dtype=np.float64)
        reach = int(np.ceil(radius / self.cell_size))
        c = np.floor((center - self.origin) / self.cell_size).astype(np.int64)
        lo = np.maximum(c - reach, 0)
        hi = np.minimum(c + reach, self.dims - 1)
        cand = []
        for i in range(lo[0], hi[0] + 1):
            for j in range(lo[1], hi[1] + 1):
                for k in range(lo[2], hi[2] + 1):
                    flat = (i * self.dims[1] + j) * self.dims[2] + k
                    m = self._members(flat)
                    if len(m):
                        cand.append(m)
        if not cand:
            return np.empty(0, dtype=np.int64)
        idx = np.concatenate(cand)
        d2 = np.sum((self.points[idx] - center) ** 2, axis=1)
        return idx[d2 <= radius * radius]

    def neighbor_pairs(self, cutoff: float,
                       chunk: int = 65536) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(i, j)`` index-array chunks of pairs with ``|p_i−p_j| ≤ cutoff``.

        Pairs are emitted once with ``i < j``.  Memory stays bounded by
        ``chunk`` pairs per yielded block.
        """
        if cutoff <= 0:
            return
        reach = int(np.ceil(cutoff / self.cell_size))
        offsets = [(di, dj, dk)
                   for di in range(-reach, reach + 1)
                   for dj in range(-reach, reach + 1)
                   for dk in range(-reach, reach + 1)]
        cut2 = cutoff * cutoff
        buf_i, buf_j, buffered = [], [], 0
        ijk_all = np.floor((self.points - self.origin) / self.cell_size
                           ).astype(np.int64)
        for pos, flat in enumerate(self._unique_cells):
            a = self._order[self._starts[pos]:self._ends[pos]]
            base = ijk_all[a[0]]
            for off in offsets:
                nb = base + np.array(off, dtype=np.int64)
                if np.any(nb < 0) or np.any(nb >= self.dims):
                    continue
                nflat = (nb[0] * self.dims[1] + nb[1]) * self.dims[2] + nb[2]
                if nflat < flat:
                    continue  # each cell pair visited once
                b = self._members(nflat)
                if not len(b):
                    continue
                ii, jj = np.meshgrid(a, b, indexing="ij")
                ii, jj = ii.ravel(), jj.ravel()
                if nflat == flat:
                    keep = ii < jj
                else:
                    keep = np.ones(len(ii), dtype=bool)
                d2 = np.sum((self.points[ii[keep]] - self.points[jj[keep]]) ** 2,
                            axis=1)
                sel = d2 <= cut2
                gi, gj = ii[keep][sel], jj[keep][sel]
                # Cell ids do not order point ids; normalise to i < j.
                gi, gj = np.minimum(gi, gj), np.maximum(gi, gj)
                if len(gi):
                    buf_i.append(gi)
                    buf_j.append(gj)
                    buffered += len(gi)
                    if buffered >= chunk:
                        yield np.concatenate(buf_i), np.concatenate(buf_j)
                        buf_i, buf_j, buffered = [], [], 0
        if buffered:
            yield np.concatenate(buf_i), np.concatenate(buf_j)


def ranges_to_indices(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]`` without
    per-range Python calls (the classic cumsum trick).

    Empty ranges are allowed.  This is the hot gather primitive of the
    octree leaf kernels.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lens = ends - starts
    if np.any(lens < 0):
        raise ValueError("ranges must have ends >= starts")
    keep = lens > 0
    starts, lens = starts[keep], lens[keep]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    firsts = np.cumsum(lens)[:-1]
    out[firsts] = starts[1:] - (starts[:-1] + lens[:-1] - 1)
    return np.cumsum(out)


def enclosing_ball_radius(points: np.ndarray, center: np.ndarray) -> float:
    """Radius of the smallest ``center``-centred ball containing ``points``."""
    if len(points) == 0:
        return 0.0
    return float(np.sqrt(np.max(np.sum((points - center) ** 2, axis=1))))


def unit_icosahedron() -> Tuple[np.ndarray, np.ndarray]:
    """Vertices ``(12, 3)`` on the unit sphere and faces ``(20, 3)``."""
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    v = np.array([
        [-1, phi, 0], [1, phi, 0], [-1, -phi, 0], [1, -phi, 0],
        [0, -1, phi], [0, 1, phi], [0, -1, -phi], [0, 1, -phi],
        [phi, 0, -1], [phi, 0, 1], [-phi, 0, -1], [-phi, 0, 1],
    ], dtype=np.float64)
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    f = np.array([
        [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
        [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
        [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
        [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
    ], dtype=np.int64)
    return v, f


def icosphere(subdivisions: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Subdivided icosahedron on the unit sphere.

    Returns ``(vertices, faces)``; each subdivision splits every triangle
    into four, so the face count is ``20 · 4^subdivisions``.  Faces are
    oriented with outward normals.
    """
    if subdivisions < 0:
        raise ValueError("subdivisions must be >= 0")
    verts, faces = unit_icosahedron()
    for _ in range(subdivisions):
        edge_mid: dict = {}
        verts_list = list(verts)

        def midpoint(a: int, b: int) -> int:
            key = (min(a, b), max(a, b))
            if key not in edge_mid:
                m = verts_list[a] + verts_list[b]
                m = m / np.linalg.norm(m)
                edge_mid[key] = len(verts_list)
                verts_list.append(m)
            return edge_mid[key]

        new_faces = []
        for a, b, c in faces:
            ab, bc, ca = midpoint(a, b), midpoint(b, c), midpoint(c, a)
            new_faces += [[a, ab, ca], [b, bc, ab], [c, ca, bc], [ab, bc, ca]]
        verts = np.array(verts_list)
        faces = np.array(new_faces, dtype=np.int64)
    return verts, faces
