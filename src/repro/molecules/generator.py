"""Synthetic molecule generators — stand-ins for the paper's datasets.

The paper evaluates on the ZDock Benchmark Suite 2.0 (84 bound protein
complexes, ~400–16,000 atoms), the Blue Tongue Virus (6M atoms) and the
Cucumber Mosaic Virus shell (509,640 atoms, 1,929,128 quadrature
points).  None of those input files ship with this reproduction, so we
generate geometry with the same statistical character:

* **proteins** — compact self-avoiding Cα random walks decorated with
  side-chain atoms, packed at protein-core density, with Amber-like
  partial charges neutralised per residue;
* **virus capsids** — hollow icosahedral shells assembled from protein
  subunits (the hollow-shell topology is what stresses the near–far
  decomposition and the memory model);
* **ligands** — small (tens of atoms) rigid molecules for the docking
  example.

Every generator is deterministic given its ``seed``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.molecules.atom_data import (
    RESIDUE_COMPOSITION,
    TYPICAL_ABS_CHARGE,
    VDW_RADII,
)
from repro.molecules.molecule import Molecule
from repro.molecules.surface import sample_surface

#: Cα–Cα distance along a protein backbone (Å).
CA_SPACING = 3.8


def _residue_elements() -> List[str]:
    out: List[str] = []
    for element, count in RESIDUE_COMPOSITION:
        out.extend([element] * count)
    return out


_RES_ELEMENTS = _residue_elements()
_ATOMS_PER_RESIDUE = len(_RES_ELEMENTS)


def _compact_backbone(n_res: int, rng: np.random.Generator) -> np.ndarray:
    """Cα trace of a compact globule.

    A biased random walk: each step proposes a few random directions and
    keeps the one that stays closest to the centroid while respecting a
    minimum self-distance, which yields folded-protein-like packing
    instead of an extended coil.
    """
    pos = np.zeros((n_res, 3))
    centroid = np.zeros(3)
    for i in range(1, n_res):
        best: Optional[np.ndarray] = None
        best_score = np.inf
        for _ in range(8):
            d = rng.normal(size=3)
            d /= np.linalg.norm(d)
            cand = pos[i - 1] + CA_SPACING * d
            prev = pos[: max(0, i - 2)]
            if len(prev):
                if np.min(np.sum((prev - cand) ** 2, axis=1)) < (0.9 * CA_SPACING) ** 2:
                    continue
            score = float(np.sum((cand - centroid) ** 2))
            if score < best_score:
                best, best_score = cand, score
        if best is None:  # all proposals clashed — take a straight step
            d = pos[i - 1] - pos[i - 2] if i >= 2 else np.array([1.0, 0, 0])
            best = pos[i - 1] + CA_SPACING * d / max(np.linalg.norm(d), 1e-12)
        pos[i] = best
        centroid = centroid + (best - centroid) / (i + 1)
    return pos


def _decorate_residues(backbone: np.ndarray,
                       rng: np.random.Generator) -> tuple:
    """Place side-chain/backbone atoms around each Cα and assign charges."""
    n_res = len(backbone)
    n_atoms = n_res * _ATOMS_PER_RESIDUE
    positions = np.empty((n_atoms, 3))
    charges = np.empty(n_atoms)
    radii = np.empty(n_atoms)
    cursor = 0
    for r in range(n_res):
        for element in _RES_ELEMENTS:
            offset = rng.normal(scale=1.1, size=3)
            positions[cursor] = backbone[r] + offset
            mag = TYPICAL_ABS_CHARGE[element]
            charges[cursor] = rng.normal(loc=0.0, scale=mag)
            radii[cursor] = VDW_RADII[element]
            cursor += 1
        # Neutralise the residue to a near-integer total (residues carry
        # integer formal charge; most are neutral).
        block = slice(r * _ATOMS_PER_RESIDUE, (r + 1) * _ATOMS_PER_RESIDUE)
        formal = rng.choice([-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0])
        charges[block] += (formal - charges[block].sum()) / _ATOMS_PER_RESIDUE
    return positions, charges, radii


def synthetic_protein(n_atoms: int,
                      seed: int = 0,
                      name: Optional[str] = None,
                      with_surface: bool = True,
                      surface_subdivisions: int = 0,
                      surface_degree: int = 1) -> Molecule:
    """Generate a folded-protein-like molecule with ~``n_atoms`` atoms.

    The atom count is rounded to a whole number of residues.  When
    ``with_surface`` is true, van der Waals surface quadrature samples
    are attached (required by the r⁶ Born solver).
    """
    if n_atoms < _ATOMS_PER_RESIDUE:
        raise ValueError(  # lint: ignore[RPR007] — API arg check
            f"n_atoms must be >= {_ATOMS_PER_RESIDUE}")
    rng = np.random.default_rng(seed)
    n_res = max(1, round(n_atoms / _ATOMS_PER_RESIDUE))
    backbone = _compact_backbone(n_res, rng)
    positions, charges, radii = _decorate_residues(backbone, rng)
    mol = Molecule(positions, charges, radii,
                   name=name or f"protein_{len(positions)}")
    if with_surface:
        mol = sample_surface(mol, subdivisions=surface_subdivisions,
                             degree=surface_degree)
    return mol


def random_ligand(n_atoms: int = 30, seed: int = 0,
                  name: Optional[str] = None,
                  with_surface: bool = True) -> Molecule:
    """Small rigid drug-like molecule: a tight cluster of C/N/O/H atoms."""
    if n_atoms < 2:
        raise ValueError(  # lint: ignore[RPR007] — API arg check
            "ligand needs at least 2 atoms")
    rng = np.random.default_rng(seed)
    elements = rng.choice(["C", "C", "C", "N", "O", "H", "H"], size=n_atoms)
    positions = rng.normal(scale=2.5, size=(n_atoms, 3))
    charges = np.array([rng.normal(scale=TYPICAL_ABS_CHARGE[e])
                        for e in elements])
    charges -= charges.mean()  # neutral ligand
    radii = np.array([VDW_RADII[e] for e in elements])
    mol = Molecule(positions, charges, radii, name=name or f"ligand_{n_atoms}")
    if with_surface:
        mol = sample_surface(mol, subdivisions=1, degree=1)
    return mol


def zdock_like_suite(count: int = 84,
                     min_atoms: int = 400,
                     max_atoms: int = 16000,
                     seed: int = 7,
                     with_surface: bool = True) -> List[Molecule]:
    """A deterministic suite mirroring the ZDock bound-set size spread.

    Sizes are log-uniform between ``min_atoms`` and ``max_atoms`` — the
    ZDock bound set spans roughly 400–16,000 atoms per protein (paper
    §V).  Returned sorted by atom count, matching the paper's plots
    ("results are sorted by molecule size").
    """
    if count < 1:
        raise ValueError(  # lint: ignore[RPR007] — API arg check
            "count must be >= 1")
    rng = np.random.default_rng(seed)
    sizes = np.exp(rng.uniform(np.log(min_atoms), np.log(max_atoms),
                               size=count)).astype(int)
    sizes.sort()
    return [synthetic_protein(int(s), seed=seed + 1000 + i,
                              name=f"zdock{i:03d}_{s}",
                              with_surface=with_surface)
            for i, s in enumerate(sizes)]


def virus_capsid(n_atoms: int = 50000,
                 seed: int = 11,
                 name: Optional[str] = None,
                 with_surface: bool = True) -> Molecule:
    """Hollow icosahedral-shell molecule — CMV/BTV stand-in.

    Protein subunits (compact globules of ~500 atoms) are placed on a
    sphere whose radius is chosen so the shell surface is tiled at
    protein density; subunit orientations are randomised.  The result is
    the hollow-capsid topology of the paper's Cucumber Mosaic Virus
    shell (509,640 atoms) at a configurable scale.
    """
    subunit_atoms = 504  # whole residues
    n_sub = max(12, round(n_atoms / subunit_atoms))
    rng = np.random.default_rng(seed)
    # Subunit globule radius ~ (3V/4π)^(1/3) at protein density.
    sub_radius = 1.45 * subunit_atoms ** (1.0 / 3.0)
    # Place n_sub points quasi-uniformly on a sphere (Fibonacci lattice)
    # sized so neighbouring subunits just touch.
    shell_r = sub_radius * np.sqrt(n_sub) / 1.8
    gold = np.pi * (3.0 - np.sqrt(5.0))
    k = np.arange(n_sub)
    z = 1.0 - 2.0 * (k + 0.5) / n_sub
    theta = gold * k
    ring = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    anchors = shell_r * np.stack([ring * np.cos(theta),
                                  ring * np.sin(theta), z], axis=1)

    template = synthetic_protein(subunit_atoms, seed=seed + 1,
                                 with_surface=False)
    tpos = template.positions - template.centroid()
    blocks, charges, radii = [], [], []
    for i in range(n_sub):
        # Random rotation via QR of a Gaussian matrix (uniform on SO(3)).
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        if np.linalg.det(q) < 0:
            q[:, 0] = -q[:, 0]
        blocks.append(tpos @ q.T + anchors[i])
        charges.append(template.charges)
        radii.append(template.radii)
    mol = Molecule(np.vstack(blocks), np.concatenate(charges),
                   np.concatenate(radii),
                   name=name or f"capsid_{n_sub * subunit_atoms}")
    if with_surface:
        mol = sample_surface(mol, subdivisions=0, degree=1)
    return mol
