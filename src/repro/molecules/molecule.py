"""Structure-of-arrays molecule and surface-sample containers.

The solvers never look at bonded topology: following the paper, a
molecule is a set of charged spheres (atoms) plus a set of surface
quadrature points with outward normals and weights.  Both are stored as
contiguous ``float64`` numpy arrays so the vectorised kernels and the
octree builder can operate without per-object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.guard.errors import DegenerateGeometryError, MoleculeFormatError


def _as_f64(a, name: str, shape_tail: tuple = ()) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=np.float64)
    if arr.ndim != 1 + len(shape_tail) or arr.shape[1:] != shape_tail:
        raise MoleculeFormatError(
            f"{name} must have shape (n,{','.join(map(str, shape_tail))})"
            if shape_tail else f"{name} must be one-dimensional",
            field=name)
    return arr


@dataclass
class SurfaceSamples:
    """Gaussian quadrature samples of the molecular surface.

    Attributes
    ----------
    points:
        ``(n, 3)`` sample positions ``r_k`` on the surface.
    normals:
        ``(n, 3)`` unit outward surface normals ``n_k``.
    weights:
        ``(n,)`` quadrature weights ``w_k`` (area-like, Å²).
    """

    points: np.ndarray
    normals: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.points = _as_f64(self.points, "points", (3,))
        self.normals = _as_f64(self.normals, "normals", (3,))
        self.weights = _as_f64(self.weights, "weights")
        n = len(self.points)
        if len(self.normals) != n or len(self.weights) != n:
            raise MoleculeFormatError(
                "points, normals and weights must have equal length",
                field="surface")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def weighted_normals(self) -> np.ndarray:
        """``w_k · n_k`` — the only combination the kernels need."""
        return self.normals * self.weights[:, None]

    def total_area(self) -> float:
        """Sum of quadrature weights ≈ surface area (Å²)."""
        return float(self.weights.sum())

    def subset(self, index: np.ndarray) -> "SurfaceSamples":
        """Return the samples selected by ``index`` (copying)."""
        return SurfaceSamples(self.points[index], self.normals[index],
                              self.weights[index])

    def nbytes(self) -> int:
        """Bytes of live array data (for the memory model)."""
        return self.points.nbytes + self.normals.nbytes + self.weights.nbytes


@dataclass
class Molecule:
    """A molecule as the solvers see it: charged spheres + optional surface.

    Attributes
    ----------
    positions:
        ``(m, 3)`` atom centres ``x_i`` in Å.
    charges:
        ``(m,)`` partial charges ``q_i`` in units of *e*.
    radii:
        ``(m,)`` intrinsic (van der Waals) radii ``r_i`` in Å; the Born
        radius of an atom is floored at this value (paper Fig. 2).
    surface:
        Optional :class:`SurfaceSamples`; required by the r⁶ Born solver.
    name:
        Label used in benchmark tables.
    """

    positions: np.ndarray
    charges: np.ndarray
    radii: np.ndarray
    surface: Optional[SurfaceSamples] = None
    name: str = "molecule"

    def __post_init__(self) -> None:
        self.positions = _as_f64(self.positions, "positions", (3,))
        self.charges = _as_f64(self.charges, "charges")
        self.radii = _as_f64(self.radii, "radii")
        m = len(self.positions)
        if len(self.charges) != m or len(self.radii) != m:
            raise MoleculeFormatError(
                "positions, charges and radii must have equal length")
        if m == 0:
            raise MoleculeFormatError(
                "molecule must contain at least one atom")
        if np.any(self.radii <= 0):
            raise MoleculeFormatError(
                "atom radii must be positive", field="radii",
                indices=np.flatnonzero(self.radii <= 0),
                hint="assign van der Waals radii "
                     "(repro.molecules.atom_data)")

    @property
    def natoms(self) -> int:
        return len(self.positions)

    def __len__(self) -> int:
        return self.natoms

    @property
    def nqpoints(self) -> int:
        return 0 if self.surface is None else len(self.surface)

    def require_surface(self) -> SurfaceSamples:
        """Return the surface samples, raising if absent."""
        if self.surface is None:
            raise DegenerateGeometryError(
                f"molecule {self.name!r} has no surface samples",
                hint="call repro.molecules.sample_surface() first")
        return self.surface

    def centroid(self) -> np.ndarray:
        """Geometric centre of the atom positions."""
        return self.positions.mean(axis=0)

    def bounding_radius(self) -> float:
        """Radius of the smallest centroid-centred ball containing all atoms."""
        d = np.linalg.norm(self.positions - self.centroid(), axis=1)
        return float(d.max())

    def total_charge(self) -> float:
        return float(self.charges.sum())

    def nbytes(self) -> int:
        """Bytes of live array data (for the memory model)."""
        n = self.positions.nbytes + self.charges.nbytes + self.radii.nbytes
        if self.surface is not None:
            n += self.surface.nbytes()
        return n

    def with_surface(self, surface: SurfaceSamples) -> "Molecule":
        """Return a shallow copy carrying ``surface``."""
        return Molecule(self.positions, self.charges, self.radii,
                        surface=surface, name=self.name)
