"""Rigid-body transforms for docking-style octree reuse.

The paper notes (Section IV-C, Step 1) that for drug design and docking
— where a ligand is placed at thousands of poses relative to a receptor
— the octree can be *moved* (transformed) instead of rebuilt, so octree
construction is a pre-processing cost.  :class:`RigidTransform` supplies
the transforms; ``Octree.transformed`` (see :mod:`repro.octree.build`)
applies them to a built tree without re-sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RigidTransform:
    """A proper rigid motion ``x ↦ R·x + t``.

    ``rotation`` must be a proper orthogonal 3×3 matrix (det = +1).
    """

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        R = np.asarray(self.rotation, dtype=np.float64)
        t = np.asarray(self.translation, dtype=np.float64)
        from repro.guard.errors import (
            DegenerateGeometryError,
            MoleculeFormatError,
        )
        if R.shape != (3, 3):
            raise MoleculeFormatError("rotation must be 3x3",
                                      field="rotation")
        if t.shape != (3,):
            raise MoleculeFormatError("translation must be a 3-vector",
                                      field="translation")
        if not np.allclose(R @ R.T, np.eye(3), atol=1e-8):
            raise DegenerateGeometryError("rotation must be orthogonal")
        if np.linalg.det(R) < 0:
            raise DegenerateGeometryError(
                "rotation must be proper (det = +1)")
        object.__setattr__(self, "rotation", R)
        object.__setattr__(self, "translation", t)

    @staticmethod
    def identity() -> "RigidTransform":
        return RigidTransform(np.eye(3), np.zeros(3))

    @staticmethod
    def translation_of(t) -> "RigidTransform":
        return RigidTransform(np.eye(3), np.asarray(t, dtype=np.float64))

    @staticmethod
    def rotation_about_axis(axis, angle: float) -> "RigidTransform":
        """Rotation by ``angle`` radians about a (not necessarily unit) axis."""
        axis = np.asarray(axis, dtype=np.float64)
        n = np.linalg.norm(axis)
        if n == 0:
            from repro.guard.errors import DegenerateGeometryError
            raise DegenerateGeometryError("axis must be nonzero")
        x, y, z = axis / n
        c, s = np.cos(angle), np.sin(angle)
        C = 1 - c
        R = np.array([
            [c + x * x * C, x * y * C - z * s, x * z * C + y * s],
            [y * x * C + z * s, c + y * y * C, y * z * C - x * s],
            [z * x * C - y * s, z * y * C + x * s, c + z * z * C],
        ])
        return RigidTransform(R, np.zeros(3))

    @staticmethod
    def random(seed: int = 0, max_translation: float = 10.0) -> "RigidTransform":
        """Uniform random rotation plus a bounded random translation."""
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        if np.linalg.det(q) < 0:
            q[:, 0] = -q[:, 0]
        t = rng.uniform(-max_translation, max_translation, size=3)
        return RigidTransform(q, t)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(n, 3)`` point array (or a single 3-vector)."""
        pts = np.asarray(points, dtype=np.float64)
        return pts @ self.rotation.T + self.translation

    def apply_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate direction vectors (no translation) — e.g. surface normals."""
        return np.asarray(vectors, dtype=np.float64) @ self.rotation.T

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """Return the transform ``self ∘ other`` (apply ``other`` first)."""
        return RigidTransform(self.rotation @ other.rotation,
                              self.rotation @ other.translation + self.translation)

    def inverse(self) -> "RigidTransform":
        Rt = self.rotation.T
        return RigidTransform(Rt, -(Rt @ self.translation))
