"""Symmetric Gaussian quadrature rules on triangles (Dunavant, 1985).

The paper samples the molecular surface at "Gauss quadrature numerical
integration points in each triangle's interior" of a surface
triangulation (Section II).  These are the classic Dunavant symmetric
rules: sets of barycentric points and weights exact for polynomials up
to a given degree.  Weights sum to one and are scaled by triangle area
when a rule is applied to a concrete triangle.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _perm3(a: float, b: float, c: float) -> np.ndarray:
    """Distinct permutations of a barycentric triple."""
    pts = {(a, b, c), (b, c, a), (c, a, b), (a, c, b), (c, b, a), (b, a, c)}
    return np.array(sorted(pts), dtype=np.float64)


def _rule_1() -> Tuple[np.ndarray, np.ndarray]:
    pts = np.array([[1 / 3, 1 / 3, 1 / 3]])
    w = np.array([1.0])
    return pts, w


def _rule_2() -> Tuple[np.ndarray, np.ndarray]:
    pts = _perm3(2 / 3, 1 / 6, 1 / 6)
    w = np.full(len(pts), 1 / 3)
    return pts, w


def _rule_3() -> Tuple[np.ndarray, np.ndarray]:
    pts = np.vstack([np.array([[1 / 3, 1 / 3, 1 / 3]]),
                     _perm3(0.6, 0.2, 0.2)])
    w = np.concatenate([[-27 / 48], np.full(3, 25 / 48)])
    return pts, w


def _rule_4() -> Tuple[np.ndarray, np.ndarray]:
    a, wa = 0.445948490915965, 0.223381589678011
    b, wb = 0.091576213509771, 0.109951743655322
    pts = np.vstack([_perm3(1 - 2 * a, a, a), _perm3(1 - 2 * b, b, b)])
    w = np.concatenate([np.full(3, wa), np.full(3, wb)])
    return pts, w


def _rule_5() -> Tuple[np.ndarray, np.ndarray]:
    a, wa = 0.470142064105115, 0.132394152788506
    b, wb = 0.101286507323456, 0.125939180544827
    pts = np.vstack([np.array([[1 / 3, 1 / 3, 1 / 3]]),
                     _perm3(1 - 2 * a, a, a), _perm3(1 - 2 * b, b, b)])
    w = np.concatenate([[0.225], np.full(3, wa), np.full(3, wb)])
    return pts, w


_RULES: Dict[int, Tuple[np.ndarray, np.ndarray]] = {
    1: _rule_1(), 2: _rule_2(), 3: _rule_3(), 4: _rule_4(), 5: _rule_5(),
}


def dunavant_rule(degree: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(bary, weights)`` for the Dunavant rule of the given degree.

    ``bary`` is ``(n, 3)`` barycentric coordinates, ``weights`` is ``(n,)``
    summing to 1.  Degrees 1–5 are provided; higher requests clamp to 5
    (the paper notes "a constant number of quadrature points per triangle"
    suffices).
    """
    if degree < 1:
        raise ValueError(  # lint: ignore[RPR007] — API arg check
            "quadrature degree must be >= 1")
    key = min(degree, 5)
    bary, w = _RULES[key]
    return bary.copy(), w.copy()


def triangle_quadrature(vertices: np.ndarray, degree: int = 2
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Quadrature points and area-scaled weights for a batch of triangles.

    Parameters
    ----------
    vertices:
        ``(t, 3, 3)`` array: ``t`` triangles × 3 vertices × xyz.
    degree:
        Polynomial exactness degree of the Dunavant rule.

    Returns
    -------
    points:
        ``(t·n, 3)`` quadrature point positions.
    weights:
        ``(t·n,)`` weights; per triangle they sum to the triangle's area,
        so summing all weights of a closed triangulated surface gives its
        total area.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 3 or vertices.shape[1:] != (3, 3):
        from repro.guard.errors import MoleculeFormatError
        raise MoleculeFormatError("vertices must have shape (t, 3, 3)",
                                  field="vertices")
    bary, w = dunavant_rule(degree)
    # points: (t, n, 3) = bary (n,3) @ verts (t,3,3)
    pts = np.einsum("nk,tkx->tnx", bary, vertices)
    e1 = vertices[:, 1] - vertices[:, 0]
    e2 = vertices[:, 2] - vertices[:, 0]
    area = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)
    weights = area[:, None] * w[None, :]
    return pts.reshape(-1, 3), weights.reshape(-1)


def triangle_normals(vertices: np.ndarray) -> np.ndarray:
    """Unit normals of a batch of ``(t, 3, 3)`` triangles (right-hand rule)."""
    vertices = np.asarray(vertices, dtype=np.float64)
    e1 = vertices[:, 1] - vertices[:, 0]
    e2 = vertices[:, 2] - vertices[:, 0]
    n = np.cross(e1, e2)
    norm = np.linalg.norm(n, axis=1, keepdims=True)
    if np.any(norm == 0):
        from repro.guard.errors import DegenerateGeometryError
        raise DegenerateGeometryError(
            "degenerate triangle (zero area)",
            indices=np.flatnonzero(norm.ravel() == 0))
    return n / norm
