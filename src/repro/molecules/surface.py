"""Molecular-surface sampling with Gaussian quadrature points.

The paper's r⁶ Born-radius integral (Eq. 4) is a surface integral
evaluated at Gaussian quadrature points of a triangulated molecular
surface, each carrying a weight ``w_k`` and an outward unit normal
``n_k``.  We build the surface as the boundary of the union of atom
spheres (the van der Waals / solvent-excluded surface for probe radius
0): every atom sphere is triangulated by an icosphere, Dunavant
quadrature points are placed on each spherical triangle, and points
buried inside any other atom are culled together with their weights.

For a closed sphere the weights sum to ``4πr²`` by construction, which
gives the library its sharpest correctness test: a single isolated atom
of radius R must come back from the r⁶ solver with Born radius exactly R
(up to quadrature error).
"""

from __future__ import annotations

import numpy as np

from repro.geomutil import UniformCellGrid, icosphere
from repro.obs import traced
from repro.molecules.molecule import Molecule, SurfaceSamples
from repro.molecules.quadrature import dunavant_rule


def _unit_sphere_samples(subdivisions: int, degree: int):
    """Quadrature points/normals/weights on the unit sphere.

    Points are projected from planar triangle quadrature onto the sphere;
    weights are uniformly rescaled so they sum to exactly ``4π`` (the
    sphere's area), removing the planar-faceting area deficit.
    """
    verts, faces = icosphere(subdivisions)
    tri = verts[faces]                       # (t, 3, 3)
    bary, w = dunavant_rule(degree)
    pts = np.einsum("nk,tkx->tnx", bary, tri)            # (t, n, 3)
    e1 = tri[:, 1] - tri[:, 0]
    e2 = tri[:, 2] - tri[:, 0]
    area = 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)
    weights = (area[:, None] * w[None, :]).reshape(-1)
    pts = pts.reshape(-1, 3)
    norms = np.linalg.norm(pts, axis=1, keepdims=True)
    pts = pts / norms                        # project to sphere surface
    weights = weights * (4.0 * np.pi / weights.sum())
    return pts, weights


@traced("solve.sample_surface")
def sample_surface(molecule: Molecule,
                   subdivisions: int = 1,
                   degree: int = 1,
                   probe_radius: float = 0.0,
                   cull_tolerance: float = 1e-9) -> Molecule:
    """Attach surface quadrature samples to ``molecule``.

    Parameters
    ----------
    molecule:
        Input molecule (its existing surface, if any, is replaced).
    subdivisions:
        Icosphere subdivision level per atom: 20·4^s triangles.
    degree:
        Dunavant quadrature degree per triangle (1 → 1 point, 2 → 3, …).
    probe_radius:
        Solvent probe radius added to every atom radius before sampling
        and culling (0 → van der Waals surface, 1.4 → water SAS).
    cull_tolerance:
        A sample survives only if it lies at least this far outside every
        *other* inflated atom sphere.

    Returns
    -------
    Molecule
        A copy of ``molecule`` carrying :class:`SurfaceSamples` whose
        normals point outward (radially from their parent atom).
    """
    unit_pts, unit_w = _unit_sphere_samples(subdivisions, degree)
    k = len(unit_pts)
    centers = molecule.positions
    radii = molecule.radii + probe_radius
    m = molecule.natoms

    # All candidate samples: (m, k, 3) → flattened.
    pts = centers[:, None, :] + radii[:, None, None] * unit_pts[None, :, :]
    normals = np.broadcast_to(unit_pts[None, :, :], (m, k, 3))
    weights = radii[:, None] ** 2 * unit_w[None, :]

    pts = pts.reshape(-1, 3)
    normals = normals.reshape(-1, 3).copy()
    weights = weights.reshape(-1)

    keep = np.ones(len(pts), dtype=bool)
    sample_ids = np.arange(k, dtype=np.int64)
    if m > 1:
        rmax = float(radii.max())
        grid = UniformCellGrid(centers, cell_size=max(2.0 * rmax, 1e-6))
        for ii, jj in grid.neighbor_pairs(cutoff=2.0 * rmax):
            # Only overlapping sphere pairs can bury each other's samples.
            d = np.linalg.norm(centers[ii] - centers[jj], axis=1)
            close = d < radii[ii] + radii[jj]
            for a, b in ((ii[close], jj[close]), (jj[close], ii[close])):
                if not len(a):
                    continue
                # Cull samples of atoms `a` that fall inside spheres `b`,
                # one vectorised block: (npairs, k) sample indices.
                idx = a[:, None] * k + sample_ids[None, :]
                d2 = np.sum((pts[idx] - centers[b][:, None, :]) ** 2, axis=2)
                buried = d2 < (radii[b][:, None] - cull_tolerance) ** 2
                # An atom may appear in several pairs: accumulate with
                # logical_and.at so every pair's verdict is applied.
                np.logical_and.at(keep, idx.ravel(), ~buried.ravel())

    if not keep.any():
        from repro.guard.errors import DegenerateGeometryError
        raise DegenerateGeometryError(
            f"molecule {molecule.name!r}: every surface sample was buried; "
            "geometry is degenerate (all atoms mutually contained)",
            phase="sample_surface",
            hint="run repro doctor — atoms likely coincide or nest")

    surface = SurfaceSamples(pts[keep], normals[keep], weights[keep])
    out = molecule.with_surface(surface)
    return out


def exposed_fraction(molecule: Molecule) -> float:
    """Fraction of the total sphere area that survived burial culling.

    Requires surface samples; useful as a packing-density diagnostic for
    the synthetic generators (folded proteins expose ~25–40 % of their
    total van der Waals sphere area).
    """
    surf = molecule.require_surface()
    full = 4.0 * np.pi * float(np.sum(molecule.radii ** 2))
    return surf.total_area() / full
