"""Minimal PDB / PQR / XYZQR readers and writers.

Real runs of the paper consumed PDB-derived inputs (ZDock benchmark
proteins, virus capsids).  This module lets users feed their own
structures to the solver:

* **PQR** — the natural format here: PDB atom records whose occupancy
  and B-factor columns carry charge and radius.
* **PDB** — coordinates + elements; charges default to zero and radii to
  Bondi values (a charge model must then be applied by the caller).
* **XYZQR** — whitespace table ``x y z q r`` per line, the simplest
  interchange format for synthetic data.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.guard.errors import MoleculeFormatError
from repro.molecules.atom_data import VDW_RADII
from repro.molecules.molecule import Molecule

PathLike = Union[str, Path]


def _element_from_pdb_atom_name(name: str) -> str:
    """Heuristic element extraction from a PDB atom-name column."""
    stripped = name.strip()
    for ch in stripped:
        if ch.isalpha():
            return ch.upper()
    return "C"


def read_pqr(path_or_text: Union[PathLike, io.StringIO],
             name: str = "pqr") -> Molecule:
    """Read a PQR file (ATOM/HETATM records with charge and radius fields)."""
    text = _slurp(path_or_text)
    pos: List[List[float]] = []
    q: List[float] = []
    r: List[float] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.startswith(("ATOM", "HETATM")):
            continue
        parts = line.split()
        # PQR is whitespace-separated: last five fields are x y z q r.
        if len(parts) < 6:
            raise MoleculeFormatError(
                f"malformed PQR record: {line!r}", line=lineno,
                hint="expected ATOM/HETATM … x y z q r")
        try:
            x, y, z, charge, radius = (float(v) for v in parts[-5:])
        except ValueError as exc:
            raise MoleculeFormatError(
                "bad numeric field", line=lineno, field="x y z q r",
                hint="the last five columns must parse as floats"
            ) from exc
        pos.append([x, y, z])
        q.append(charge)
        r.append(radius)
    if not pos:
        raise MoleculeFormatError(
            "no ATOM/HETATM records found",
            hint="is this actually a PQR file?")
    return Molecule(np.array(pos), np.array(q), np.array(r), name=name)


def read_pdb(path_or_text: Union[PathLike, io.StringIO],
             name: str = "pdb") -> Molecule:
    """Read a PDB file; charges are zero, radii are Bondi by element."""
    text = _slurp(path_or_text)
    pos: List[List[float]] = []
    radii: List[float] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.startswith(("ATOM", "HETATM")):
            continue
        try:
            x = float(line[30:38])
            y = float(line[38:46])
            z = float(line[46:54])
        except (ValueError, IndexError) as exc:
            raise MoleculeFormatError(
                "bad coordinates", line=lineno, field="x y z",
                hint="PDB coordinate columns 31-54 must parse as floats"
            ) from exc
        element = line[76:78].strip() if len(line) >= 78 else ""
        if not element:
            element = _element_from_pdb_atom_name(line[12:16])
        radii.append(VDW_RADII.get(element.upper(), VDW_RADII["C"]))
        pos.append([x, y, z])
    if not pos:
        raise MoleculeFormatError(
            "no ATOM/HETATM records found",
            hint="is this actually a PDB file?")
    return Molecule(np.array(pos), np.zeros(len(pos)), np.array(radii),
                    name=name)


def read_xyzqr(path_or_text: Union[PathLike, io.StringIO],
               name: str = "xyzqr") -> Molecule:
    """Read the 5-column ``x y z q r`` format (``#`` comments allowed)."""
    text = _slurp(path_or_text)
    rows = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        parts = body.split()
        if len(parts) != 5:
            raise MoleculeFormatError(
                f"expected 5 columns, got {len(parts)}", line=lineno,
                field="x y z q r")
        try:
            rows.append([float(v) for v in parts])
        except ValueError as exc:
            raise MoleculeFormatError(
                "bad numeric field", line=lineno, field="x y z q r"
            ) from exc
    if not rows:
        raise MoleculeFormatError(
            "no data rows found",
            hint="every non-comment line must be 'x y z q r'")
    arr = np.array(rows)
    return Molecule(arr[:, :3], arr[:, 3], arr[:, 4], name=name)


def write_xyzqr(molecule: Molecule, path: PathLike) -> None:
    """Write a molecule in the ``x y z q r`` format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {molecule.name}: {molecule.natoms} atoms\n")
        for p, q, r in zip(molecule.positions, molecule.charges,
                           molecule.radii):
            fh.write(f"{p[0]:.6f} {p[1]:.6f} {p[2]:.6f} {q:.6f} {r:.6f}\n")


def write_pqr(molecule: Molecule, path: PathLike) -> None:
    """Write a molecule as a generic-residue PQR file."""
    with open(path, "w", encoding="utf-8") as fh:
        for i, (p, q, r) in enumerate(zip(molecule.positions,
                                          molecule.charges,
                                          molecule.radii), start=1):
            fh.write(
                f"ATOM  {i:>5d}  X   RES A{min(i, 9999):>4d}    "
                f"{p[0]:8.3f}{p[1]:8.3f}{p[2]:8.3f} {q:8.4f} {r:7.4f}\n")
        fh.write("END\n")


def _slurp(src: Union[PathLike, io.StringIO]) -> str:
    if isinstance(src, io.StringIO):
        return src.getvalue()
    path = Path(src)
    return path.read_text(encoding="utf-8")
