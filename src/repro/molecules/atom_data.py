"""Per-element atomic data used to synthesise realistic molecules.

Radii are Bondi van der Waals radii (Å) — the same intrinsic radii most
GB implementations use as the Born-radius floor.  Charges in the
synthetic generators are drawn from residue-level templates whose
magnitudes mimic Amber ff partial charges.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Bondi van der Waals radii in Å for the elements found in proteins.
VDW_RADII: Dict[str, float] = {
    "H": 1.20,
    "C": 1.70,
    "N": 1.55,
    "O": 1.52,
    "S": 1.80,
    "P": 1.80,
}

#: Atomic masses (amu), used only for centre-of-mass bookkeeping.
MASSES: Dict[str, float] = {
    "H": 1.008,
    "C": 12.011,
    "N": 14.007,
    "O": 15.999,
    "S": 32.06,
    "P": 30.974,
}

#: Rough element composition of an average protein residue
#: (glycine–leucine-ish mixture): (element, multiplicity).
RESIDUE_COMPOSITION = (
    ("N", 1),
    ("C", 4),
    ("O", 1),
    ("H", 7),
)

#: Atoms per average residue implied by :data:`RESIDUE_COMPOSITION`.
ATOMS_PER_RESIDUE = sum(n for _, n in RESIDUE_COMPOSITION)

#: Typical absolute partial charge per element in Amber-style force
#: fields; the generator samples signed charges around these magnitudes
#: and then neutralises each residue to a small integer total.
TYPICAL_ABS_CHARGE: Dict[str, float] = {
    "H": 0.15,
    "C": 0.20,
    "N": 0.45,
    "O": 0.55,
    "S": 0.25,
    "P": 0.80,
}


def element_radii(elements: np.ndarray) -> np.ndarray:
    """Map an array of element symbols to Bondi radii.

    Unknown symbols fall back to carbon's radius, matching the lenient
    behaviour of PDB-driven pipelines.
    """
    carbon = VDW_RADII["C"]
    return np.array([VDW_RADII.get(e, carbon) for e in elements], dtype=np.float64)


def element_masses(elements: np.ndarray) -> np.ndarray:
    """Map element symbols to atomic masses (carbon fallback)."""
    carbon = MASSES["C"]
    return np.array([MASSES.get(e, carbon) for e in elements], dtype=np.float64)
