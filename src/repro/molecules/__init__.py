"""Molecular substrate: molecules, surfaces, quadrature, generators, I/O."""

from repro.molecules.molecule import Molecule, SurfaceSamples
from repro.molecules.generator import (
    synthetic_protein,
    zdock_like_suite,
    virus_capsid,
    random_ligand,
)
from repro.molecules.surface import sample_surface
from repro.molecules.quadrature import dunavant_rule, triangle_quadrature
from repro.molecules.transform import RigidTransform
from repro.molecules import pdbio

__all__ = [
    "Molecule",
    "SurfaceSamples",
    "synthetic_protein",
    "zdock_like_suite",
    "virus_capsid",
    "random_ligand",
    "sample_surface",
    "dunavant_rule",
    "triangle_quadrature",
    "RigidTransform",
    "pdbio",
]
