"""Emulators of the comparison packages (paper Table II).

Each emulator couples

* a real Born-radius model (:mod:`repro.baselines.pairwise_gb`,
  :mod:`repro.baselines.gbr6_volume`),
* real nonbonded-list construction with the package's characteristic
  cutoff,
* a timing model on the shared :class:`~repro.cluster.costmodel.CostModel`
  (pair-interaction flops × a per-package efficiency constant ×
  parallel efficiency of the package's parallelism style), and
* a memory model whose out-of-memory behaviour matches the paper's
  observations (Tinker dies above ~12k atoms, GBr⁶ above ~13k; §V-D).

Efficiency constants are calibrated so the 12-core speedups *relative
to Amber* land near the paper's Fig. 8(b); the scaling *shapes* follow
from the algorithms (cutoff-pair counts vs. octree traversals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.baselines.gbr6_volume import born_radii_gbr6_volume
from repro.baselines.nblist import NonbondedList
from repro.baselines.pairwise_gb import (
    born_radii_hct,
    born_radii_obc,
    born_radii_still_r4,
)
from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, lonestar4
from repro.core.energy_naive import epol_naive
from repro.molecules.molecule import Molecule

#: Flops charged per pair interaction (descreening integral + f_GB).
FLOPS_PAIR_GB = 90.0
#: Flops charged per nblist candidate test.
FLOPS_NBLIST_TEST = 10.0


@dataclass
class PackageResult:
    """Outcome of running one package emulator."""

    name: str
    gb_model: str
    parallelism: str
    cores: int
    natoms: int
    energy: Optional[float]
    born_radii: Optional[np.ndarray]
    wall_seconds: Optional[float]
    memory_bytes: int
    oom: bool = False

    def describe(self) -> str:
        if self.oom:
            return (f"{self.name}: OOM at {self.natoms} atoms "
                    f"(needs {self.memory_bytes / 1e9:.1f} GB)")
        return (f"{self.name}: E={self.energy:.2f} kcal/mol, "
                f"t={self.wall_seconds:.4f}s on {self.cores} cores")


@dataclass
class PackageEmulator:
    """Shared machinery for all package emulators."""

    name: str
    gb_model: str
    parallelism: str
    #: Pair cutoff in Å; ``None`` = all pairs (Tinker, GBr⁶).
    cutoff: Optional[float]
    #: Per-package constant-factor slowdown vs the flop model
    #: (calibrated to Fig. 8(b) relative speeds).
    efficiency_factor: float
    #: Parallel efficiency at 12 cores for the package's runtime.
    parallel_efficiency: float
    #: Per-run fixed overhead (setup, I/O, force-field bookkeeping), s.
    startup_seconds: float
    #: Memory bytes per (stored) pair — packages keeping per-pair state
    #: beyond the half nblist get larger constants.
    bytes_per_pair: float
    #: Radii solver: Molecule, nblist|None, cutoff|None → radii.
    radii_fn: Callable = born_radii_hct
    #: Hard ceiling on usable cores (GBr⁶ is serial; Amber's cap is 256).
    max_cores: int = 10 ** 6

    def _pair_count(self, molecule: Molecule,
                    nblist: Optional[NonbondedList]) -> float:
        if nblist is not None:
            return float(nblist.npairs)
        m = molecule.natoms
        return 0.5 * m * (m - 1)

    def memory_estimate(self, molecule: Molecule,
                        nblist: Optional[NonbondedList]) -> int:
        base = molecule.nbytes() * 4  # coordinates, forces, parameters…
        pairs = self._pair_count(molecule, nblist)
        return int(base + self.bytes_per_pair * pairs)

    def run(self, molecule: Molecule,
            cores: int = 12,
            machine: Optional[MachineSpec] = None,
            cost: Optional[CostModel] = None,
            compute_energy: bool = True,
            cutoff_override: Optional[float] = None) -> PackageResult:
        """Run the emulator: real radii/energy, modelled wall seconds."""
        machine = machine or lonestar4()
        cost = cost or CostModel(machine=machine)
        cores = min(cores, self.max_cores)
        cutoff = cutoff_override if cutoff_override is not None else self.cutoff

        nblist = None
        if cutoff is not None:
            nblist = NonbondedList.build(molecule.positions, cutoff)

        mem = self.memory_estimate(molecule, nblist)
        if mem > machine.node.ram_bytes:
            return PackageResult(
                name=self.name, gb_model=self.gb_model,
                parallelism=self.parallelism, cores=cores,
                natoms=molecule.natoms, energy=None, born_radii=None,
                wall_seconds=None, memory_bytes=mem, oom=True)

        radii = self.radii_fn(molecule, nblist, cutoff)
        energy = (epol_naive(molecule, radii) if compute_energy else None)

        pairs = self._pair_count(molecule, nblist)
        build_ops = nblist.build_ops if nblist is not None else pairs
        # Born pass + energy pass each walk the pair set once.
        flops = (FLOPS_NBLIST_TEST * build_ops + 2.0 * FLOPS_PAIR_GB * pairs)
        serial = flops * cost.seconds_per_flop() * self.efficiency_factor
        eff_cores = max(1.0, cores * self.parallel_efficiency)
        wall = serial / eff_cores + self.startup_seconds

        return PackageResult(
            name=self.name, gb_model=self.gb_model,
            parallelism=self.parallelism, cores=cores,
            natoms=molecule.natoms, energy=energy, born_radii=radii,
            wall_seconds=wall, memory_bytes=mem)


def AmberEmulator() -> PackageEmulator:
    """Amber 12 GB (HCT), MPI distributed, 25 Å GB cutoff."""
    return PackageEmulator(
        name="Amber", gb_model="HCT", parallelism="Distributed (MPI)",
        cutoff=25.0, efficiency_factor=5.0, parallel_efficiency=0.75,
        startup_seconds=2e-2, bytes_per_pair=16.0,
        radii_fn=born_radii_hct, max_cores=256)


def GromacsEmulator() -> PackageEmulator:
    """Gromacs 4.5.3 GB (HCT), MPI distributed — the fastest comparator."""
    return PackageEmulator(
        name="Gromacs", gb_model="HCT", parallelism="Distributed (MPI)",
        cutoff=25.0, efficiency_factor=1.85, parallel_efficiency=0.75,
        startup_seconds=7e-3, bytes_per_pair=16.0,
        radii_fn=born_radii_hct)


def NamdEmulator() -> PackageEmulator:
    """NAMD 2.9 GB (OBC), Charm++/MPI; GB-only time obtained by
    differencing two runs in the paper — hence the large constants."""
    return PackageEmulator(
        name="NAMD", gb_model="OBC", parallelism="Distributed (MPI)",
        cutoff=25.0, efficiency_factor=5.3, parallel_efficiency=0.70,
        startup_seconds=1.8e-2, bytes_per_pair=24.0,
        radii_fn=born_radii_obc)


def TinkerEmulator() -> PackageEmulator:
    """Tinker 6.0 GB (STILL), OpenMP shared memory, no cutoff; keeps
    per-pair state per thread and dies above ~12k atoms on 24 GB."""
    return PackageEmulator(
        name="Tinker", gb_model="STILL", parallelism="Shared (OpenMP)",
        cutoff=None, efficiency_factor=8.0, parallel_efficiency=0.55,
        startup_seconds=3e-3, bytes_per_pair=330.0,
        radii_fn=lambda mol, nb, cut: born_radii_still_r4(mol),
        max_cores=12)


def GBr6Emulator() -> PackageEmulator:
    """GBr⁶ (volume r⁶, STILL energy), serial, no cutoff; pair-matrix
    storage dies above ~13k atoms on 24 GB."""
    return PackageEmulator(
        name="GBr6", gb_model="STILL", parallelism="Serial",
        cutoff=None, efficiency_factor=4.1, parallel_efficiency=1.0,
        startup_seconds=5e-4, bytes_per_pair=290.0,
        radii_fn=born_radii_gbr6_volume, max_cores=1)
