"""Volume-based r⁶ Born radii — the GBr⁶ comparator (Tjong & Zhou 2007).

GBr⁶ evaluates Grycuk's r⁶ integral over the *solute volume* rather
than its surface (the paper contrasts this with its own "surface-based
r⁶-approximation").  The volume integral over the union of atom spheres
is approximated, as in pairwise-descreening methods, by summing the
closed-form integral of ``|r − x_i|⁻⁶`` over each neighbour sphere:

    ∫_{ball(a) at distance d}  dV / |r|⁶
        = π/(2d) · [ F(d, a) ]   (derived by elementary integration)

with overlap handled by shrinking the descreener to its part outside
atom *i*.  ``1/R³ = 1/ρ³ − (3/4π) Σ_j ∫_j`` then mirrors GBr⁶'s
construction; it is parameter-free, which is GBr⁶'s selling point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.nblist import NonbondedList
from repro.constants import FOUR_PI
from repro.molecules.molecule import Molecule


def sphere_r6_integral(d: np.ndarray, a: np.ndarray) -> np.ndarray:
    """∫ dV/|r−c|⁶ over a ball of radius ``a`` whose centre is at
    distance ``d`` from the evaluation point, for ``d > a`` (vectorised).

    Closed form from the radial decomposition
    ``π/(2d) ∫₀ᵃ r [ (d−r)⁻⁴ − (d+r)⁻⁴ ] dr``.
    """
    d = np.asarray(d, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if np.any(d <= a):
        raise ValueError("closed form requires d > a (no overlap)")
    dm, dp = d - a, d + a
    term_minus = (d / 3.0) * (dm ** -3 - d ** -3) - 0.5 * (dm ** -2 - d ** -2)
    term_plus = (-0.5 * dp ** -2 + (d / 3.0) * dp ** -3) \
        - (-0.5 * d ** -2 + (1.0 / 3.0) * d ** -2)
    return np.pi / (2.0 * d) * (term_minus - term_plus)


def born_radii_gbr6_volume(molecule: Molecule,
                           nblist: Optional[NonbondedList] = None,
                           cutoff: Optional[float] = None) -> np.ndarray:
    """GBr⁶-style volume r⁶ Born radii.

    Overlapping descreeners are shrunk to the sphere tangent to atom
    *i*'s surface (radius ``min(a, d − ρ_i)``), which removes the
    double-counted self region at the usual pairwise-descreening level
    of approximation.
    """
    pos = molecule.positions
    rho = molecule.radii
    n = molecule.natoms
    if nblist is None:
        span = float(np.linalg.norm(pos.max(axis=0) - pos.min(axis=0)))
        nblist = NonbondedList.build(pos, min(cutoff or 1e30, span + 1.0))

    sums = np.zeros(n)
    for ii, jj in nblist.iter_pair_blocks():
        r = np.linalg.norm(pos[ii] - pos[jj], axis=1)
        for a_idx, b_idx in ((ii, jj), (jj, ii)):
            # descreening of atom a by sphere b
            a_eff = np.minimum(rho[b_idx], r - rho[a_idx])
            ok = a_eff > 1e-6
            if not ok.any():
                continue
            vals = sphere_r6_integral(r[ok], a_eff[ok] * (1.0 - 1e-9))
            sums += np.bincount(a_idx[ok], weights=vals, minlength=n)
    inv3 = 1.0 / rho ** 3 - (3.0 / FOUR_PI) * sums
    span = float(np.linalg.norm(pos.max(axis=0) - pos.min(axis=0)))
    inv3 = np.maximum(inv3, 1.0 / (span + 1.0) ** 3)
    return np.maximum(inv3 ** (-1.0 / 3.0), rho)
