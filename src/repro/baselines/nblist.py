"""Cutoff nonbonded lists — the data structure the paper argues against.

Section II ("Octrees vs Nblists"): an nblist's size grows linearly with
the atom count *and cubically with the distance cutoff*, updating it is
costly, and MD packages using nblists run out of memory for very large
molecules.  This module implements the classic cell-grid-built CSR
nonbonded list so those properties can be measured, not just asserted
(see ``tests/baselines/test_nblist.py`` and the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np
from scipy.spatial import cKDTree


@dataclass
class NonbondedList:
    """CSR half-list of atom pairs within a cutoff.

    ``neighbors[offsets[i]:offsets[i+1]]`` are the partners ``j > i`` of
    atom ``i``.  ``build_ops`` counts candidate-pair distance tests (the
    construction cost); ``nbytes`` is the structure's memory footprint —
    the quantity that grows as ``O(M · cutoff³)`` at fixed density.
    """

    cutoff: float
    offsets: np.ndarray
    neighbors: np.ndarray
    build_ops: int

    #: Modelled candidate-tests per accepted pair for a cell-grid build
    #: (volume ratio of a 3-cell cube to the cutoff ball ≈ 27/(4π/3)).
    CANDIDATE_FACTOR = 6.4

    @classmethod
    def build(cls, positions: np.ndarray, cutoff: float) -> "NonbondedList":
        positions = np.asarray(positions, dtype=np.float64)
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        n = len(positions)
        kd = cKDTree(positions)
        pairs = kd.query_pairs(cutoff, output_type="ndarray")
        if len(pairs):
            lo = pairs[:, 0]
            hi = pairs[:, 1]
            order = np.argsort(lo, kind="stable")
            lo, hi = lo[order], hi[order]
            counts = np.bincount(lo, minlength=n)
            neighbors = hi.astype(np.int64)
        else:
            counts = np.zeros(n, dtype=np.int64)
            neighbors = np.empty(0, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        ops = int(cls.CANDIDATE_FACTOR * len(neighbors)) + n
        return cls(cutoff=cutoff, offsets=offsets, neighbors=neighbors,
                   build_ops=ops)

    @property
    def npairs(self) -> int:
        return int(len(self.neighbors))

    @property
    def natoms(self) -> int:
        return len(self.offsets) - 1

    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.neighbors.nbytes)

    def partners_of(self, i: int) -> np.ndarray:
        """Neighbours ``j > i`` of atom ``i``."""
        return self.neighbors[self.offsets[i]:self.offsets[i + 1]]

    def iter_pair_blocks(self, block: int = 262144
                         ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (i, j) pair chunks for vectorised kernels."""
        n = self.natoms
        row_of = np.repeat(np.arange(n), np.diff(self.offsets))
        for lo in range(0, self.npairs, block):
            hi = min(lo + block, self.npairs)
            yield row_of[lo:hi], self.neighbors[lo:hi]

    def update_ops(self) -> int:
        """Modelled cost (pair tests) of refreshing the list after atoms
        move — proportional to the candidate count, i.e. cutoff-cubic."""
        return self.build_ops
