"""Name → package-emulator registry (paper Table II)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.packages import (
    AmberEmulator,
    GBr6Emulator,
    GromacsEmulator,
    NamdEmulator,
    PackageEmulator,
    TinkerEmulator,
)

#: Factories for every comparator the paper benchmarks.
PACKAGES: Dict[str, Callable[[], PackageEmulator]] = {
    "Amber": AmberEmulator,
    "Gromacs": GromacsEmulator,
    "NAMD": NamdEmulator,
    "Tinker": TinkerEmulator,
    "GBr6": GBr6Emulator,
}


def get_package(name: str) -> PackageEmulator:
    """Instantiate a package emulator by (case-insensitive) name."""
    for key, factory in PACKAGES.items():
        if key.lower() == name.lower():
            return factory()
    raise KeyError(f"unknown package {name!r}; known: {sorted(PACKAGES)}")
