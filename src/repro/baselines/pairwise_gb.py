"""Pairwise-descreening Born radii: HCT, OBC, and a Still-style r⁴ model.

These are the GB flavours inside the comparison packages (paper
Table II): Amber 12 and Gromacs 4.5.3 use HCT, NAMD 2.9 uses OBC,
Tinker 6.0 and GBr⁶ use STILL.  HCT/OBC compute each atom's descreening
integral as a sum of closed-form sphere integrals over its neighbours
(Hawkins–Cramer–Truhlar 1996; Onufriev–Bashford–Case 2004); the
Still-style stand-in here uses the *surface-based r⁴* approximation
(paper Eq. 3), which is a genuinely different Born-radius model and —
like the real Tinker — yields systematically shifted energies (paper
Fig. 9: "energy values reported by Tinker were around 70 % of the naive
energy").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.nblist import NonbondedList
from repro.core.born_naive import born_radii_naive_r4
from repro.molecules.molecule import Molecule

#: HCT dielectric offset (Å): descreening uses ρ̃ = ρ − OFFSET.
HCT_OFFSET = 0.09
#: Descreener radius scale factors.  The published per-element values
#: (~0.7–0.85) assume covalent-bond-level sphere overlap; the synthetic
#: generator overlaps atoms more, so these are recalibrated once so the
#: HCT/OBC energies agree with the naive r⁶ reference to within a few
#: per cent on the synthetic suite — matching the paper's Fig. 9, where
#: Amber/Gromacs/NAMD track the naive energy closely.
HCT_SCALE = 0.65
OBC_SCALE = 0.61
#: OBC-II tanh parameters.
OBC_ALPHA, OBC_BETA, OBC_GAMMA = 1.0, 0.8, 4.85


def _hct_pair_integral(r: np.ndarray, rho_i: np.ndarray,
                       s_rho_j: np.ndarray) -> np.ndarray:
    """Hawkins–Cramer–Truhlar closed-form descreening integral.

    The contribution of a descreening sphere of radius ``s_rho_j`` at
    distance ``r`` to atom *i*'s inverse Born radius, with atom *i*'s
    (offset) intrinsic radius ``rho_i``.  Vectorised over pairs.
    """
    U = r + s_rho_j
    # A sphere entirely inside atom i's own radius descreens nothing.
    contrib = np.zeros_like(r)
    mask = U > rho_i
    if not mask.any():
        return contrib
    r_m = r[mask]
    rho_m = rho_i[mask]
    s_m = s_rho_j[mask]
    L = np.maximum(np.abs(r_m - s_m), rho_m)
    U_m = r_m + s_m
    invL, invU = 1.0 / L, 1.0 / U_m
    term = (invL - invU
            + 0.25 * r_m * (invU ** 2 - invL ** 2)
            + 0.5 / r_m * np.log(L / U_m)
            + 0.25 * (s_m ** 2) / r_m * (invL ** 2 - invU ** 2))
    contrib[mask] = 0.5 * term
    return contrib


def _descreening_sums(molecule: Molecule,
                      nblist: Optional[NonbondedList],
                      cutoff: Optional[float],
                      block: int = 512,
                      scale: float = HCT_SCALE) -> np.ndarray:
    """Σ_j HCT integrals for every atom (both directions of each pair).

    With a cutoff (or prebuilt nblist) the sum runs over listed pairs;
    without one it runs as blocked dense panels — no O(M²) index
    structure is ever materialised.
    """
    pos = molecule.positions
    rho = np.maximum(molecule.radii - HCT_OFFSET, 0.3)
    n = molecule.natoms
    sums = np.zeros(n)
    if nblist is None and cutoff is None:
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            diff = pos[lo:hi, None, :] - pos[None, :, :]
            r = np.sqrt(np.einsum("bjk,bjk->bj", diff, diff))
            rows = np.repeat(np.arange(lo, hi), n)
            cols = np.tile(np.arange(n), hi - lo)
            keep = rows != cols
            vals = _hct_pair_integral(r.ravel()[keep], rho[rows[keep]],
                                      scale * rho[cols[keep]])
            sums += np.bincount(rows[keep], weights=vals, minlength=n)
        return sums
    if nblist is None:
        nblist = NonbondedList.build(pos, min(cutoff, _diameter(pos) + 1.0))
    for ii, jj in nblist.iter_pair_blocks():
        r = np.linalg.norm(pos[ii] - pos[jj], axis=1)
        sums += np.bincount(
            ii, weights=_hct_pair_integral(r, rho[ii], scale * rho[jj]),
            minlength=n)
        sums += np.bincount(
            jj, weights=_hct_pair_integral(r, rho[jj], scale * rho[ii]),
            minlength=n)
    return sums


def _diameter(pos: np.ndarray) -> float:
    return float(np.linalg.norm(pos.max(axis=0) - pos.min(axis=0)))


def born_radii_hct(molecule: Molecule,
                   nblist: Optional[NonbondedList] = None,
                   cutoff: Optional[float] = None) -> np.ndarray:
    """HCT Born radii: ``1/R = 1/ρ̃ − Σ_j I_j`` (Amber/Gromacs model)."""
    rho = np.maximum(molecule.radii - HCT_OFFSET, 0.3)
    inv = 1.0 / rho - _descreening_sums(molecule, nblist, cutoff,
                                        scale=HCT_SCALE)
    # Deeply buried atoms can drive 1/R ≤ 0 with scaled descreeners;
    # clamp to a generous maximum like real packages do (rgbmax).
    inv = np.maximum(inv, 1.0 / (_diameter(molecule.positions) + 1.0))
    return np.maximum(1.0 / inv, molecule.radii)


def born_radii_obc(molecule: Molecule,
                   nblist: Optional[NonbondedList] = None,
                   cutoff: Optional[float] = None) -> np.ndarray:
    """OBC-II Born radii: tanh-rescaled HCT integral (NAMD model)."""
    rho_t = np.maximum(molecule.radii - HCT_OFFSET, 0.3)
    rho = molecule.radii
    psi = rho_t * _descreening_sums(molecule, nblist, cutoff,
                                    scale=OBC_SCALE)
    inner = OBC_ALPHA * psi - OBC_BETA * psi ** 2 + OBC_GAMMA * psi ** 3
    inv = 1.0 / rho_t - np.tanh(inner) / rho
    inv = np.maximum(inv, 1.0 / (_diameter(molecule.positions) + 1.0))
    return np.maximum(1.0 / inv, molecule.radii)


def born_radii_still_r4(molecule: Molecule) -> np.ndarray:
    """Still-style Born radii via the surface r⁴ approximation (Eq. 3).

    Stands in for Tinker's empirical STILL parameterisation; like it,
    this is a different functional form from the r⁶ model and produces
    visibly shifted polarization energies.
    """
    return born_radii_naive_r4(molecule)
