"""Baseline comparators: the algorithms inside the packages the paper
benchmarks against (Amber 12, Gromacs 4.5.3, NAMD 2.9, Tinker 6.0,
GBr⁶), re-implemented from their published formulas.

These are *emulators*: the Born-radius models (HCT, OBC, STILL-style,
volume r⁶) and the cutoff nonbonded-list machinery are real
implementations producing real energies; the wall-clock seconds come
from the same machine cost model the octree drivers use, with
per-package efficiency constants calibrated to the paper's reported
relative speeds (see DESIGN.md §2).
"""

from repro.baselines.nblist import NonbondedList
from repro.baselines.pairwise_gb import (
    born_radii_hct,
    born_radii_obc,
    born_radii_still_r4,
)
from repro.baselines.gbr6_volume import born_radii_gbr6_volume
from repro.baselines.packages import (
    PackageResult,
    AmberEmulator,
    GromacsEmulator,
    NamdEmulator,
    TinkerEmulator,
    GBr6Emulator,
)
from repro.baselines.registry import PACKAGES, get_package

__all__ = [
    "NonbondedList",
    "born_radii_hct",
    "born_radii_obc",
    "born_radii_still_r4",
    "born_radii_gbr6_volume",
    "PackageResult",
    "AmberEmulator",
    "GromacsEmulator",
    "NamdEmulator",
    "TinkerEmulator",
    "GBr6Emulator",
    "PACKAGES",
    "get_package",
]
