"""One runner per paper table/figure (the benchmark harness's engine).

Every ``figN_*`` function reproduces the corresponding figure/table of
the paper and returns both structured rows and a rendered text block.
Benchmarks call these; EXPERIMENTS.md records their output next to the
paper's reported values.

Workload sizes default to a scaled-down but shape-preserving setting so
the whole suite runs on one laptop core in minutes; scale up with the
``REPRO_BENCH_SCALE`` environment variable (1 = default, 2 ≈ paper-size
ZDock suite subset, …).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import mean_std, min_max_over_runs, percent_error
from repro.analysis.tables import Table
from repro.baselines import PACKAGES, get_package
from repro.cluster.machine import MachineSpec, lonestar4
from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.core.energy_octree import epol_octree
from repro.molecules import synthetic_protein, virus_capsid
from repro.obs import traced
from repro.molecules.molecule import Molecule
from repro.parallel import WorkProfile, simulate_fig4


def bench_scale() -> float:
    """Global workload scale knob (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


# ---------------------------------------------------------------------------
# Shared cached workloads
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def suite_molecule(size: int, seed: int = 5) -> Molecule:
    return synthetic_protein(size, seed=seed)


@lru_cache(maxsize=None)
def _naive_reference(size: int, seed: int = 5) -> Tuple[np.ndarray, float]:
    m = suite_molecule(size, seed)
    radii = born_radii_naive_r6(m)
    return radii, epol_naive(m, radii)


def suite_sizes(max_size: Optional[int] = None) -> List[int]:
    """ZDock-like size ladder, 400 → 16,000 atoms (log-spaced)."""
    base = [400, 800, 1500, 2800, 5200, 9000, 16000]
    cap = max_size or int(16000 * min(1.0, bench_scale()))
    sizes = [s for s in base if s <= cap]
    return sizes or [base[0]]


@lru_cache(maxsize=None)
def _profile(size: int, params: ApproxParams, method: str) -> WorkProfile:
    return WorkProfile.from_molecule(suite_molecule(size), params,
                                     method=method)


@lru_cache(maxsize=None)
def capsid_molecule(natoms: int = 24000, seed: int = 11) -> Molecule:
    return virus_capsid(natoms, seed=seed)


@lru_cache(maxsize=None)
def _capsid_profile(natoms: int, params: ApproxParams,
                    method: str = "octree") -> WorkProfile:
    return WorkProfile.from_molecule(capsid_molecule(natoms), params,
                                     method=method)


#: Approximation setting of the paper's timing experiments (§V-C).
PAPER_PARAMS = ApproxParams(eps_born=0.9, eps_epol=0.9, approx_math=True)
#: Fig. 10's setting (approximate math off).
SWEEP_PARAMS = ApproxParams(eps_born=0.9, eps_epol=0.9, approx_math=False)
#: Capsid (Figs. 5/6/11) setting: a finer leaf size keeps the
#: leaves-per-rank statistics of the paper's 6M-atom BTV runs at our
#: scaled-down capsid size, so static-division imbalance stays at the
#: paper's (negligible) level rather than being amplified 250×.
CAPSID_PARAMS = PAPER_PARAMS.with_(leaf_size=8)


# ---------------------------------------------------------------------------
# Table I / Table II
# ---------------------------------------------------------------------------


@traced("experiment.table1_machine", cat="analysis")
def table1_machine() -> str:
    """Render the simulated Table I environment."""
    spec = lonestar4()
    t = Table(["Attribute", "Property"], title="Table I: simulated machine")
    t.add_row("Processors", f"{spec.node.ghz} GHz hexa-core (Westmere model)")
    t.add_row("Cores/node", spec.node.cores)
    t.add_row("RAM", f"{spec.node.ram_bytes / 1024**3:.0f} GB")
    t.add_row("Cache",
              f"{spec.node.l3_bytes // 1024**2} MB L3/socket, "
              f"{spec.node.l1_bytes // 1024} KB L1, "
              f"{spec.node.l2_bytes // 1024} KB L2")
    t.add_row("Interconnect",
              f"fat-tree model, t_s={spec.network.ts_inter:.1e}s, "
              f"t_w={spec.network.tw_inter:.1e}s/word")
    t.add_row("Nodes", spec.nodes)
    return t.render()


@traced("experiment.table2_packages", cat="analysis")
def table2_packages() -> str:
    """Render the Table II program inventory."""
    t = Table(["Package", "GB-Model", "Parallelism"],
              title="Table II: programs under comparison")
    for name in PACKAGES:
        pk = get_package(name)
        t.add_row(pk.name, pk.gb_model, pk.parallelism)
    t.add_row("OCT_CILK", "STILL", "Shared (cilk++ sim)")
    t.add_row("OCT_MPI", "STILL", "Distributed (SimMPI)")
    t.add_row("OCT_MPI+CILK", "STILL", "Distributed (SimMPI+cilk sim)")
    t.add_row("Naive", "STILL", "Serial")
    return t.render()


# ---------------------------------------------------------------------------
# Fig. 5 / Fig. 6 — scalability with core count (BTV/CMV stand-in capsid)
# ---------------------------------------------------------------------------

FIG56_CORES = (12, 24, 48, 96, 144, 192, 288, 480)


@dataclass
class ScalingRow:
    cores: int
    mpi_seconds: float
    hybrid_seconds: float


@traced("experiment.fig5_speedup", cat="analysis")
def fig5_speedup(capsid_atoms: Optional[int] = None,
                 cores: Sequence[int] = FIG56_CORES,
                 machine: Optional[MachineSpec] = None
                 ) -> Tuple[List[ScalingRow], str]:
    """Fig. 5: running time and speedup vs core count on a large capsid.

    Speedup is relative to one node (12 cores), as in the paper.
    """
    atoms = capsid_atoms or int(24000 * bench_scale())
    machine = machine or lonestar4(nodes=40)
    prof = _capsid_profile(atoms, CAPSID_PARAMS)
    rows = [ScalingRow(
        cores=c,
        mpi_seconds=simulate_fig4(prof, c, 1, machine=machine,
                                  seed=1).wall_seconds,
        hybrid_seconds=simulate_fig4(prof, max(1, c // 6), 6,
                                     machine=machine, seed=1).wall_seconds)
        for c in cores]
    base_mpi = rows[0].mpi_seconds
    base_hyb = rows[0].hybrid_seconds
    t = Table(["cores", "OCT_MPI (s)", "speedup", "OCT_MPI+CILK (s)",
               "speedup"],
              title=f"Fig 5: scalability on capsid ({atoms} atoms)")
    for r in rows:
        t.add_row(r.cores, r.mpi_seconds, base_mpi / r.mpi_seconds,
                  r.hybrid_seconds, base_hyb / r.hybrid_seconds)
    return rows, t.render()


@traced("experiment.fig6_minmax", cat="analysis")
def fig6_minmax(capsid_atoms: Optional[int] = None,
                cores: Sequence[int] = FIG56_CORES,
                n_runs: int = 20,
                machine: Optional[MachineSpec] = None) -> Tuple[Dict, str]:
    """Fig. 6: min/max running time over ``n_runs`` seeded repetitions."""
    atoms = capsid_atoms or int(24000 * bench_scale())
    machine = machine or lonestar4(nodes=40)
    prof = _capsid_profile(atoms, CAPSID_PARAMS)
    out: Dict[int, Dict[str, Tuple[float, float]]] = {}
    t = Table(["cores", "MPI min", "MPI max", "HYB min", "HYB max",
               "hyb min wins"],
              title=f"Fig 6: min/max over {n_runs} runs ({atoms} atoms)")
    for c in cores:
        mpi = min_max_over_runs(
            lambda s: simulate_fig4(prof, c, 1, machine=machine,
                                    seed=s).wall_seconds, n_runs)
        hyb = min_max_over_runs(
            lambda s: simulate_fig4(prof, max(1, c // 6), 6,
                                    machine=machine, seed=s).wall_seconds,
            n_runs)
        out[c] = {"mpi": mpi, "hybrid": hyb}
        t.add_row(c, mpi[0], mpi[1], hyb[0], hyb[1], hyb[0] < mpi[0])
    return out, t.render()


# ---------------------------------------------------------------------------
# Fig. 7 — octree variants across the ZDock-like suite
# ---------------------------------------------------------------------------


@traced("experiment.fig7_octree_variants", cat="analysis")
def fig7_octree_variants(sizes: Optional[Sequence[int]] = None
                         ) -> Tuple[List[Dict], str]:
    """Fig. 7: OCT_CILK vs OCT_MPI vs OCT_MPI+CILK, 12 cores, ε=0.9/0.9,
    approximate math on."""
    sizes = list(sizes or suite_sizes())
    rows = []
    for n in sizes:
        prof = _profile(n, PAPER_PARAMS, "octree")
        profc = _profile(n, PAPER_PARAMS, "dualtree")
        rows.append({
            "natoms": n,
            "OCT_CILK": simulate_fig4(profc, 1, 12, seed=1).wall_seconds,
            "OCT_MPI": simulate_fig4(prof, 12, 1, seed=1).wall_seconds,
            "OCT_MPI+CILK": simulate_fig4(prof, 2, 6, seed=1).wall_seconds,
        })
    rows.sort(key=lambda r: r["OCT_CILK"])
    t = Table(["atoms", "OCT_CILK (s)", "OCT_MPI (s)", "OCT_MPI+CILK (s)"],
              title="Fig 7: octree variants, 12 cores (sorted by OCT_CILK)")
    for r in rows:
        t.add_row(r["natoms"], r["OCT_CILK"], r["OCT_MPI"],
                  r["OCT_MPI+CILK"])
    return rows, t.render()


# ---------------------------------------------------------------------------
# Fig. 8 — all packages, running time and speedup w.r.t. Amber
# ---------------------------------------------------------------------------


@traced("experiment.fig8_packages", cat="analysis")
def fig8_packages(sizes: Optional[Sequence[int]] = None
                  ) -> Tuple[List[Dict], str]:
    """Fig. 8(a,b): package running times and speedups w.r.t. Amber on
    12 cores, sorted by molecule size."""
    sizes = list(sizes or suite_sizes())
    rows = []
    for n in sizes:
        m = suite_molecule(n)
        row: Dict[str, object] = {"natoms": n}
        for name in PACKAGES:
            res = get_package(name).run(m, cores=12, compute_energy=False)
            row[name] = None if res.oom else res.wall_seconds
        prof = _profile(n, PAPER_PARAMS, "octree")
        row["OCT_MPI"] = simulate_fig4(prof, 12, 1, seed=1).wall_seconds
        row["OCT_MPI+CILK"] = simulate_fig4(prof, 2, 6, seed=1).wall_seconds
        rows.append(row)
    cols = ["atoms"] + list(PACKAGES) + ["OCT_MPI", "OCT_MPI+CILK"]
    ta = Table(cols, title="Fig 8a: running time (s), 12 cores")
    tb = Table(cols, title="Fig 8b: speedup w.r.t. Amber")
    for r in rows:
        amber = r["Amber"]
        ta.add_row(r["natoms"], *["OOM" if r[c] is None else r[c]
                                  for c in cols[1:]])
        tb.add_row(r["natoms"], *["OOM" if r[c] is None else amber / r[c]
                                  for c in cols[1:]])
    return rows, ta.render() + "\n\n" + tb.render()


# ---------------------------------------------------------------------------
# Fig. 9 — energy values per algorithm
# ---------------------------------------------------------------------------


@traced("experiment.fig9_energy_values", cat="analysis")
def fig9_energy_values(sizes: Optional[Sequence[int]] = None
                       ) -> Tuple[List[Dict], str]:
    """Fig. 9: E_pol per package vs the naive reference."""
    sizes = list(sizes or suite_sizes())
    rows = []
    for n in sizes:
        m = suite_molecule(n)
        _, e_naive = _naive_reference(n)
        row: Dict[str, object] = {"natoms": n, "Naive": e_naive}
        prof = _profile(n, PAPER_PARAMS.with_(approx_math=False), "octree")
        row["OCT"] = prof.energy
        for name in PACKAGES:
            res = get_package(name).run(m, cores=12)
            row[name] = None if res.oom else res.energy
        rows.append(row)
    cols = ["atoms", "Naive", "OCT"] + list(PACKAGES)
    t = Table(cols, title="Fig 9: E_pol (kcal/mol) per algorithm")
    for r in rows:
        t.add_row(r["natoms"], *["OOM" if r[c] is None else r[c]
                                 for c in cols[1:]])
    return rows, t.render()


# ---------------------------------------------------------------------------
# Fig. 10 — error and running time vs ε_epol
# ---------------------------------------------------------------------------


@traced("experiment.fig10_epsilon_sweep", cat="analysis")
def fig10_epsilon_sweep(sizes: Optional[Sequence[int]] = None,
                        eps_values: Sequence[float] = (0.1, 0.3, 0.5,
                                                       0.7, 0.9)
                        ) -> Tuple[List[Dict], str]:
    """Fig. 10: % error (avg ± std across the suite) and running time vs
    the energy approximation parameter; ε_born fixed at 0.9, approximate
    math off."""
    sizes = list(sizes or suite_sizes())
    rows = []
    for eps in eps_values:
        params = SWEEP_PARAMS.with_(eps_epol=eps)
        errors = []
        times = []
        for n in sizes:
            m = suite_molecule(n)
            radii, e_naive = _naive_reference(n)
            prof_params = SWEEP_PARAMS  # Born radii at ε_born=0.9
            base = _profile(n, prof_params, "octree")
            # Energy traversal at this ε over the same Born radii.
            ep = epol_octree(m, base.born_radii, params)
            errors.append(abs(percent_error(ep.energy, e_naive)))
            hybrid_prof = WorkProfile(
                name=base.name, natoms=base.natoms, nqpoints=base.nqpoints,
                params=params, method="octree",
                born_per_source=base.born_per_source,
                epol_per_source=ep.per_source,
                nbuckets=ep.buckets.nbuckets,
                atoms_nodes=base.atoms_nodes,
                qpoints_nodes=base.qpoints_nodes,
                data_bytes=base.data_bytes,
                energy=ep.energy, born_radii=base.born_radii)
            times.append(simulate_fig4(hybrid_prof, 2, 6,
                                       seed=1).wall_seconds)
        avg, std = mean_std(errors)
        rows.append({"eps": eps, "err_avg": avg, "err_std": std,
                     "time_total": float(np.sum(times))})
    t = Table(["eps_epol", "%err avg", "%err std", "suite time (s)"],
              title="Fig 10: error/time vs approximation parameter "
                    "(eps_born=0.9, approx math off)")
    for r in rows:
        t.add_row(r["eps"], r["err_avg"], r["err_std"], r["time_total"])
    return rows, t.render()


# ---------------------------------------------------------------------------
# Fig. 11 — large-molecule table (CMV stand-in)
# ---------------------------------------------------------------------------


@traced("experiment.fig11_cmv_table", cat="analysis")
def fig11_cmv_table(capsid_atoms: Optional[int] = None,
                    machine: Optional[MachineSpec] = None
                    ) -> Tuple[List[Dict], str]:
    """Fig. 11: capsid at 12 and 144 cores — time, speedup w.r.t. Amber,
    energy and % difference with the naive energy."""
    atoms = capsid_atoms or int(24000 * bench_scale())
    machine = machine or lonestar4(nodes=12)
    m = capsid_molecule(atoms)
    radii_naive = born_radii_naive_r6(m)
    e_naive = epol_naive(m, radii_naive)

    prof = _capsid_profile(atoms, CAPSID_PARAMS)
    profc = _capsid_profile(atoms, CAPSID_PARAMS, method="dualtree")
    amber12 = get_package("Amber").run(m, cores=12)
    amber144 = get_package("Amber").run(m, cores=144, compute_energy=False)

    rows = []

    def add(name: str, t12: Optional[float], t144: Optional[float],
            energy: Optional[float]) -> None:
        rows.append({
            "program": name,
            "t12": t12,
            "t144": t144,
            "speedup12": (amber12.wall_seconds / t12) if t12 else None,
            "speedup144": (amber144.wall_seconds / t144) if t144 else None,
            "energy": energy,
            "pct_diff": (percent_error(energy, e_naive)
                         if energy is not None else None),
        })

    add("OCT_CILK",
        simulate_fig4(profc, 1, 12, machine=machine, seed=1).wall_seconds,
        None, profc.energy)
    add("Amber", amber12.wall_seconds, amber144.wall_seconds, amber12.energy)
    add("OCT_MPI+CILK",
        simulate_fig4(prof, 2, 6, machine=machine, seed=1).wall_seconds,
        simulate_fig4(prof, 24, 6, machine=machine, seed=1).wall_seconds,
        prof.energy)
    add("OCT_MPI",
        simulate_fig4(prof, 12, 1, machine=machine, seed=1).wall_seconds,
        simulate_fig4(prof, 144, 1, machine=machine, seed=1).wall_seconds,
        prof.energy)

    t = Table(["Program", "12 cores (s)", "144 cores (s)",
               "speedup@12 vs Amber", "speedup@144 vs Amber",
               "E (kcal/mol)", "% diff naive"],
              title=f"Fig 11: capsid ({atoms} atoms, naive E={e_naive:.1f})")
    for r in rows:
        t.add_row(r["program"],
                  r["t12"] if r["t12"] is not None else "X",
                  r["t144"] if r["t144"] is not None else "X",
                  r["speedup12"] if r["speedup12"] is not None else "X",
                  r["speedup144"] if r["speedup144"] is not None else "X",
                  r["energy"] if r["energy"] is not None else "X",
                  r["pct_diff"] if r["pct_diff"] is not None else "X")
    return rows, t.render()
