"""Fixed-width table / series rendering for benchmark output.

The benchmark harness prints the same rows and series the paper's
figures plot; these helpers keep that output consistent and diffable
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """A simple fixed-width text table."""

    def __init__(self, columns: Sequence[str],
                 title: Optional[str] = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_series(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  xlabel: str = "x", ylabel: str = "y") -> str:
    """Render one plot series as aligned text (figure stand-in)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = [f"series: {name} ({xlabel} -> {ylabel})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>12} {_fmt(y):>14}")
    return "\n".join(lines)
