"""Error and speedup metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np


def relative_error(value: float, reference: float) -> float:
    """``(value − reference) / |reference|`` (signed)."""
    if reference == 0.0:
        raise ValueError("reference must be nonzero")
    return (value - reference) / abs(reference)


def percent_error(value: float, reference: float) -> float:
    """Signed percentage difference w.r.t. a reference (the paper's
    '% of difference with naïve')."""
    return 100.0 * relative_error(value, reference)


def speedup(reference_seconds: float, seconds: float) -> float:
    """``reference / time`` — e.g. 'speedup w.r.t. Amber'."""
    if seconds <= 0:
        raise ValueError("time must be positive")
    return reference_seconds / seconds


def min_max_over_runs(run: Callable[[int], float],
                      n_runs: int = 20,
                      seed0: int = 0) -> Tuple[float, float]:
    """Execute ``run(seed)`` for ``n_runs`` seeds; return (min, max).

    The paper's Fig. 6 plots min/max running time over 20 repetitions
    of each configuration.
    """
    values = [run(seed0 + i) for i in range(n_runs)]
    return min(values), max(values)


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Average ± standard deviation (the paper's Fig. 10 error bars)."""
    arr = np.asarray(values, dtype=np.float64)
    return float(arr.mean()), float(arr.std())
