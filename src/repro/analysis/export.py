"""Machine-readable exports of experiment rows (CSV) and a one-shot
report generator.

The figure runners in :mod:`repro.analysis.experiments` return lists of
plain dict/dataclass rows; :func:`write_csv` serialises them for
downstream plotting, and :func:`generate_report` runs a configurable
subset of experiments and leaves behind a directory with one CSV per
figure plus a Markdown summary — the artefact a reviewer would ask for.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis import experiments as ex

PathLike = Union[str, Path]


def _row_to_dict(row: Any) -> Dict[str, Any]:
    if dataclasses.is_dataclass(row):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return row
    raise TypeError(f"cannot serialise row of type {type(row)!r}")


def write_csv(rows: Sequence[Any], path: PathLike,
              columns: Optional[Sequence[str]] = None) -> Path:
    """Write experiment rows as CSV; ``None`` cells become ``OOM``.

    Column order defaults to the first row's key order.
    """
    if not rows:
        raise ValueError("no rows to write")
    dicts = [_row_to_dict(r) for r in rows]
    cols = list(columns) if columns else list(dicts[0].keys())
    path = Path(path)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(cols)
        for d in dicts:
            writer.writerow(["OOM" if d.get(c) is None else d.get(c)
                             for c in cols])
    return path


def generate_report(out_dir: PathLike,
                    suite_sizes: Optional[Sequence[int]] = None,
                    capsid_atoms: int = 4000,
                    cores: Sequence[int] = (12, 24, 48),
                    n_runs: int = 5) -> Path:
    """Run a (configurably small) pass over every experiment and write
    ``report.md`` + one CSV per figure into ``out_dir``.

    Returns the report path.  Defaults are sized for a quick look; the
    benchmark suite remains the reference run.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sizes = list(suite_sizes or [400, 800, 1500])
    sections: List[str] = ["# repro experiment report\n"]

    rows5, text5 = ex.fig5_speedup(capsid_atoms=capsid_atoms, cores=cores)
    write_csv(rows5, out / "fig5_speedup.csv")
    sections += ["## Fig 5 — scalability\n", "```", text5, "```\n"]

    out6, text6 = ex.fig6_minmax(capsid_atoms=capsid_atoms, cores=cores,
                                 n_runs=n_runs)
    rows6 = [{"cores": c, "mpi_min": v["mpi"][0], "mpi_max": v["mpi"][1],
              "hyb_min": v["hybrid"][0], "hyb_max": v["hybrid"][1]}
             for c, v in out6.items()]
    write_csv(rows6, out / "fig6_minmax.csv")
    sections += ["## Fig 6 — min/max envelopes\n", "```", text6, "```\n"]

    rows7, text7 = ex.fig7_octree_variants(sizes=sizes)
    write_csv(rows7, out / "fig7_octree_variants.csv")
    sections += ["## Fig 7 — octree variants\n", "```", text7, "```\n"]

    rows8, text8 = ex.fig8_packages(sizes=sizes)
    write_csv(rows8, out / "fig8_packages.csv")
    sections += ["## Fig 8 — packages\n", "```", text8, "```\n"]

    rows9, text9 = ex.fig9_energy_values(sizes=sizes)
    write_csv(rows9, out / "fig9_energy.csv")
    sections += ["## Fig 9 — energies\n", "```", text9, "```\n"]

    rows10, text10 = ex.fig10_epsilon_sweep(sizes=sizes,
                                            eps_values=(0.3, 0.6, 0.9))
    write_csv(rows10, out / "fig10_epsilon.csv")
    sections += ["## Fig 10 — epsilon sweep\n", "```", text10, "```\n"]

    rows11, text11 = ex.fig11_cmv_table(capsid_atoms=capsid_atoms)
    write_csv(rows11, out / "fig11_capsid.csv")
    sections += ["## Fig 11 — capsid table\n", "```", text11, "```\n"]

    report = out / "report.md"
    report.write_text("\n".join(sections), encoding="utf-8")
    return report
