"""Analysis helpers: error metrics, speedups, paper-style tables."""

from repro.analysis.metrics import (
    percent_error,
    relative_error,
    speedup,
    min_max_over_runs,
)
from repro.analysis.tables import Table, render_series

__all__ = [
    "percent_error",
    "relative_error",
    "speedup",
    "min_max_over_runs",
    "Table",
    "render_series",
]
