"""Octree GB polarization energy — the paper's Fig. 3 algorithm.

``APPROX-EPOL(U, V)`` evaluates the interaction of a *leaf* ``V`` of the
atoms octree with the whole tree: starting from the root,

1. a leaf ``U`` is evaluated exactly (all near ancestors descended);
2. a far internal node (``r_UV > (r_U + r_V)(1 + 2/ε)``) is collapsed to
   its Born-radius *charge buckets*: atoms are binned by Born radius on
   a ``(1+ε)``-geometric grid ``[R_min(1+ε)^k, R_min(1+ε)^{k+1})`` and
   only bucket totals interact —
   ``Σ_{i,j} q_U[i] q_V[j] / f_GB(r_UV, R_min²(1+ε)^{i+j})``;
3. otherwise recursion descends ``U``'s children.

Driving every tree leaf ``V`` against the root covers each *ordered*
atom pair exactly once, which is precisely Eq. 2's double sum (self
pairs included via the ``U == V`` exact block).

As in :mod:`repro.core.born_octree`, the recursion is executed as a
vectorised frontier of ``(U, V)`` index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.born_octree import PerSourceCounts, TraversalCounts
from repro.core.gb import energy_prefactor, inv_fgb_still
from repro.geomutil import ranges_to_indices
from repro.obs import (
    record_bucket_metrics,
    record_traversal_metrics,
    traced,
)
from repro.molecules.molecule import Molecule
from repro.octree.build import NO_CHILD, Octree, build_octree

#: Sentinel cap on the (1+ε) bucket grid.  Legitimate radii are capped
#: at RGBMAX (30 Å) and floored near 1 Å, so even ε = 0.01 needs only
#: ~350 buckets; blowing past this means a corrupted radius stretched
#: the span and almost every bucket would sit empty.
MAX_BUCKETS = 512


@dataclass
class ChargeBuckets:
    """Per-node charge totals binned by Born radius (paper Fig. 3).

    Attributes
    ----------
    table:
        ``(nnodes, M_ε)`` bucket sums ``q_U[k]``.
    r_min, r_max:
        Global Born-radius extremes.
    base:
        Geometric bucket ratio ``1 + ε``.
    products:
        ``(M_ε, M_ε)`` matrix ``R_min²(1+ε)^{i+j}`` — the Born-radius
        product proxy used by the far-field kernel.
    """

    table: np.ndarray
    r_min: float
    r_max: float
    base: float
    products: np.ndarray

    @property
    def nbuckets(self) -> int:
        return self.table.shape[1]


@traced("epol.buckets")
def build_charge_buckets(tree: Octree,
                         charges_sorted: np.ndarray,
                         born_sorted: np.ndarray,
                         eps: float) -> ChargeBuckets:
    """Bucket every node's charge by Born radius on the (1+ε) grid."""
    from repro.guard.errors import NumericalGuardError
    R = np.asarray(born_sorted, dtype=np.float64)
    # NaN compares False against <= 0, so non-finite entries need their
    # own sentinel or they silently poison every bucket downstream.
    bad = np.flatnonzero(~np.isfinite(R))
    if len(bad):
        raise NumericalGuardError(
            "non-finite Born radii entering the energy pass",
            phase="epol", indices=bad)
    if np.any(R <= 0):
        raise NumericalGuardError(
            "Born radii must be positive", phase="epol",
            indices=np.flatnonzero(R <= 0))
    r_min = float(R.min())
    r_max = float(R.max())
    base = 1.0 + eps
    if r_max > r_min:
        m_eps = int(np.floor(np.log(r_max / r_min) / np.log(base))) + 1
    else:
        m_eps = 1
    if m_eps > MAX_BUCKETS:
        # A (1+ε) grid this wide means a corrupted radius stretched
        # r_max/r_min absurdly; the per-node bucket tables would
        # dominate memory with almost every bucket empty.
        raise NumericalGuardError(
            f"charge-bucket grid exploded to {m_eps} buckets "
            f"(cap {MAX_BUCKETS}); Born radii span "
            f"[{r_min:.3g}, {r_max:.3g}] Å", phase="epol",
            hint="a corrupted radius usually causes this — or raise "
                 "eps_epol")
    bucket = np.zeros(len(R), dtype=np.int64)
    if m_eps > 1:
        bucket = np.clip((np.log(R / r_min) / np.log(base)).astype(np.int64),
                         0, m_eps - 1)

    # A node's bucket table is the sum of its points' (bucket, charge)
    # pairs; compute all nodes in one pass with a cumulative table over
    # the sorted atom order, then slice-differences per node.
    onehot_cum = np.zeros((tree.npoints + 1, m_eps), dtype=np.float64)
    np.add.at(onehot_cum, (np.arange(tree.npoints) + 1, bucket),
              charges_sorted)
    onehot_cum = np.cumsum(onehot_cum, axis=0)
    table = onehot_cum[tree.end] - onehot_cum[tree.start]

    powers = r_min * base ** np.arange(m_eps)
    products = np.outer(powers, powers)
    return ChargeBuckets(table=table, r_min=r_min, r_max=r_max,
                         base=base, products=products)


@traced("epol.traversal")
def approx_epol_for_leaves(atoms_tree: Octree,
                           charges_sorted: np.ndarray,
                           born_sorted: np.ndarray,
                           buckets: ChargeBuckets,
                           params: ApproxParams,
                           v_leaf_subset: Optional[np.ndarray] = None,
                           far_chunk: int = 8192
                           ) -> Tuple[float, TraversalCounts,
                                      PerSourceCounts]:
    """Raw double sum ``Σ q q / f_GB`` for a segment of V-leaves.

    ``v_leaf_subset`` holds positions into ``atoms_tree.leaves`` (the
    per-rank segment of the distributed algorithm); ``None`` means all
    leaves.  Multiply the result by
    :func:`repro.core.gb.energy_prefactor` for kcal/mol.
    """
    counts = TraversalCounts()
    leaf_ids = atoms_tree.leaves
    if v_leaf_subset is not None:
        leaf_ids = leaf_ids[np.asarray(v_leaf_subset)]
    nv = len(leaf_ids)
    pv_visits = np.zeros(nv, dtype=np.int64)
    pv_far = np.zeros(nv, dtype=np.int64)
    pv_exact = np.zeros(nv, dtype=np.int64)
    per_source = PerSourceCounts(pv_visits, pv_far, pv_exact)
    if nv == 0:
        return 0.0, counts, per_source

    mac = 1.0 + 2.0 / params.eps_epol
    children = atoms_tree.children
    center = atoms_tree.center
    radius = atoms_tree.radius
    is_leaf = atoms_tree.is_leaf

    v_center = center[leaf_ids]
    v_radius = radius[leaf_ids]
    v_rows = np.arange(nv, dtype=np.int64)

    u_front = np.zeros(nv, dtype=np.int64)
    v_front = v_rows.copy()

    total = 0.0
    exact_u: list = []
    exact_v: list = []

    while len(u_front):
        counts.frontier_visits += len(u_front)
        pv_visits += np.bincount(v_front, minlength=nv)
        leafmask = is_leaf[u_front]
        if leafmask.any():
            exact_u.append(u_front[leafmask])
            exact_v.append(v_front[leafmask])
        u_rest = u_front[~leafmask]
        v_rest = v_front[~leafmask]
        u_front = np.empty(0, dtype=np.int64)
        v_front = np.empty(0, dtype=np.int64)
        if len(u_rest):
            dv = v_center[v_rest] - center[u_rest]
            r2 = np.einsum("ij,ij->i", dv, dv)
            r = np.sqrt(r2)
            far = r > (radius[u_rest] + v_radius[v_rest]) * mac
            if far.any():
                fu, fv = u_rest[far], v_rest[far]
                fr2 = r2[far]
                for lo in range(0, len(fu), far_chunk):
                    sl = slice(lo, min(lo + far_chunk, len(fu)))
                    k = inv_fgb_still(
                        fr2[sl][:, None, None],
                        buckets.products[None, :, :],
                        approx_math=params.approx_math)
                    qu = buckets.table[fu[sl]]
                    qv = buckets.table[leaf_ids[fv[sl]]]
                    total += float(np.einsum("ki,kij,kj->", qu, k, qv))
                counts.far_evaluations += int(far.sum())
                pv_far += np.bincount(fv, minlength=nv)
            near = ~far
            iu, iv = u_rest[near], v_rest[near]
            if len(iu):
                ch = children[iu]
                valid = ch != NO_CHILD
                u_front = ch[valid]
                v_front = np.repeat(iv, valid.sum(axis=1))

    # Exact leaf–leaf blocks, grouped by V so each group runs as one
    # (gathered U atoms × V atoms) kernel.
    if exact_u:
        eu = np.concatenate(exact_u)
        ev = np.concatenate(exact_v)
        order = np.argsort(ev, kind="stable")
        eu, ev = eu[order], ev[order]
        pts = atoms_tree.points
        uniq, first = np.unique(ev, return_index=True)
        bounds = np.append(first, len(ev))
        for vrow, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
            vleaf = int(leaf_ids[vrow])
            usel = ranges_to_indices(atoms_tree.start[eu[lo:hi]],
                                     atoms_tree.end[eu[lo:hi]])
            vsl = atoms_tree.slice_of(vleaf)
            diff = pts[usel][:, None, :] - pts[vsl][None, :, :]
            r2 = np.einsum("uvk,uvk->uv", diff, diff)
            RiRj = born_sorted[usel][:, None] * born_sorted[vsl][None, :]
            inv = inv_fgb_still(r2, RiRj, approx_math=params.approx_math)
            total += float(np.einsum("u,uv,v->", charges_sorted[usel], inv,
                                     charges_sorted[vsl]))
            counts.near_pair_blocks += hi - lo
            counts.exact_interactions += diff.shape[0] * diff.shape[1]
            pv_exact[vrow] += diff.shape[0] * diff.shape[1]

    return total, counts, per_source


@dataclass
class EpolResult:
    """Output of the octree energy solver (energy in kcal/mol)."""

    energy: float
    counts: TraversalCounts
    buckets: ChargeBuckets
    atoms_tree: Octree
    per_source: Optional[PerSourceCounts] = None


def epol_octree(molecule: Molecule,
                born_radii: np.ndarray,
                params: ApproxParams = ApproxParams(),
                atoms_tree: Optional[Octree] = None,
                tau: float = TAU_WATER) -> EpolResult:
    """Serial octree ``E_pol`` for a whole molecule (kcal/mol)."""
    if atoms_tree is None:
        atoms_tree = build_octree(molecule.positions, params.leaf_size,
                                  params.max_depth)
    q_sorted = molecule.charges[atoms_tree.perm]
    R_sorted = np.asarray(born_radii)[atoms_tree.perm]
    buckets = build_charge_buckets(atoms_tree, q_sorted, R_sorted,
                                   params.eps_epol)
    raw, counts, per_source = approx_epol_for_leaves(
        atoms_tree, q_sorted, R_sorted, buckets, params)
    record_traversal_metrics("epol", counts, per_source)
    record_bucket_metrics(buckets)
    return EpolResult(energy=energy_prefactor(tau) * raw, counts=counts,
                      buckets=buckets, atoms_tree=atoms_tree,
                      per_source=per_source)
