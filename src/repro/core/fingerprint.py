"""Content fingerprints shared by checkpointing and the solve service.

A fingerprint is a SHA-256 over the raw bytes of the arrays that
determine a computation's output, plus the ``repr`` of any
configuration that steers it.  Both are deterministic, so the same
molecule + parameters hash identically across runs and machines — the
property ``repro.guard`` relies on to bind a checkpoint to the run
that wrote it, and ``repro.serve`` relies on to key cached artifacts
(surface samples, octrees, Born radii, energies) so a stale entry can
never be returned for changed inputs.

The helpers live in ``repro.core`` (not ``repro.guard``) because both
the guard layer and the serve layer import them; guard's checkpoint
format is unchanged (the same bytes are hashed, so existing
checkpoints keep their fingerprints).
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = ["arrays_fingerprint", "molecule_fingerprint"]


def arrays_fingerprint(*arrays: Any, extra: str = "") -> str:
    """SHA-256 over the raw bytes of ``arrays`` plus an ``extra`` tag.

    ``None`` entries are skipped (callers can pass optional arrays
    unconditionally); everything else is made contiguous and hashed
    byte-for-byte, so bitwise-equal inputs — and only those — collide.
    """
    h = hashlib.sha256()
    for arr in arrays:
        if arr is None:
            continue
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(extra.encode())
    return h.hexdigest()


def molecule_fingerprint(molecule: Any,
                         params: Any = None,
                         method: str = "",
                         extra: str = "") -> str:
    """SHA-256 binding a checkpoint/artifact to molecule + configuration.

    Hashes the raw bytes of the molecule's arrays (and surface, when
    present) plus the repr of the approximation parameters — both are
    deterministic, so the fingerprint is stable across runs and
    machines with the same inputs.
    """
    h = hashlib.sha256()
    for arr in (molecule.positions, molecule.charges, molecule.radii):
        h.update(np.ascontiguousarray(arr).tobytes())
    surf = getattr(molecule, "surface", None)
    if surf is not None:
        for arr in (surf.points, surf.normals, surf.weights):
            h.update(np.ascontiguousarray(arr).tobytes())
    h.update(repr(params).encode())
    h.update(method.encode())
    h.update(extra.encode())
    return h.hexdigest()
