"""Generalized-Born pair kernels (STILL model) and approximate math.

The STILL effective interaction distance (paper Eq. 2):

    f_GB(i, j) = sqrt( r_ij² + R_i R_j · exp( −r_ij² / (4 R_i R_j) ) )

and the polarization energy

    E_pol = −τ/2 · C · Σ_{i,j} q_i q_j / f_GB(i, j)

where the double sum runs over *ordered* pairs including ``i == j``
(``f_GB(i,i) = R_i``), ``τ = 1 − 1/ε_solv`` and ``C`` is Coulomb's
constant in kcal·Å/(mol·e²).

"Approximate math" (paper §V-C: ~1.42× faster, 4–5 % error shift)
is reproduced with genuinely lower-precision kernels: a bit-trick
reciprocal square root with one Newton step and a (1 + x/64)⁶⁴
exponential.
"""

from __future__ import annotations

import numpy as np

from repro.constants import COULOMB_KCAL, TAU_WATER


def fast_rsqrt(x: np.ndarray) -> np.ndarray:
    """Vectorised Quake-style ``1/sqrt(x)`` with two Newton refinements.

    Relative error ≈ 5·10⁻⁶, float32 throughout.  Two steps (rather
    than the classic one) keep the r⁶ Born integral usable: its large
    cancelling terms amplify per-term error, and the paper reports only
    a 4–5 % energy shift from approximate math.
    """
    xf = np.asarray(x, dtype=np.float32)
    i = xf.view(np.int32)
    i = np.int32(0x5F3759DF) - (i >> np.int32(1))
    y = i.view(np.float32)
    half = np.float32(0.5) * xf
    threehalf = np.float32(1.5)
    y = y * (threehalf - half * y * y)
    y = y * (threehalf - half * y * y)
    return y.astype(np.float64)


def fast_exp(x: np.ndarray) -> np.ndarray:
    """Low-precision ``exp(x)`` via the compound-interest limit
    ``(1 + x/64)⁶⁴`` (six squarings).

    Accurate to ~1 % for the argument range the GB kernel produces
    (``x ∈ [−25, 0]``, where the factor is damped toward zero anyway).
    """
    y = 1.0 + np.asarray(x, dtype=np.float64) / 64.0
    # Clamp so large-negative arguments give 0⁺ rather than oscillating.
    y = np.maximum(y, 0.0)
    for _ in range(6):
        y = y * y
    return y


def fgb_still(r2: np.ndarray, RiRj: np.ndarray,
              approx_math: bool = False) -> np.ndarray:
    """STILL ``f_GB`` from squared distances and Born-radius products."""
    expo = -r2 / (4.0 * RiRj)
    if approx_math:
        damp = fast_exp(expo)
        inner = r2 + RiRj * damp
        return 1.0 / fast_rsqrt(np.maximum(inner, 1e-30))
    return np.sqrt(r2 + RiRj * np.exp(expo))


def inv_fgb_still(r2: np.ndarray, RiRj: np.ndarray,
                  approx_math: bool = False) -> np.ndarray:
    """``1 / f_GB`` — the quantity the energy sums actually need."""
    expo = -r2 / (4.0 * RiRj)
    if approx_math:
        damp = fast_exp(expo)
        return fast_rsqrt(np.maximum(r2 + RiRj * damp, 1e-30))
    return 1.0 / np.sqrt(r2 + RiRj * np.exp(expo))


def energy_prefactor(tau: float = TAU_WATER) -> float:
    """The ``−τ/2 · C`` multiplier converting Σ q q / f_GB to kcal/mol."""
    return -0.5 * tau * COULOMB_KCAL


def pair_energy_matrix(pos_i: np.ndarray, q_i: np.ndarray, R_i: np.ndarray,
                       pos_j: np.ndarray, q_j: np.ndarray, R_j: np.ndarray,
                       approx_math: bool = False) -> float:
    """Exact Σ_{a∈i, b∈j} q_a q_b / f_GB(a, b) for two atom blocks.

    Returns the raw (unprefixed) double sum; callers apply
    :func:`energy_prefactor`.  This is the leaf–leaf kernel of the
    octree energy solver and the inner block of the naive solver.
    """
    diff = pos_i[:, None, :] - pos_j[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", diff, diff)
    RiRj = R_i[:, None] * R_j[None, :]
    inv = inv_fgb_still(r2, RiRj, approx_math=approx_math)
    return float(np.einsum("i,ij,j->", q_i, inv, q_j))
