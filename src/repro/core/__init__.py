"""Core algorithms: GB kernels, naive references, octree solvers."""

from repro.core.fingerprint import arrays_fingerprint, molecule_fingerprint
from repro.core.gb import fgb_still, pair_energy_matrix, fast_exp, fast_rsqrt
from repro.core.born_naive import born_radii_naive_r6, born_radii_naive_r4
from repro.core.energy_naive import epol_naive
from repro.core.born_octree import born_radii_octree, BornResult
from repro.core.energy_octree import epol_octree, EpolResult
from repro.core.dualtree import born_radii_dualtree
from repro.core.forces import forces_naive, forces_octree, ForcesResult
from repro.core.solver import PolarizationSolver, SolverReport

__all__ = [
    "arrays_fingerprint",
    "molecule_fingerprint",
    "fgb_still",
    "pair_energy_matrix",
    "fast_exp",
    "fast_rsqrt",
    "born_radii_naive_r6",
    "born_radii_naive_r4",
    "epol_naive",
    "born_radii_octree",
    "BornResult",
    "epol_octree",
    "EpolResult",
    "born_radii_dualtree",
    "forces_naive",
    "forces_octree",
    "ForcesResult",
    "PolarizationSolver",
    "SolverReport",
]
