"""Analytic gradients of the GB polarization energy (forces).

MD packages need ``−∇E_pol`` every step; this module extends the
reproduction with the standard fixed-Born-radius GB force (the dominant
term; the chain-rule term through ``∂R/∂x`` is conventionally smaller
and is omitted by several GB implementations' fast paths).

With ``E = K Σ_{i,j} q_i q_j / f_ij`` over ordered pairs
(``K = −τ·C/2``) and STILL's
``f² = r² + R_i R_j exp(−r²/(4 R_i R_j))``:

    ∂f²/∂x_a = 2 (x_a − x_j) · (1 − damp/4),   damp = exp(−r²/4R_iR_j)
    ∇_a E    = −2K q_a Σ_{j≠a} q_j (x_a − x_j)(1 − damp/4) / f³

Both an exact blocked evaluator and an octree evaluator (leaf-vs-tree
with the Fig. 3 charge buckets) are provided; the octree version's far
field collapses a node to its bucketed charges at the node centre,
exactly mirroring the energy traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import ApproxParams
from repro.constants import COULOMB_KCAL, TAU_WATER
from repro.core.born_octree import TraversalCounts
from repro.core.energy_octree import ChargeBuckets, build_charge_buckets
from repro.core.gb import fast_exp
from repro.geomutil import ranges_to_indices
from repro.molecules.molecule import Molecule
from repro.octree.build import NO_CHILD, Octree, build_octree


def _pair_force_factor(r2: np.ndarray, RiRj: np.ndarray,
                       approx_math: bool) -> np.ndarray:
    """``(1 − damp/4) / f³`` for a batch of pairs."""
    expo = -r2 / (4.0 * RiRj)
    damp = fast_exp(expo) if approx_math else np.exp(expo)
    f2 = r2 + RiRj * damp
    return (1.0 - 0.25 * damp) / np.maximum(f2, 1e-30) ** 1.5


def forces_naive(molecule: Molecule,
                 born_radii: np.ndarray,
                 tau: float = TAU_WATER,
                 approx_math: bool = False,
                 block: int = 512) -> np.ndarray:
    """Exact ``−∇E_pol`` (kcal/mol/Å), fixed Born radii, O(M²)."""
    pos, q = molecule.positions, molecule.charges
    R = np.asarray(born_radii, dtype=np.float64)
    m = len(pos)
    if len(R) != m:
        from repro.guard.errors import MoleculeFormatError
        raise MoleculeFormatError(
            "born_radii length must match atom count", field="born_radii")
    K = -0.5 * tau * COULOMB_KCAL
    grad = np.zeros((m, 3), dtype=np.float64)
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        diff = pos[lo:hi, None, :] - pos[None, :, :]
        r2 = np.einsum("bjk,bjk->bj", diff, diff)
        RiRj = R[lo:hi, None] * R[None, :]
        fac = _pair_force_factor(r2, RiRj, approx_math)
        # Exclude the self pair (its distance derivative is zero anyway,
        # but 0/f³ keeps it finite and exact exclusion is cleaner).
        rows = np.arange(lo, hi)
        fac[rows - lo, rows] = 0.0
        weighted = fac * q[None, :]
        grad[lo:hi] = np.einsum("bj,bjk->bk", weighted, diff) \
            * q[lo:hi, None]
    # ∇_a E = −2K q_a Σ …  ⇒ force = −∇E = +2K (…)
    return 2.0 * K * grad


@dataclass
class ForcesResult:
    """Octree force evaluation output (forces in the original order)."""

    forces: np.ndarray
    counts: TraversalCounts
    buckets: ChargeBuckets


def forces_octree(molecule: Molecule,
                  born_radii: np.ndarray,
                  params: ApproxParams = ApproxParams(),
                  atoms_tree: Optional[Octree] = None,
                  tau: float = TAU_WATER,
                  far_chunk: int = 4096) -> ForcesResult:
    """Octree ``−∇E_pol``: Fig. 3's traversal, force kernels.

    For every tree leaf ``V``, contributions to its atoms come from
    exact leaf pairs (near) and from bucket-collapsed far nodes ``U``:
    each far node acts as ``M_ε`` point charges at its centre with the
    bucket Born radii.
    """
    if atoms_tree is None:
        atoms_tree = build_octree(molecule.positions, params.leaf_size,
                                  params.max_depth)
    tree = atoms_tree
    q_sorted = molecule.charges[tree.perm]
    R_sorted = np.asarray(born_radii)[tree.perm]
    pos_sorted = tree.points
    buckets = build_charge_buckets(tree, q_sorted, R_sorted,
                                   params.eps_epol)
    counts = TraversalCounts()
    K = -0.5 * tau * COULOMB_KCAL

    mac = 1.0 + 2.0 / params.eps_epol
    leaf_ids = tree.leaves
    nv = len(leaf_ids)
    v_center = tree.center[leaf_ids]
    v_radius = tree.radius[leaf_ids]

    grad_sorted = np.zeros((tree.npoints, 3), dtype=np.float64)

    u_front = np.zeros(nv, dtype=np.int64)
    v_front = np.arange(nv, dtype=np.int64)
    exact_u: list = []
    exact_v: list = []

    m_eps = buckets.nbuckets
    bucket_R = buckets.r_min * buckets.base ** np.arange(m_eps)

    while len(u_front):
        counts.frontier_visits += len(u_front)
        leafmask = tree.is_leaf[u_front]
        if leafmask.any():
            exact_u.append(u_front[leafmask])
            exact_v.append(v_front[leafmask])
        u_rest = u_front[~leafmask]
        v_rest = v_front[~leafmask]
        u_front = np.empty(0, dtype=np.int64)
        v_front = np.empty(0, dtype=np.int64)
        if not len(u_rest):
            continue
        dv = v_center[v_rest] - tree.center[u_rest]
        r = np.sqrt(np.einsum("ij,ij->i", dv, dv))
        far = r > (tree.radius[u_rest] + v_radius[v_rest]) * mac
        if far.any():
            fu, fv = u_rest[far], v_rest[far]
            for lo in range(0, len(fu), far_chunk):
                sl = slice(lo, min(lo + far_chunk, len(fu)))
                _far_force_block(tree, fu[sl], leaf_ids[fv[sl]],
                                 pos_sorted, q_sorted, R_sorted,
                                 buckets.table, bucket_R, grad_sorted,
                                 params.approx_math)
            counts.far_evaluations += int(far.sum())
        near = ~far
        iu, iv = u_rest[near], v_rest[near]
        if len(iu):
            ch = tree.children[iu]
            valid = ch != NO_CHILD
            u_front = ch[valid]
            v_front = np.repeat(iv, valid.sum(axis=1))

    if exact_u:
        eu = np.concatenate(exact_u)
        ev = np.concatenate(exact_v)
        order = np.argsort(ev, kind="stable")
        eu, ev = eu[order], ev[order]
        uniq, first = np.unique(ev, return_index=True)
        bounds = np.append(first, len(ev))
        for vrow, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
            vleaf = int(leaf_ids[vrow])
            usel = ranges_to_indices(tree.start[eu[lo:hi]],
                                     tree.end[eu[lo:hi]])
            vsl = tree.slice_of(vleaf)
            diff = pos_sorted[vsl][:, None, :] - pos_sorted[usel][None]
            r2 = np.einsum("vuk,vuk->vu", diff, diff)
            RiRj = R_sorted[vsl][:, None] * R_sorted[usel][None, :]
            fac = _pair_force_factor(r2, RiRj, params.approx_math)
            fac[r2 == 0.0] = 0.0      # self pairs
            w = fac * q_sorted[usel][None, :]
            grad_sorted[vsl] += np.einsum("vu,vuk->vk", w, diff) \
                * q_sorted[vsl][:, None]
            counts.near_pair_blocks += hi - lo
            counts.exact_interactions += diff.shape[0] * diff.shape[1]

    forces_sorted = 2.0 * K * grad_sorted
    forces = np.empty_like(forces_sorted)
    forces[tree.perm] = forces_sorted
    return ForcesResult(forces=forces, counts=counts, buckets=buckets)


def _far_force_block(tree: Octree, fu: np.ndarray, fv_leaf: np.ndarray,
                     pos_sorted: np.ndarray, q_sorted: np.ndarray,
                     R_sorted: np.ndarray, table: np.ndarray,
                     bucket_R: np.ndarray, grad_sorted: np.ndarray,
                     approx_math: bool) -> None:
    """Add far-node U contributions to the atoms of each V leaf.

    Every (U, V) pair expands to (atoms of V) × (buckets of U)
    interactions evaluated at U's centre.
    """
    v_starts = tree.start[fv_leaf]
    v_ends = tree.end[fv_leaf]
    atoms = ranges_to_indices(v_starts, v_ends)
    lens = (v_ends - v_starts).astype(np.int64)
    pair_of_atom = np.repeat(np.arange(len(fu)), lens)

    u_center = tree.center[fu][pair_of_atom]        # (A, 3)
    diff = pos_sorted[atoms] - u_center             # (A, 3)
    r2 = np.einsum("ak,ak->a", diff, diff)
    # (A, M_ε): per-bucket force factors.
    RiRj = R_sorted[atoms][:, None] * bucket_R[None, :]
    fac = _pair_force_factor(r2[:, None], RiRj, approx_math)
    qU = table[fu][pair_of_atom]                    # (A, M_ε)
    scale = np.einsum("ab,ab->a", fac, qU) * q_sorted[atoms]
    np.add.at(grad_sorted, atoms, diff * scale[:, None])


def net_force(forces: np.ndarray) -> np.ndarray:
    """Σ_i F_i — exactly zero for the pair-distance-only energy
    (Newton's third law); a cheap consistency diagnostic."""
    return np.asarray(forces).sum(axis=0)
