"""Naive (exact-quadrature) Born radii — paper Eq. 3 and Eq. 4.

These O(M·N) reference implementations define "the naive exact
algorithm" every accuracy claim in the paper is measured against.  They
are blocked so memory stays bounded at ``block × N`` temporaries while
the inner loops remain pure vector code.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FOUR_PI, RGBMAX
from repro.molecules.molecule import Molecule


def _surface_sums(molecule: Molecule, power: int, block: int) -> np.ndarray:
    """``s_i = Σ_k w_k (r_k − x_i)·n_k / |r_k − x_i|^power`` for all atoms."""
    surf = molecule.require_surface()
    pts = surf.points
    wn = surf.weighted_normals           # w_k · n_k, (N, 3)
    pos = molecule.positions
    m = len(pos)
    s = np.empty(m, dtype=np.float64)
    half = power // 2
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        diff = pts[None, :, :] - pos[lo:hi, None, :]      # (b, N, 3)
        r2 = np.einsum("bnk,bnk->bn", diff, diff)
        if np.any(r2 == 0.0):
            from repro.guard.errors import DegenerateGeometryError
            bad = lo + np.flatnonzero((r2 == 0.0).any(axis=1))
            raise DegenerateGeometryError(
                "a quadrature point coincides with an atom centre; "
                "the surface integrand is singular there",
                phase="born", indices=bad,
                hint="run repro doctor on this molecule")
        numer = np.einsum("bnk,nk->bn", diff, wn)
        s[lo:hi] = np.sum(numer / r2 ** half, axis=1)
    return s


def integral_to_radius_r6(s: np.ndarray, intrinsic: np.ndarray) -> np.ndarray:
    """Map accumulated r⁶ integrals to Born radii (paper Fig. 2):
    ``R = max{ r_a , (s / 4π)^(−1/3) }``, capped at :data:`RGBMAX`.

    Nonpositive integrals (possible for pathological geometry or very
    aggressive approximation) denote "infinitely buried" atoms and get
    the cap.  A *fixed* cap — the ``rgbmax`` of real GB codes — keeps
    serial, work-division and data-distributed solvers consistent: a
    data-dependent fallback would differ between global and per-rank
    views of the same molecule.
    """
    s = np.asarray(s, dtype=np.float64)
    R = np.full_like(s, RGBMAX)
    ok = s > 0.0
    R[ok] = np.minimum((s[ok] / FOUR_PI) ** (-1.0 / 3.0), RGBMAX)
    return np.maximum(R, intrinsic)


def integral_to_radius_r4(s: np.ndarray, intrinsic: np.ndarray) -> np.ndarray:
    """r⁴ analogue (paper Eq. 3): ``R = max{ r_a, (s / 4π)^(−1) }``,
    capped at :data:`RGBMAX` like the r⁶ map."""
    s = np.asarray(s, dtype=np.float64)
    R = np.full_like(s, RGBMAX)
    ok = s > 0.0
    R[ok] = np.minimum(FOUR_PI / s[ok], RGBMAX)
    return np.maximum(R, intrinsic)


def born_radii_naive_r6(molecule: Molecule, block: int = 256) -> np.ndarray:
    """Exact surface-based r⁶ Born radii (Eq. 4), O(M·N)."""
    s = _surface_sums(molecule, power=6, block=block)
    return integral_to_radius_r6(s, molecule.radii)


def born_radii_naive_r4(molecule: Molecule, block: int = 256) -> np.ndarray:
    """Exact surface-based r⁴ Born radii (Eq. 3), O(M·N).

    Provided for completeness; the paper (after Grycuk) prefers r⁶ for
    protein-like solutes.
    """
    s = _surface_sums(molecule, power=4, block=block)
    return integral_to_radius_r4(s, molecule.radii)
