"""High-level public API: :class:`PolarizationSolver`.

Typical use::

    from repro import PolarizationSolver, ApproxParams
    from repro.molecules import synthetic_protein

    mol = synthetic_protein(5000, seed=1)
    solver = PolarizationSolver(mol, ApproxParams(eps_born=0.9, eps_epol=0.9))
    energy = solver.energy()          # kcal/mol
    radii = solver.born_radii()       # per-atom effective Born radii

The solver caches the two octrees and the Born radii, so repeated
energy evaluations (e.g. a docking scan with ``solver.transformed``)
only pay the traversal cost — exactly the "octree construction is a
pre-processing cost" argument of the paper's §IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.born_naive import born_radii_naive_r6
from repro.core.born_octree import BornResult, born_radii_octree
from repro.core.dualtree import born_radii_dualtree, epol_dualtree
from repro.core.energy_naive import epol_naive
from repro.core.energy_octree import EpolResult, epol_octree
from repro.molecules.molecule import Molecule
from repro.molecules.transform import RigidTransform
from repro.obs import span
from repro.octree.build import Octree, build_octree

#: Traversal strategies exposed by the solver.
METHODS = ("octree", "dualtree", "naive")


@dataclass
class SolverReport:
    """Everything a run produced, for benchmarks and examples."""

    energy: float
    born_radii: np.ndarray
    method: str
    born_counts: Optional[object] = None
    epol_counts: Optional[object] = None
    atoms_tree_nodes: int = 0
    qpoints_tree_nodes: int = 0


class PolarizationSolver:
    """GB polarization-energy solver over one molecule.

    Parameters
    ----------
    molecule:
        Molecule with surface samples (see
        :func:`repro.molecules.sample_surface`).
    params:
        Approximation parameters; ignored by ``method="naive"``.
    method:
        ``"octree"`` — the paper's single-tree algorithm (Figs. 2–3);
        ``"dualtree"`` — the prior-work dual-tree algorithm [6,7];
        ``"naive"`` — exact O(M·N) / O(M²) reference.
    tau:
        Dielectric prefactor ``1 − 1/ε_solv``.
    """

    def __init__(self,
                 molecule: Molecule,
                 params: ApproxParams = ApproxParams(),
                 method: str = "octree",
                 tau: float = TAU_WATER) -> None:
        if method not in METHODS:
            raise ValueError(  # lint: ignore[RPR007] — API arg check
                f"method must be one of {METHODS}")
        self.molecule = molecule
        self.params = params
        self.method = method
        self.tau = tau
        self._atoms_tree: Optional[Octree] = None
        self._q_tree: Optional[Octree] = None
        self._born: Optional[np.ndarray] = None
        self._born_result: Optional[BornResult] = None
        self._epol_result: Optional[EpolResult] = None
        self._naive_energy: Optional[float] = None

    # -- octree lifecycle --------------------------------------------------

    @property
    def atoms_tree(self) -> Octree:
        """Atoms octree (built on first use, then cached)."""
        if self._atoms_tree is None:
            self._atoms_tree = build_octree(self.molecule.positions,
                                            self.params.leaf_size,
                                            self.params.max_depth)
        return self._atoms_tree

    @property
    def qpoints_tree(self) -> Octree:
        """Quadrature-points octree (built on first use, then cached)."""
        if self._q_tree is None:
            surf = self.molecule.require_surface()
            self._q_tree = build_octree(surf.points, self.params.leaf_size,
                                        self.params.max_depth)
        return self._q_tree

    def transformed(self, transform: RigidTransform) -> "PolarizationSolver":
        """A solver over the rigidly-moved molecule, reusing both octrees.

        Born radii and energy are invariant under rigid motion; this
        exists so docking scans can verify that invariance (and skip
        rebuild costs) rather than recompute structure.
        """
        surf = self.molecule.require_surface()
        moved = Molecule(
            transform.apply(self.molecule.positions),
            self.molecule.charges,
            self.molecule.radii,
            surface=type(surf)(transform.apply(surf.points),
                               transform.apply_vectors(surf.normals),
                               surf.weights),
            name=self.molecule.name + "@moved",
        )
        other = PolarizationSolver(moved, self.params, self.method, self.tau)
        other._atoms_tree = self.atoms_tree.transformed(transform)
        other._q_tree = self.qpoints_tree.transformed(transform)
        return other

    # -- results -----------------------------------------------------------

    def born_radii(self) -> np.ndarray:
        """Per-atom effective Born radii (original atom order)."""
        if self._born is None:
            with span("solve.born", method=self.method,
                      natoms=self.molecule.natoms):
                if self.method == "naive":
                    self._born = born_radii_naive_r6(self.molecule)
                elif self.method == "dualtree":
                    self._born_result = born_radii_dualtree(
                        self.molecule, self.params,
                        atoms_tree=self.atoms_tree,
                        q_tree=self.qpoints_tree)
                    self._born = self._born_result.radii
                else:
                    self._born_result = born_radii_octree(
                        self.molecule, self.params,
                        atoms_tree=self.atoms_tree,
                        q_tree=self.qpoints_tree)
                    self._born = self._born_result.radii
        return self._born

    def energy(self) -> float:
        """GB polarization energy in kcal/mol."""
        radii = self.born_radii()
        if self._epol_result is not None:
            return self._epol_result.energy
        with span("solve.epol", method=self.method,
                  natoms=self.molecule.natoms):
            if self.method == "naive":
                if self._naive_energy is None:
                    self._naive_energy = epol_naive(self.molecule, radii,
                                                    tau=self.tau)
                return self._naive_energy
            if self.method == "dualtree":
                self._epol_result = epol_dualtree(
                    self.molecule, radii, self.params,
                    atoms_tree=self.atoms_tree, tau=self.tau)
            else:
                self._epol_result = epol_octree(
                    self.molecule, radii, self.params,
                    atoms_tree=self.atoms_tree, tau=self.tau)
        return self._epol_result.energy

    @property
    def born_result(self) -> Optional[BornResult]:
        """Full Born-pass result (None before :meth:`born_radii`, or for
        ``method="naive"``)."""
        return self._born_result

    @property
    def epol_result(self) -> Optional[EpolResult]:
        """Full energy-pass result (None before :meth:`energy`, or for
        ``method="naive"``)."""
        return self._epol_result

    def report(self) -> SolverReport:
        """Run (if needed) and summarise."""
        energy = self.energy()
        return SolverReport(
            energy=energy,
            born_radii=self.born_radii(),
            method=self.method,
            born_counts=(self._born_result.counts
                         if self._born_result else None),
            epol_counts=(self._epol_result.counts
                         if self._epol_result else None),
            atoms_tree_nodes=self.atoms_tree.nnodes,
            qpoints_tree_nodes=(self.qpoints_tree.nnodes
                                if self.molecule.surface is not None else 0),
        )
