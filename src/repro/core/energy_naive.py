"""Naive exact GB polarization energy — paper Eq. 2, O(M²).

The reference against which all octree energies are scored.  Blocked
row-panels keep temporaries at ``block × M`` while the kernel remains a
single fused einsum per panel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TAU_WATER
from repro.core.gb import energy_prefactor, inv_fgb_still
from repro.molecules.molecule import Molecule


def epol_naive(molecule: Molecule,
               born_radii: np.ndarray,
               tau: float = TAU_WATER,
               approx_math: bool = False,
               block: int = 512) -> float:
    """Exact ``E_pol`` in kcal/mol over all ordered atom pairs (incl. self).

    Parameters
    ----------
    molecule:
        Atom positions and charges.
    born_radii:
        ``(m,)`` effective Born radii (from any Born solver).
    tau:
        Dielectric prefactor ``1 − 1/ε_solv``.
    approx_math:
        Use the low-precision kernels of :mod:`repro.core.gb`.
    """
    R = np.asarray(born_radii, dtype=np.float64)
    pos, q = molecule.positions, molecule.charges
    m = len(pos)
    if len(R) != m:
        from repro.guard.errors import MoleculeFormatError
        raise MoleculeFormatError(
            "born_radii length must match atom count", field="born_radii")
    if np.any(R <= 0):
        from repro.guard.errors import NumericalGuardError
        raise NumericalGuardError(
            "Born radii must be positive", phase="epol",
            indices=np.flatnonzero(~(born_radii > 0)))
    total = 0.0
    for lo in range(0, m, block):
        hi = min(lo + block, m)
        diff = pos[lo:hi, None, :] - pos[None, :, :]
        r2 = np.einsum("bjk,bjk->bj", diff, diff)
        RiRj = R[lo:hi, None] * R[None, :]
        inv = inv_fgb_still(r2, RiRj, approx_math=approx_math)
        total += float(np.einsum("b,bj,j->", q[lo:hi], inv, q))
    return energy_prefactor(tau) * total
