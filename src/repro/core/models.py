"""Born-radius model registry — one facade over every GB flavour.

The paper's Table II tags each package with its GB model (HCT, OBC,
STILL); this repository implements all of them plus both r⁶ variants.
:func:`born_radii` dispatches by name so applications (and the solver
facade) can switch models with a string:

===============  ============================================  =========
name             definition                                    used by
===============  ============================================  =========
``r6-surface``   Grycuk r⁶ surface integral (paper Eq. 4)      this paper
``r4-surface``   Coulomb-field r⁴ surface integral (Eq. 3)     Still-like
``r6-volume``    Grycuk r⁶ as pairwise volume descreening      GBr⁶
``hct``          Hawkins–Cramer–Truhlar pairwise descreening   Amber, Gromacs
``obc``          OBC-II tanh-rescaled HCT                      NAMD
===============  ============================================  =========

``r6-surface`` supports the octree acceleration; the others are direct
(pairwise/dense) evaluations, exactly as in their home packages.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.gbr6_volume import born_radii_gbr6_volume
from repro.baselines.pairwise_gb import born_radii_hct, born_radii_obc
from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r4, born_radii_naive_r6
from repro.core.born_octree import born_radii_octree
from repro.molecules.molecule import Molecule

#: Registered model names.
BORN_MODELS = ("r6-surface", "r4-surface", "r6-volume", "hct", "obc")


def born_radii(molecule: Molecule,
               model: str = "r6-surface",
               params: Optional[ApproxParams] = None,
               use_octree: bool = True,
               cutoff: Optional[float] = None) -> np.ndarray:
    """Effective Born radii under the chosen model.

    Parameters
    ----------
    molecule:
        Target molecule (surface samples required for the surface
        models).
    model:
        One of :data:`BORN_MODELS`.
    params:
        Approximation parameters for the octree path of
        ``r6-surface``; ignored elsewhere.
    use_octree:
        ``r6-surface`` only: route through the hierarchical solver
        (default) or the exact naive sum.
    cutoff:
        ``hct``/``obc``/``r6-volume``: optional pair cutoff in Å
        (``None`` = all pairs), matching the packages' usage.
    """
    if model == "r6-surface":
        if use_octree:
            return born_radii_octree(molecule,
                                     params or ApproxParams()).radii
        return born_radii_naive_r6(molecule)
    if model == "r4-surface":
        return born_radii_naive_r4(molecule)
    if model == "r6-volume":
        return born_radii_gbr6_volume(molecule, None, cutoff)
    if model == "hct":
        return born_radii_hct(molecule, None, cutoff)
    if model == "obc":
        return born_radii_obc(molecule, None, cutoff)
    raise ValueError(  # lint: ignore[RPR007] — API arg check
        f"unknown Born model {model!r}; known: {BORN_MODELS}")


def compare_models(molecule: Molecule,
                   models: tuple = BORN_MODELS,
                   params: Optional[ApproxParams] = None
                   ) -> Dict[str, np.ndarray]:
    """Radii under several models at once (Fig. 9-style comparisons)."""
    return {m: born_radii(molecule, m, params=params) for m in models}
