"""Octree r⁶ Born radii — the paper's Fig. 2 algorithm.

Two phases, exactly as in the paper:

* ``APPROX-INTEGRALS(A, Q)`` — for every *leaf* ``Q`` of the
  quadrature-points octree, traverse the atoms octree from the root.
  When the pair is far enough (multiplicative-error MAC below), the
  whole leaf's surface patch collapses to a single pseudo-q-point and
  its contribution is deposited at the *internal* atoms-tree node ``A``;
  otherwise recursion descends ``A``; at an atoms leaf the contribution
  is computed exactly per atom.

* ``PUSH-INTEGRALS-TO-ATOMS`` — a top-down prefix pass adds every
  node's deposited integral to all atoms below it, then
  ``R_a = max{ r_a, (s_total/4π)^(−1/3) }``.

**MAC.** A pair is far when ``r_AQ − (r_A + r_Q) > 0`` and
``(r_AQ + r_A + r_Q) / (r_AQ − (r_A + r_Q)) < (1+ε)^(1/6)``: the ratio
of the largest to the smallest possible atom–q-point distance within
the pair is then below ``(1+ε)^(1/6)``, so every ``1/d⁶`` term is
approximated within a factor of ``1+ε``.  (The paper's Fig. 2
pseudo-code prints this comparison with ``>``; the prose version in
§II — which we implement — is the consistent one.)

**Implementation note.**  Rather than literal per-node recursion, the
traversal keeps a *frontier* of ``(A-node, Q-leaf)`` index arrays and
advances all pairs per step with vector operations.  This is the
numpy-idiomatic formulation of the same DFS: identical visits, identical
arithmetic, two orders of magnitude less interpreter overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import ApproxParams
from repro.core.born_naive import integral_to_radius_r6
from repro.core.gb import fast_rsqrt
from repro.geomutil import ranges_to_indices
from repro.obs import record_traversal_metrics, traced
from repro.molecules.molecule import Molecule
from repro.octree.build import NO_CHILD, Octree, build_octree


@dataclass
class TraversalCounts:
    """Operation counts harvested from a traversal (cost-model input)."""

    frontier_visits: int = 0      # (A, Q) pairs examined
    far_evaluations: int = 0      # pairs settled by the pseudo-particle
    near_pair_blocks: int = 0     # leaf–leaf exact blocks
    exact_interactions: int = 0   # atom × q-point exact terms

    def merged(self, other: "TraversalCounts") -> "TraversalCounts":
        return TraversalCounts(
            self.frontier_visits + other.frontier_visits,
            self.far_evaluations + other.far_evaluations,
            self.near_pair_blocks + other.near_pair_blocks,
            self.exact_interactions + other.exact_interactions,
        )


@dataclass
class PerSourceCounts:
    """Per-source-leaf operation counts from one traversal.

    One entry per source leaf (Q-leaf for the Born pass, V-leaf for the
    energy pass).  The parallel drivers turn these into per-task costs
    for the work-stealing simulator: a rank's (or thread's) share of the
    computation is exactly the sum over its leaf segment.
    """

    visits: np.ndarray
    far: np.ndarray
    exact_interactions: np.ndarray

    def task_ops(self, far_weight: float, exact_weight: float,
                 visit_weight: float = 1.0) -> np.ndarray:
        """Weighted per-leaf operation totals."""
        return (visit_weight * self.visits + far_weight * self.far
                + exact_weight * self.exact_interactions)


@dataclass
class BornResult:
    """Output of the octree Born solver.

    ``radii`` is in the molecule's original atom order.  ``s_node`` /
    ``s_atom`` are the raw partial integrals in tree order — the
    distributed algorithm reduces these across ranks before the push
    phase.
    """

    radii: np.ndarray
    s_node: np.ndarray
    s_atom: np.ndarray
    counts: TraversalCounts
    atoms_tree: Octree
    qpoints_tree: Octree
    per_source: Optional["PerSourceCounts"] = None


def qleaf_aggregates(q_tree: Octree, weighted_normals_sorted: np.ndarray
                     ) -> np.ndarray:
    """Per-Q-leaf pseudo-q-point weighted normal ``ñ_Q = Σ w_q n_q``.

    Leaves tile the sorted point range contiguously, so a single
    ``reduceat`` computes all sums.
    """
    starts = q_tree.start[q_tree.leaves]
    return np.add.reduceat(weighted_normals_sorted, starts, axis=0)


def _born_far_mask(r: np.ndarray, rsum: np.ndarray,
                   params: ApproxParams) -> np.ndarray:
    """Multipole acceptance for the Born traversal (see ApproxParams)."""
    if params.born_mac == "distance":
        return r > rsum * (1.0 + 2.0 / params.eps_born)
    beta = (1.0 + params.eps_born) ** (1.0 / 6.0)
    gap = r - rsum
    return (gap > 0.0) & (r + rsum < beta * gap)


def _inv_r6(r2: np.ndarray, approx_math: bool) -> np.ndarray:
    if approx_math:
        y = fast_rsqrt(np.maximum(r2, 1e-30))
        p = y * y
        return p * p * p
    return 1.0 / np.maximum(r2, 1e-30) ** 3


@traced("born.approx_integrals")
def approx_integrals(atoms_tree: Octree,
                     q_tree: Octree,
                     weighted_normals_sorted: np.ndarray,
                     params: ApproxParams,
                     q_leaf_subset: Optional[np.ndarray] = None,
                     atom_range: Optional[Tuple[int, int]] = None
                     ) -> Tuple[np.ndarray, np.ndarray, TraversalCounts,
                                "PerSourceCounts"]:
    """Run APPROX-INTEGRALS for a set of Q-leaves (paper Fig. 2, step 2).

    Parameters
    ----------
    q_leaf_subset:
        Positions *into* ``q_tree.leaves`` handled by this caller — the
        distributed algorithm gives each rank one contiguous segment.
        ``None`` means all leaves.
    atom_range:
        ATOM-BASED work division (paper §IV-A): restrict deposits to
        sorted atoms ``[s, e)``.  Atom subtrees disjoint from the range
        are pruned; far-field deposits are only allowed at nodes *fully
        inside* the range — a far node straddling a boundary is
        descended instead, which is exactly why atom-based division's
        approximation error varies with the process count while
        node-based division's does not.

    Returns
    -------
    s_node:
        ``(nnodes,)`` integrals deposited at atoms-tree nodes.
    s_atom:
        ``(m,)`` per-atom exact contributions, in *tree (sorted)* order.
    counts:
        Traversal statistics.
    per_source:
        Per-Q-leaf operation counts (rows align with the subset order).
    """
    counts = TraversalCounts()

    leaf_ids = q_tree.leaves
    if q_leaf_subset is not None:
        leaf_ids = leaf_ids[np.asarray(q_leaf_subset)]
    nq = len(leaf_ids)

    s_node = np.zeros(atoms_tree.nnodes, dtype=np.float64)
    s_atom = np.zeros(atoms_tree.npoints, dtype=np.float64)
    visits_q = np.zeros(nq, dtype=np.int64)
    far_q = np.zeros(nq, dtype=np.int64)
    exact_q = np.zeros(nq, dtype=np.int64)
    per_source = PerSourceCounts(visits_q, far_q, exact_q)
    if nq == 0:
        return s_node, s_atom, counts, per_source

    wn_leaf_all = qleaf_aggregates(q_tree, weighted_normals_sorted)
    # Map from q_tree leaf id → row in wn_leaf_all.
    leaf_row = np.empty(q_tree.nnodes, dtype=np.int64)
    leaf_row[q_tree.leaves] = np.arange(len(q_tree.leaves))

    q_center = q_tree.center[leaf_ids]
    q_radius = q_tree.radius[leaf_ids]
    q_wn = wn_leaf_all[leaf_row[leaf_ids]]

    # Frontier of (atoms-node, q-row) pairs, starting at the root.
    a_front = np.zeros(nq, dtype=np.int64)
    q_front = np.arange(nq, dtype=np.int64)

    near_a: list = []
    near_q: list = []

    children = atoms_tree.children
    a_center = atoms_tree.center
    a_radius = atoms_tree.radius
    a_is_leaf = atoms_tree.is_leaf

    if atom_range is not None:
        rng_s, rng_e = atom_range
        if not 0 <= rng_s <= rng_e <= atoms_tree.npoints:
            raise ValueError(  # lint: ignore[RPR007] — API arg check
                "atom_range out of bounds")

    while len(a_front):
        if atom_range is not None:
            # Prune atom subtrees disjoint from this rank's atom range.
            keep = ~((atoms_tree.end[a_front] <= rng_s)
                     | (atoms_tree.start[a_front] >= rng_e))
            a_front, q_front = a_front[keep], q_front[keep]
            if not len(a_front):
                break
        counts.frontier_visits += len(a_front)
        visits_q += np.bincount(q_front, minlength=nq)
        dv = q_center[q_front] - a_center[a_front]
        r2 = np.einsum("ij,ij->i", dv, dv)
        r = np.sqrt(r2)
        rsum = a_radius[a_front] + q_radius[q_front]
        far = _born_far_mask(r, rsum, params)
        if atom_range is not None:
            # A far node straddling the range boundary may not take the
            # deposit (it would leak to atoms outside the range) — force
            # descent instead.
            inside = ((atoms_tree.start[a_front] >= rng_s)
                      & (atoms_tree.end[a_front] <= rng_e))
            far &= inside

        if far.any():
            fa, fq = a_front[far], q_front[far]
            numer = np.einsum("ij,ij->i", q_wn[fq],
                              q_center[fq] - a_center[fa])
            contrib = numer * _inv_r6(r2[far], params.approx_math)
            s_node += np.bincount(fa, weights=contrib,
                                  minlength=atoms_tree.nnodes)
            far_q += np.bincount(fq, minlength=nq)
            counts.far_evaluations += int(far.sum())

        rest = ~far
        ra, rq = a_front[rest], q_front[rest]
        leafmask = a_is_leaf[ra]
        if leafmask.any():
            near_a.append(ra[leafmask])
            near_q.append(rq[leafmask])
        inner = ~leafmask
        if inner.any():
            ia, iq = ra[inner], rq[inner]
            ch = children[ia]                        # (k, 8)
            valid = ch != NO_CHILD
            a_front = ch[valid]
            q_front = np.repeat(iq, valid.sum(axis=1))
        else:
            a_front = np.empty(0, dtype=np.int64)
            q_front = np.empty(0, dtype=np.int64)

    # Exact leaf–leaf blocks, grouped by atoms leaf so each group is a
    # single vector kernel over (atoms × gathered q-points).
    if near_a:
        na = np.concatenate(near_a)
        nq_rows = np.concatenate(near_q)
        order = np.argsort(na, kind="stable")
        na, nq_rows = na[order], nq_rows[order]
        q_pts = q_tree.points
        q_starts = q_tree.start[leaf_ids]
        q_ends = q_tree.end[leaf_ids]
        wn = weighted_normals_sorted
        uniq, first = np.unique(na, return_index=True)
        bounds = np.append(first, len(na))
        for u, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
            rows = nq_rows[lo:hi]
            qsel = ranges_to_indices(q_starts[rows], q_ends[rows])
            a_lo, a_hi = int(atoms_tree.start[u]), int(atoms_tree.end[u])
            if atom_range is not None:
                a_lo, a_hi = max(a_lo, rng_s), min(a_hi, rng_e)
                if a_lo >= a_hi:
                    continue
            apts = atoms_tree.points[a_lo:a_hi]
            diff = q_pts[qsel][None, :, :] - apts[:, None, :]
            r2 = np.einsum("aqk,aqk->aq", diff, diff)
            numer = np.einsum("aqk,qk->aq", diff, wn[qsel])
            vals = np.sum(numer * _inv_r6(r2, params.approx_math), axis=1)
            s_atom[a_lo:a_hi] += vals
            counts.near_pair_blocks += len(rows)
            counts.exact_interactions += diff.shape[0] * diff.shape[1]
            np.add.at(exact_q, rows,
                      len(apts) * (q_ends[rows] - q_starts[rows]))

    return s_node, s_atom, counts, per_source


def ancestor_prefix(tree: Octree, s_node: np.ndarray) -> np.ndarray:
    """``anc[i] = Σ_{A' ∈ ancestors(i)} s_node[A']`` for every node.

    Nodes are stored parent-before-child, so one vectorised sweep per
    depth level suffices.
    """
    anc = np.zeros(tree.nnodes, dtype=np.float64)
    for d in range(1, tree.max_depth() + 1):
        idx = np.flatnonzero(tree.depth == d)
        if len(idx) == 0:
            break
        p = tree.parent[idx]
        anc[idx] = anc[p] + s_node[p]
    return anc


@traced("born.push_integrals")
def push_integrals_to_atoms(atoms_tree: Octree,
                            s_node: np.ndarray,
                            s_atom: np.ndarray,
                            intrinsic_sorted: np.ndarray,
                            atom_range: Optional[Tuple[int, int]] = None
                            ) -> np.ndarray:
    """PUSH-INTEGRALS-TO-ATOMS (paper Fig. 2): Born radii in tree order.

    ``atom_range`` restricts output to sorted atoms ``[s_id, e_id)`` —
    the distributed algorithm's per-rank atom segment; other entries are
    returned as NaN so misuse is loud.
    """
    anc = ancestor_prefix(atoms_tree, s_node)
    total = s_atom.copy()
    leaves = atoms_tree.leaves
    for leaf in leaves:
        sl = atoms_tree.slice_of(int(leaf))
        total[sl] += anc[leaf] + s_node[leaf]

    radii = integral_to_radius_r6(total, intrinsic_sorted)
    if atom_range is not None:
        s_id, e_id = atom_range
        _check_push_filled(radii, s_id, e_id)
        out = np.full_like(radii, np.nan)
        out[s_id:e_id] = radii[s_id:e_id]
        return out
    _check_push_filled(radii, 0, len(radii))
    return radii


def _check_push_filled(radii: np.ndarray, s_id: int, e_id: int) -> None:
    """The push phase owns ``[s_id, e_id)``: every entry there must be a
    finite radius before the NaN placeholders go out.  An unfilled entry
    means a leaf the traversal never deposited into — raise loudly
    instead of letting the sentinel NaN masquerade as a result."""
    seg = radii[s_id:e_id]
    bad = np.flatnonzero(~np.isfinite(seg))
    if len(bad):
        from repro.guard.errors import NumericalGuardError
        raise NumericalGuardError(
            "push phase left unfilled (non-finite) Born radii entries",
            phase="push", indices=(bad + s_id),
            hint="indices are in tree (Morton-sorted) order; the "
                 "traversal skipped these atoms' leaves")


def born_radii_octree(molecule: Molecule,
                      params: ApproxParams = ApproxParams(),
                      atoms_tree: Optional[Octree] = None,
                      q_tree: Optional[Octree] = None) -> BornResult:
    """Serial octree r⁶ Born radii for a whole molecule.

    Builds both octrees unless supplied (a docking scan reuses them via
    :meth:`repro.octree.build.Octree.transformed`).
    """
    surf = molecule.require_surface()
    if atoms_tree is None:
        atoms_tree = build_octree(molecule.positions, params.leaf_size,
                                  params.max_depth)
    if q_tree is None:
        q_tree = build_octree(surf.points, params.leaf_size,
                              params.max_depth)
    wn_sorted = surf.weighted_normals[q_tree.perm]

    s_node, s_atom, counts, per_source = approx_integrals(
        atoms_tree, q_tree, wn_sorted, params)
    intrinsic_sorted = molecule.radii[atoms_tree.perm]
    radii_sorted = push_integrals_to_atoms(
        atoms_tree, s_node, s_atom, intrinsic_sorted)
    radii = atoms_tree.scatter_to_original(radii_sorted)
    record_traversal_metrics("born", counts, per_source)
    return BornResult(radii=radii, s_node=s_node, s_atom=s_atom,
                      counts=counts, atoms_tree=atoms_tree,
                      qpoints_tree=q_tree, per_source=per_source)
