"""Dual-tree traversal — the prior-work algorithm behind ``OCT_CILK``.

The paper's §IV opens by noting the "major difference of our approach
from algorithms presented in [6] is that we only traverse one octree
instead of two".  The *two*-octree scheme of Chowdhury & Bajaj [6,7] is
what the shared-memory ``OCT_CILK`` implementation runs, and Fig. 7
compares the two — so this module implements the dual-tree variant:
both octrees are recursed *simultaneously*, descending the larger of
the current pair until either the MAC admits a pseudo-particle
approximation or both sides are leaves.

Relative to the single-tree scheme, far-field approximation can trigger
with *both* sides collapsed (pseudo-atom × pseudo-q-point), which does
less work per accepted pair but requires depositing into internal nodes
of both trees — for Born radii the deposit side is the atoms tree, so
the bookkeeping stays identical and results remain within the same ε
error envelope.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import ApproxParams
from repro.core.born_octree import (
    BornResult,
    PerSourceCounts,
    TraversalCounts,
    _born_far_mask,
    _inv_r6,
    ancestor_prefix,
    push_integrals_to_atoms,
)
from repro.core.energy_octree import EpolResult, build_charge_buckets
from repro.core.gb import energy_prefactor, inv_fgb_still
from repro.geomutil import ranges_to_indices
from repro.obs import record_bucket_metrics, record_traversal_metrics
from repro.constants import TAU_WATER
from repro.molecules.molecule import Molecule
from repro.octree.build import NO_CHILD, Octree, build_octree

#: Dual-tree MAC safety factor.  The single-tree scheme collapses only
#: one side of a pair, so its distance spread is bounded by that side's
#: radius; the dual-tree scheme replaces *both* nodes by pseudo-points,
#: doubling the worst-case spread — the prior-work criterion therefore
#: demands twice the separation for the same ε.  (This is also why the
#: paper's new single-tree algorithm wins on large molecules, Fig. 7.)
DUAL_MAC_SAFETY = 2.0


def node_aggregates(tree: Octree, values_sorted: np.ndarray) -> np.ndarray:
    """Per-node sums of per-point values via one cumulative pass.

    ``values_sorted`` may be ``(n,)`` or ``(n, k)``; returns
    ``(nnodes,)`` or ``(nnodes, k)``.
    """
    v = np.asarray(values_sorted, dtype=np.float64)
    cum = np.concatenate([np.zeros((1,) + v.shape[1:], dtype=np.float64),
                          np.cumsum(v, axis=0)])
    return cum[tree.end] - cum[tree.start]


def _expand_larger(a: np.ndarray, b: np.ndarray,
                   tree_a: Octree, tree_b: Octree
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Expand the larger-radius side of each (a, b) pair into children.

    A side that is a leaf cannot expand; if both are leaves the pair
    should have been routed to the exact kernel before calling this.
    """
    ra = tree_a.radius[a]
    rb = tree_b.radius[b]
    a_leaf = tree_a.is_leaf[a]
    b_leaf = tree_b.is_leaf[b]
    pick_a = (~a_leaf) & (b_leaf | (ra >= rb))

    out_a = []
    out_b = []
    if pick_a.any():
        ia, ib = a[pick_a], b[pick_a]
        ch = tree_a.children[ia]
        valid = ch != NO_CHILD
        out_a.append(ch[valid])
        out_b.append(np.repeat(ib, valid.sum(axis=1)))
    pick_b = ~pick_a
    if pick_b.any():
        ia, ib = a[pick_b], b[pick_b]
        ch = tree_b.children[ib]
        valid = ch != NO_CHILD
        out_b.append(ch[valid])
        out_a.append(np.repeat(ia, valid.sum(axis=1)))
    if not out_a:
        return (np.empty(0, dtype=np.int64),) * 2
    return np.concatenate(out_a), np.concatenate(out_b)


def _per_leaf_counts(tree: Octree, far_by_node: np.ndarray,
                     exact_by_leaf: np.ndarray) -> PerSourceCounts:
    """Attribute internal-node far evaluations down to leaves.

    A far evaluation at internal node ``A`` stands for work on behalf of
    all atoms under ``A``; we apportion it to descendant leaves in
    proportion to their point counts, so the per-leaf task costs sum to
    the traversal totals.
    """
    node_counts = (tree.end - tree.start).astype(np.float64)
    density = far_by_node / node_counts
    anc = ancestor_prefix(tree, density)
    leaves = tree.leaves
    leaf_counts = node_counts[leaves]
    far_leaf = (anc[leaves] + density[leaves]) * leaf_counts
    return PerSourceCounts(
        visits=np.zeros(len(leaves), dtype=np.int64),
        far=far_leaf,
        exact_interactions=exact_by_leaf[leaves],
    )


def born_radii_dualtree(molecule: Molecule,
                        params: ApproxParams = ApproxParams(),
                        atoms_tree: Optional[Octree] = None,
                        q_tree: Optional[Octree] = None) -> BornResult:
    """r⁶ Born radii via simultaneous dual-tree traversal (refs [6,7])."""
    surf = molecule.require_surface()
    if atoms_tree is None:
        atoms_tree = build_octree(molecule.positions, params.leaf_size,
                                  params.max_depth)
    if q_tree is None:
        q_tree = build_octree(surf.points, params.leaf_size,
                              params.max_depth)
    wn_sorted = surf.weighted_normals[q_tree.perm]
    wn_node = node_aggregates(q_tree, wn_sorted)

    counts = TraversalCounts()
    s_node = np.zeros(atoms_tree.nnodes, dtype=np.float64)
    s_atom = np.zeros(atoms_tree.npoints, dtype=np.float64)
    # Per-atoms-node far-evaluation tallies; pushed down to leaves at the
    # end to feed the OCT_CILK intra-node task model.
    far_by_anode = np.zeros(atoms_tree.nnodes, dtype=np.float64)
    exact_by_aleaf = np.zeros(atoms_tree.nnodes, dtype=np.float64)

    a_front = np.zeros(1, dtype=np.int64)
    q_front = np.zeros(1, dtype=np.int64)
    exact_a: list = []
    exact_q: list = []

    while len(a_front):
        counts.frontier_visits += len(a_front)
        dv = q_tree.center[q_front] - atoms_tree.center[a_front]
        r2 = np.einsum("ij,ij->i", dv, dv)
        r = np.sqrt(r2)
        rsum = atoms_tree.radius[a_front] + q_tree.radius[q_front]
        far = _born_far_mask(r, DUAL_MAC_SAFETY * rsum, params)
        if far.any():
            fa, fq = a_front[far], q_front[far]
            numer = np.einsum("ij,ij->i", wn_node[fq], dv[far])
            np.add.at(s_node, fa, numer * _inv_r6(r2[far],
                                                  params.approx_math))
            np.add.at(far_by_anode, fa, 1.0)
            counts.far_evaluations += int(far.sum())
        rest = ~far
        ra, rq = a_front[rest], q_front[rest]
        both_leaf = atoms_tree.is_leaf[ra] & q_tree.is_leaf[rq]
        if both_leaf.any():
            exact_a.append(ra[both_leaf])
            exact_q.append(rq[both_leaf])
        ia, iq = ra[~both_leaf], rq[~both_leaf]
        if len(ia):
            a_front, q_front = _expand_larger(ia, iq, atoms_tree, q_tree)
        else:
            a_front = np.empty(0, dtype=np.int64)
            q_front = np.empty(0, dtype=np.int64)

    if exact_a:
        ea = np.concatenate(exact_a)
        eq = np.concatenate(exact_q)
        order = np.argsort(ea, kind="stable")
        ea, eq = ea[order], eq[order]
        uniq, first = np.unique(ea, return_index=True)
        bounds = np.append(first, len(ea))
        for u, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
            qsel = ranges_to_indices(q_tree.start[eq[lo:hi]],
                                     q_tree.end[eq[lo:hi]])
            apts = atoms_tree.points[atoms_tree.slice_of(int(u))]
            diff = q_tree.points[qsel][None, :, :] - apts[:, None, :]
            r2 = np.einsum("aqk,aqk->aq", diff, diff)
            numer = np.einsum("aqk,qk->aq", diff, wn_sorted[qsel])
            s_atom[atoms_tree.start[int(u)]:atoms_tree.end[int(u)]] += \
                np.sum(numer * _inv_r6(r2, params.approx_math), axis=1)
            counts.near_pair_blocks += hi - lo
            counts.exact_interactions += diff.shape[0] * diff.shape[1]
            exact_by_aleaf[int(u)] += diff.shape[0] * diff.shape[1]

    intrinsic_sorted = molecule.radii[atoms_tree.perm]
    radii_sorted = push_integrals_to_atoms(atoms_tree, s_node, s_atom,
                                           intrinsic_sorted)
    radii = atoms_tree.scatter_to_original(radii_sorted)
    per_source = _per_leaf_counts(atoms_tree, far_by_anode, exact_by_aleaf)
    record_traversal_metrics("born", counts, per_source)
    return BornResult(radii=radii, s_node=s_node, s_atom=s_atom,
                      counts=counts, atoms_tree=atoms_tree,
                      qpoints_tree=q_tree, per_source=per_source)


def epol_dualtree(molecule: Molecule,
                  born_radii: np.ndarray,
                  params: ApproxParams = ApproxParams(),
                  atoms_tree: Optional[Octree] = None,
                  tau: float = TAU_WATER,
                  far_chunk: int = 8192) -> EpolResult:
    """GB energy via dual-tree traversal over (atoms, atoms) node pairs.

    Starting from ``(root, root)`` and splitting disjointly guarantees
    each *ordered* atom pair is counted exactly once, matching Eq. 2.
    """
    if atoms_tree is None:
        atoms_tree = build_octree(molecule.positions, params.leaf_size,
                                  params.max_depth)
    q_sorted = molecule.charges[atoms_tree.perm]
    R_sorted = np.asarray(born_radii)[atoms_tree.perm]
    buckets = build_charge_buckets(atoms_tree, q_sorted, R_sorted,
                                   params.eps_epol)
    mac = DUAL_MAC_SAFETY * (1.0 + 2.0 / params.eps_epol)
    counts = TraversalCounts()
    far_by_unode = np.zeros(atoms_tree.nnodes, dtype=np.float64)
    exact_by_vleaf = np.zeros(atoms_tree.nnodes, dtype=np.float64)

    u_front = np.zeros(1, dtype=np.int64)
    v_front = np.zeros(1, dtype=np.int64)
    exact_u: list = []
    exact_v: list = []
    total = 0.0

    while len(u_front):
        counts.frontier_visits += len(u_front)
        dv = atoms_tree.center[v_front] - atoms_tree.center[u_front]
        r2 = np.einsum("ij,ij->i", dv, dv)
        r = np.sqrt(r2)
        rsum = atoms_tree.radius[u_front] + atoms_tree.radius[v_front]
        # Never approximate a node against itself (r_UV = 0).
        far = (u_front != v_front) & (r > rsum * mac)
        if far.any():
            fu, fv = u_front[far], v_front[far]
            fr2 = r2[far]
            for lo in range(0, len(fu), far_chunk):
                sl = slice(lo, min(lo + far_chunk, len(fu)))
                k = inv_fgb_still(fr2[sl][:, None, None],
                                  buckets.products[None, :, :],
                                  approx_math=params.approx_math)
                total += float(np.einsum("ki,kij,kj->", buckets.table[fu[sl]],
                                         k, buckets.table[fv[sl]]))
            np.add.at(far_by_unode, fu, 1.0)
            counts.far_evaluations += int(far.sum())
        rest = ~far
        ru, rv = u_front[rest], v_front[rest]
        both_leaf = atoms_tree.is_leaf[ru] & atoms_tree.is_leaf[rv]
        if both_leaf.any():
            exact_u.append(ru[both_leaf])
            exact_v.append(rv[both_leaf])
        iu, iv = ru[~both_leaf], rv[~both_leaf]
        if len(iu):
            u_front, v_front = _expand_larger(iu, iv, atoms_tree, atoms_tree)
        else:
            u_front = np.empty(0, dtype=np.int64)
            v_front = np.empty(0, dtype=np.int64)

    if exact_u:
        eu = np.concatenate(exact_u)
        ev = np.concatenate(exact_v)
        order = np.argsort(ev, kind="stable")
        eu, ev = eu[order], ev[order]
        pts = atoms_tree.points
        uniq, first = np.unique(ev, return_index=True)
        bounds = np.append(first, len(ev))
        for v, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
            usel = ranges_to_indices(atoms_tree.start[eu[lo:hi]],
                                     atoms_tree.end[eu[lo:hi]])
            vsl = atoms_tree.slice_of(int(v))
            diff = pts[usel][:, None, :] - pts[vsl][None, :, :]
            r2 = np.einsum("uvk,uvk->uv", diff, diff)
            RiRj = R_sorted[usel][:, None] * R_sorted[vsl][None, :]
            inv = inv_fgb_still(r2, RiRj, approx_math=params.approx_math)
            total += float(np.einsum("u,uv,v->", q_sorted[usel], inv,
                                     q_sorted[vsl]))
            counts.near_pair_blocks += hi - lo
            counts.exact_interactions += diff.shape[0] * diff.shape[1]
            exact_by_vleaf[int(v)] += diff.shape[0] * diff.shape[1]

    per_source = _per_leaf_counts(atoms_tree, far_by_unode, exact_by_vleaf)
    record_traversal_metrics("epol", counts, per_source)
    record_bucket_metrics(buckets)
    return EpolResult(energy=energy_prefactor(tau) * total, counts=counts,
                      buckets=buckets, atoms_tree=atoms_tree,
                      per_source=per_source)
