"""Machine model — the paper's Table I environment, parameterised.

The default :func:`lonestar4` spec mirrors the TACC Lonestar4 nodes the
paper benchmarked on: dual-socket 3.33 GHz hexa-core Intel Westmere
(12 cores/node), 24 GB RAM, 12 MB shared L3 per socket, 64 KB L1 and
256 KB L2 per core, InfiniBand fat-tree at 40 Gb/s point-to-point.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    sockets: int = 2
    cores_per_socket: int = 6
    ghz: float = 3.33
    #: Sustained useful flops per cycle per core for this workload
    #: (scalar SSE-era code without vectorisation, as the paper ran).
    flops_per_cycle: float = 2.0
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 12 * 1024 * 1024   # per socket
    ram_bytes: int = 24 * 1024 ** 3

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def flops_per_second(self) -> float:
        """Per-core sustained flop rate."""
        return self.ghz * 1e9 * self.flops_per_cycle


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect + intra-node messaging constants.

    ``t_s``/``t_w`` follow Grama et al.: per-message startup latency and
    per-8-byte-word transfer time.  Separate constants for messages that
    stay inside a node (shared-memory transport) reproduce the paper's
    ordering: *threads < same-node processes < cross-node processes*.
    """

    #: Inter-node startup latency (s) — InfiniBand RDMA-ish.
    ts_inter: float = 3.0e-6
    #: Inter-node per-word time (s/word); 40 Gb/s ≈ 5 GB/s ≈ 1.6 ns per
    #: 8-byte word.
    tw_inter: float = 1.6e-9
    #: Intra-node (shared-memory transport between processes).
    ts_intra: float = 6.0e-7
    tw_intra: float = 4.0e-10


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster."""

    nodes: int = 12
    node: NodeSpec = NodeSpec()
    network: NetworkSpec = NetworkSpec()

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    def placement(self, processes: int, threads: int):
        """Distribute ``processes`` ranks (each ``threads`` wide) over nodes.

        Ranks are packed node-by-node, ``cores // threads`` ranks per
        node (the paper ran 12×1 or 2×6 per node).  Returns a list of
        node ids, one per rank.

        Raises if the request exceeds the machine.
        """
        per_node = self.node.cores // threads
        if per_node < 1:
            raise ValueError(
                f"a rank of {threads} threads does not fit a "
                f"{self.node.cores}-core node")
        need_nodes = -(-processes // per_node)
        if need_nodes > self.nodes:
            raise ValueError(
                f"{processes} ranks × {threads} threads need {need_nodes} "
                f"nodes; machine has {self.nodes}")
        return [r // per_node for r in range(processes)]

    def nodes_used(self, processes: int, threads: int) -> int:
        return self.placement(processes, threads)[-1] + 1

    def ranks_per_node(self, processes: int, threads: int) -> int:
        placement = self.placement(processes, threads)
        return max(placement.count(n) for n in set(placement))


def lonestar4(nodes: int = 12) -> MachineSpec:
    """The paper's Table I machine with a configurable node count."""
    return MachineSpec(nodes=nodes)
