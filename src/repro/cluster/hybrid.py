"""Intra-rank execution models: 1 thread (pure MPI) vs p threads (hybrid).

The distributed drivers hand each rank a bag of leaf tasks with modelled
costs.  How long the rank takes depends on its intra-node execution
model:

* ``threads == 1`` (``OCT_MPI``): the rank runs tasks back-to-back —
  cost is the plain sum, no scheduler overhead.
* ``threads > 1`` (``OCT_MPI+CILK``): the cilk++ work-stealing
  simulator produces the makespan, plus a per-phase MPI↔cilk interface
  overhead (the paper calls this out as the hybrid's constant cost that
  dominates for small molecules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.workstealing import StealStats, WorkStealingSim


@dataclass
class IntraRankOutcome:
    """Virtual time of one rank's parallel phase."""

    seconds: float
    steals: int = 0
    utilization: float = 1.0


def run_intra_rank(task_costs: Sequence[float],
                   threads: int,
                   cost: CostModel,
                   seed: int = 0,
                   mpi_interface: bool = False) -> IntraRankOutcome:
    """Execute a bag of tasks on one rank under its threading model.

    ``mpi_interface`` adds the per-phase MPI↔cilk boundary cost; it
    applies only to hybrid runs (P > 1 *and* p > 1), not to the pure
    shared-memory OCT_CILK configuration.
    """
    costs = np.asarray(task_costs, dtype=np.float64)
    if threads <= 1:
        return IntraRankOutcome(seconds=float(costs.sum()))
    sim = WorkStealingSim(
        workers=threads,
        task_overhead=cost.cilk_task_overhead,
        steal_overhead=cost.cilk_steal_overhead,
        seed=seed,
    )
    st: StealStats = sim.run(costs)
    extra = cost.hybrid_interface_overhead if mpi_interface else 0.0
    return IntraRankOutcome(
        seconds=st.makespan + extra,
        steals=st.steals,
        utilization=st.utilization,
    )
