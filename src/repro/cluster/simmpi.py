"""Simulated MPI: real message passing between rank threads, virtual time.

Each rank runs as an OS thread executing the user's rank function with a
:class:`SimComm` handle.  Data really moves (payloads are deep-copied
between ranks, so there is no accidental shared-memory cheating — the
distributed-memory semantics are enforced), while *time* is virtual:

* ``comm.compute(dt)`` charges modelled computation time;
* collectives synchronise all ranks' virtual clocks to the latest
  arrival, then advance them by the Grama-style cost of the operation
  from :class:`repro.cluster.costmodel.CostModel`;
* point-to-point sends charge latency + bandwidth for the payload size,
  with cheaper constants when both ranks share a node.

The result of a run is the per-rank return values plus a
:class:`repro.cluster.trace.RunStats` with comp/comm/idle breakdowns.
"""

from __future__ import annotations

import copy
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, lonestar4
from repro.cluster.trace import RankStats, RunStats
from repro.obs import get_tracer

#: Barrier timeout (real seconds) — a mismatched collective in user code
#: fails loudly instead of deadlocking the test suite.
_BARRIER_TIMEOUT = 120.0


def _payload_copy(obj: Any) -> Any:
    """Deep copy enforcing distributed-memory isolation."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, str, bytes, bool,
                        type(None))):
        return obj
    return copy.deepcopy(obj)


def _payload_words(obj: Any) -> float:
    """Size of a payload in 8-byte words (for the cost model)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes / 8.0
    if isinstance(obj, (list, tuple)):
        return sum(_payload_words(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_payload_words(v) for v in obj.values())
    return 1.0


class _CollectiveState:
    """Shared slots + double barrier implementing one collective at a time."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.slots: List[Any] = [None] * size
        self.entry_clocks = np.zeros(size)
        self.result: Any = None
        self.barrier = threading.Barrier(size)

    def wait(self) -> None:
        self.barrier.wait(timeout=_BARRIER_TIMEOUT)


class SimComm:
    """Per-rank communicator handle (the ``comm`` of a rank function)."""

    def __init__(self, cluster: "SimCluster", rank: int) -> None:
        self._cluster = cluster
        self.rank = rank
        self.size = cluster.processes
        self.stats = RankStats(rank=rank)
        self._clock = 0.0

    # -- virtual time ----------------------------------------------------

    @property
    def clock(self) -> float:
        """This rank's virtual time (seconds since run start)."""
        return self._clock

    def compute(self, seconds: float, label: str = "compute") -> None:
        """Charge modelled computation time (``label`` names the trace
        span when observability is enabled)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        t0 = self._clock
        self._clock += seconds
        self.stats.comp_seconds += seconds
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_span(label, "comp", self.rank, t0, self._clock)

    def charge_memory(self, nbytes: int) -> None:
        """Record resident bytes for this rank's process (peak tracked)."""
        self.stats.memory_bytes = max(self.stats.memory_bytes, int(nbytes))

    def _sync_to(self, t: float) -> None:
        """Advance to a later virtual time, booking the gap as idle."""
        if t > self._clock:
            self.stats.idle_seconds += t - self._clock
            self._clock = t

    def _charge_comm(self, seconds: float) -> None:
        self._clock += seconds
        self.stats.comm_seconds += seconds

    # -- collectives -------------------------------------------------------

    def _collective(self, payload: Any,
                    combine: Callable[[List[Any]], Any],
                    cost: Callable[[List[Any]], float],
                    op: str = "collective") -> Any:
        """Generic synchronising collective.

        ``combine`` maps the slot list to the common result; ``cost``
        maps the slot list to the operation's virtual cost.  All ranks
        synchronise to the latest entry clock, then advance by the cost.
        ``op`` names the trace event emitted when observability is on.
        """
        st = self._cluster._collective
        st.slots[self.rank] = payload
        st.entry_clocks[self.rank] = self._clock
        st.wait()
        if self.rank == 0:
            st.result = combine(st.slots)
        st.wait()
        result = _payload_copy(st.result)
        t_max = float(st.entry_clocks.max())
        dt = cost(st.slots)
        t_entry = self._clock
        self._sync_to(t_max)
        self._charge_comm(dt)
        tracer = get_tracer()
        if tracer.enabled:
            nbytes = int(8 * _payload_words(payload)) if payload is not None \
                else 0
            if t_max > t_entry:
                tracer.virtual_span(f"{op}.wait", "idle", self.rank,
                                    t_entry, t_max)
            tracer.virtual_span(op, "comm", self.rank, t_max, self._clock,
                                payload_bytes=nbytes, size=self.size)
        st.wait()  # everyone has read before slots are reused
        return result

    def barrier(self) -> None:
        """Synchronise virtual clocks (latency-only cost)."""
        cm = self._cluster.cost
        self._collective(
            None,
            combine=lambda slots: None,
            cost=lambda slots: cm.reduce_seconds(
                1.0, self.size, self._cluster.threads_per_rank),
            op="barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        cm = self._cluster.cost
        return self._collective(
            obj if self.rank == root else None,
            combine=lambda slots: slots[root],
            cost=lambda slots: cm.reduce_seconds(
                _payload_words(slots[root]), self.size,
                self._cluster.threads_per_rank),
            op="bcast")

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Allreduce over numpy arrays or scalars (``sum``/``min``/``max``)."""
        cm = self._cluster.cost
        reducers = {"sum": _reduce_sum, "min": _reduce_min,
                    "max": _reduce_max}
        if op not in reducers:
            raise ValueError(f"unsupported op {op!r}")
        return self._collective(
            value,
            combine=reducers[op],
            cost=lambda slots: cm.allreduce_seconds(
                _payload_words(slots[0]), self.size,
                self._cluster.threads_per_rank),
            op="allreduce")

    def reduce(self, value: Any, root: int = 0, op: str = "sum") -> Any:
        """Reduce to ``root``; other ranks receive ``None``."""
        cm = self._cluster.cost
        reducers = {"sum": _reduce_sum, "min": _reduce_min,
                    "max": _reduce_max}
        if op not in reducers:
            raise ValueError(f"unsupported op {op!r}")
        out = self._collective(
            value,
            combine=reducers[op],
            cost=lambda slots: cm.reduce_seconds(
                _payload_words(slots[0]), self.size,
                self._cluster.threads_per_rank),
            op="reduce")
        return out if self.rank == root else None

    def allgather(self, obj: Any) -> List[Any]:
        cm = self._cluster.cost
        return self._collective(
            obj,
            combine=lambda slots: list(slots),
            cost=lambda slots: cm.allgather_seconds(
                max(_payload_words(s) for s in slots), self.size,
                self._cluster.threads_per_rank),
            op="allgather")

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        out = self.allgather(obj)  # cost model treats gather ≈ allgather
        return out if self.rank == root else None

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        cm = self._cluster.cost
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one payload per rank")
        result = self._collective(
            objs if self.rank == root else None,
            combine=lambda slots: slots[root],
            cost=lambda slots: cm.allgather_seconds(
                max(_payload_words(s) for s in slots[root]), self.size,
                self._cluster.threads_per_rank),
            op="scatter")
        return _payload_copy(result[self.rank])

    # -- point-to-point ------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size or dest == self.rank:
            raise ValueError(f"bad destination {dest}")
        same = (self._cluster.placement[self.rank]
                == self._cluster.placement[dest])
        words = _payload_words(obj)
        dt = self._cluster.cost.point_to_point_seconds(
            words, same_node=same)
        t0 = self._clock
        self._charge_comm(dt)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_span("send", "comm", self.rank, t0, self._clock,
                                payload_bytes=int(8 * words), dest=dest,
                                tag=tag, same_node=same)
        self._cluster._queue_for(self.rank, dest, tag).put(
            (_payload_copy(obj), self._clock))

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size or source == self.rank:
            raise ValueError(f"bad source {source}")
        q = self._cluster._queue_for(source, self.rank, tag)
        obj, sender_clock = q.get(timeout=_BARRIER_TIMEOUT)
        t0 = self._clock
        self._sync_to(sender_clock)
        tracer = get_tracer()
        if tracer.enabled and self._clock > t0:
            tracer.virtual_span("recv.wait", "idle", self.rank, t0,
                                self._clock, source=source, tag=tag)
        return obj


def _reduce_sum(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = acc + s
    return acc


def _reduce_min(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = np.minimum(acc, s)
    return acc


def _reduce_max(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = np.maximum(acc, s)
    return acc


class SimCluster:
    """Launches rank threads and aggregates their statistics.

    Parameters
    ----------
    processes:
        Number of MPI ranks.
    threads_per_rank:
        Cores each rank occupies (affects placement and collective
        costs; intra-rank threading itself is modelled by the
        work-stealing simulator in the drivers).
    machine:
        Cluster hardware model.
    cost:
        Cost model; defaults to one over ``machine``.
    """

    def __init__(self,
                 processes: int,
                 threads_per_rank: int = 1,
                 machine: Optional[MachineSpec] = None,
                 cost: Optional[CostModel] = None) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.threads_per_rank = threads_per_rank
        self.machine = machine or lonestar4()
        self.cost = cost or CostModel(machine=self.machine)
        self.placement = self.machine.placement(processes, threads_per_rank)
        self._collective = _CollectiveState(processes)
        self._queues: Dict[Tuple[int, int, int], queue.Queue] = {}
        self._queues_lock = threading.Lock()

    def _queue_for(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._queues_lock:
            if key not in self._queues:
                self._queues[key] = queue.Queue()
            return self._queues[key]

    def run(self, fn: Callable[..., Any], *args: Any
            ) -> Tuple[List[Any], RunStats]:
        """Execute ``fn(comm, *args)`` on every rank.

        Returns the list of per-rank return values and the aggregated
        :class:`RunStats`.  The first rank exception (if any) is
        re-raised in the caller.
        """
        comms = [SimComm(self, r) for r in range(self.processes)]
        results: List[Any] = [None] * self.processes
        errors: List[Optional[BaseException]] = [None] * self.processes

        def runner(r: int) -> None:
            try:
                results[r] = fn(comms[r], *args)
            except BaseException as exc:  # lint: ignore[RPR003] — re-raised below
                errors[r] = exc
                # Break the collective barrier so peers fail fast
                # instead of timing out.
                self._collective.barrier.abort()

        threads = [threading.Thread(target=runner, args=(r,),
                                    name=f"simmpi-rank{r}", daemon=True)
                   for r in range(self.processes)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Prefer the originating error over the BrokenBarrierError its
        # abort caused on peer ranks.
        real = [e for e in errors
                if e is not None
                and not isinstance(e, threading.BrokenBarrierError)]
        if real:
            raise real[0]
        for exc in errors:
            if exc is not None:
                raise exc

        stats = RunStats(processes=self.processes,
                         threads=self.threads_per_rank,
                         ranks=[c.stats for c in comms])
        return results, stats
