"""Simulated MPI: real message passing between rank threads, virtual time.

Each rank runs as an OS thread executing the user's rank function with a
:class:`SimComm` handle.  Data really moves (payloads are deep-copied
between ranks, so there is no accidental shared-memory cheating — the
distributed-memory semantics are enforced), while *time* is virtual:

* ``comm.compute(dt)`` charges modelled computation time;
* collectives synchronise all ranks' virtual clocks to the latest
  arrival, then advance them by the Grama-style cost of the operation
  from :class:`repro.cluster.costmodel.CostModel`;
* point-to-point sends charge latency + bandwidth for the payload size,
  with cheaper constants when both ranks share a node.

The result of a run is the per-rank return values plus a
:class:`repro.cluster.trace.RunStats` with comp/comm/idle breakdowns.

Fault model (see ``docs/ROBUSTNESS.md``)
----------------------------------------
A :class:`repro.faults.plan.FaultPlan` passed to the cluster injects
deterministic, seeded faults: rank crashes during labelled compute
phases, point-to-point message drops and delays, lost collective
fragments (retransmitted at a virtual-time cost) and straggler
slowdowns.  Every fault the runtime surfaces to user code is a typed
:class:`repro.faults.errors.FaultError` — never a bare ``queue.Empty``
or ``BrokenBarrierError`` (lint rule RPR006 enforces the boundary):

* ``recv`` timeouts raise :class:`RecvTimeoutError` naming the channel
  and both endpoints' virtual clocks;
* an aborted collective raises :class:`CollectiveAbortedError` naming
  the operation and — heartbeat-style — *which* ranks died, so
  survivors can act on it;
* a crashed rank raises :class:`RankCrashedError` on itself.

Survivors recover by calling :meth:`SimComm.shrink`, which rendezvous
all live ranks on a new communicator epoch excluding the dead (the
ULFM ``MPI_Comm_shrink`` model); subsequent collectives span only the
survivors.  :mod:`repro.parallel.distributed.run_fig4_ft` builds a
checkpoint/recovery driver on top of this.
"""

from __future__ import annotations

import copy
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, lonestar4
from repro.cluster.trace import RankStats, RunStats
from repro.faults.errors import (
    CollectiveAbortedError,
    FaultError,
    NoSurvivorsError,
    RankCrashedError,
    RecvTimeoutError,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import get_tracer

#: Default barrier/recv timeout (real seconds) — a mismatched collective
#: in user code fails loudly instead of deadlocking the test suite.
#: Override per cluster with ``SimCluster(timeout=...)`` or globally via
#: the ``REPRO_SIMMPI_TIMEOUT`` environment variable.
_BARRIER_TIMEOUT = 120.0

#: How often a blocked ``recv`` wakes to check for dead senders (s).
_RECV_POLL = 0.05


def _resolve_timeout(timeout: Optional[float]) -> float:
    if timeout is not None:
        value = float(timeout)
    else:
        env = os.environ.get("REPRO_SIMMPI_TIMEOUT")
        value = float(env) if env else _BARRIER_TIMEOUT
    if value <= 0:
        raise ValueError("timeout must be positive")
    return value


def _payload_copy(obj: Any) -> Any:
    """Deep copy enforcing distributed-memory isolation."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, str, bytes, bool,
                        type(None))):
        return obj
    return copy.deepcopy(obj)


def _payload_words(obj: Any) -> float:
    """Size of a payload in 8-byte words (for the cost model)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes / 8.0
    if isinstance(obj, (list, tuple)):
        return sum(_payload_words(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_payload_words(v) for v in obj.values())
    return 1.0


@dataclass(frozen=True)
class GroupInfo:
    """What :meth:`SimComm.shrink` reports back to the rank function."""

    epoch: int
    alive: Tuple[int, ...]
    newly_dead: Tuple[int, ...]


class _Group:
    """One communicator epoch: the live ranks plus their collective state.

    Epoch 0 spans all ranks; each :meth:`SimComm.shrink` after a rank
    death creates the next epoch over the survivors.  Collectives on a
    group run in lockstep (shared slots + a triple barrier), so at any
    moment all members are in the same collective — the property the
    recovery protocol relies on.
    """

    def __init__(self, epoch: int, alive: Tuple[int, ...],
                 timeout: float,
                 newly_dead: Tuple[int, ...] = (),
                 op_seqs: Optional[Dict[str, int]] = None) -> None:
        self.epoch = epoch
        self.alive = tuple(alive)
        self.newly_dead = tuple(newly_dead)
        self.index = {r: i for i, r in enumerate(self.alive)}
        self.size = len(self.alive)
        self.slots: List[Any] = [None] * self.size
        self.entry_clocks = np.zeros(self.size)
        self.result: Any = None
        #: Completed-collective counters per op (carried across epochs
        #: so fault indices keep addressing logical collectives).
        self.op_seqs: Dict[str, int] = dict(op_seqs or {})
        self.barrier = threading.Barrier(self.size)
        self._timeout = timeout

    def wait(self) -> None:
        """One barrier cycle; broken barriers surface to the caller."""
        self.barrier.wait(timeout=self._timeout)


class SimComm:
    """Per-rank communicator handle (the ``comm`` of a rank function)."""

    def __init__(self, cluster: "SimCluster", rank: int) -> None:
        self._cluster = cluster
        self.rank = rank
        self.size = cluster.processes
        self.stats = RankStats(rank=rank)
        self._clock = 0.0
        self._group = cluster._latest_group
        self._compute_seqs: Dict[str, int] = {}
        self._send_seqs: Dict[Tuple[int, int], int] = {}
        self._straggler_noted = False

    # -- virtual time ----------------------------------------------------

    @property
    def clock(self) -> float:
        """This rank's virtual time (seconds since run start)."""
        return self._clock

    @property
    def alive(self) -> Tuple[int, ...]:
        """Ranks in this rank's current communicator epoch."""
        return self._group.alive

    @property
    def epoch(self) -> int:
        return self._group.epoch

    def compute(self, seconds: float, label: str = "compute",
                recovery: bool = False) -> None:
        """Charge modelled computation time.

        ``label`` names the trace span when observability is enabled
        and is what :class:`~repro.faults.plan.RankCrash` phases match
        against.  ``recovery=True`` additionally books the charge as
        recovery work (``RankStats.recovery_seconds``) and colours the
        trace span as such.
        """
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        t0 = self._clock
        plan = self._cluster.fault_plan
        if plan is not None and not plan.is_empty:
            seconds = self._inject_compute_faults(seconds, label, t0)
        self._clock += seconds
        self.stats.comp_seconds += seconds
        if recovery:
            self.stats.recovery_seconds += seconds
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_span(label, "recovery" if recovery else "comp",
                                self.rank, t0, self._clock)

    def _inject_compute_faults(self, seconds: float, label: str,
                               t0: float) -> float:
        """Apply straggler slowdown; fire a matching crash."""
        plan = self._cluster.fault_plan
        factor = plan.slowdown(self.rank)
        if factor != 1.0:
            seconds *= factor
            if not self._straggler_noted:
                self._straggler_noted = True
                self._cluster._record_fault(
                    FaultEvent("straggler", self.rank, t0,
                               f"slowdown x{factor:g}"))
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.virtual_instant("fault.straggler", "fault",
                                           self.rank, t0, factor=factor)
        occurrence = self._compute_seqs.get(label, 0)
        self._compute_seqs[label] = occurrence + 1
        crash = plan.crash_for(self.rank, label, occurrence,
                               t0, t0 + seconds)
        if crash is not None:
            if crash.at_time is not None:
                t_crash = crash.at_time
            else:
                t_crash = t0 + crash.after_fraction * seconds
            done = max(0.0, t_crash - t0)
            self._clock += done
            self.stats.comp_seconds += done
            self._die(label, self._clock)
        return seconds

    def _die(self, phase: str, t: float) -> None:
        """Injected death: mark, abort, trace, raise — in that order
        (peers must see the dead set before their barriers break)."""
        self._cluster._mark_dead(self.rank)
        self._cluster._record_fault(
            FaultEvent("crash", self.rank, t, phase))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_instant("fault.crash", "fault", self.rank, t,
                                   phase=phase)
        raise RankCrashedError(self.rank, t, phase)

    def charge_memory(self, nbytes: int) -> None:
        """Record resident bytes for this rank's process (peak tracked)."""
        self.stats.memory_bytes = max(self.stats.memory_bytes, int(nbytes))

    def _sync_to(self, t: float) -> None:
        """Advance to a later virtual time, booking the gap as idle."""
        if t > self._clock:
            self.stats.idle_seconds += t - self._clock
            self._clock = t

    def _charge_comm(self, seconds: float) -> None:
        self._clock += seconds
        self.stats.comm_seconds += seconds

    # -- fault detection / recovery ------------------------------------

    def _aborted(self, op: str) -> CollectiveAbortedError:
        """Typed error for a broken collective barrier, naming the dead."""
        dead = self._cluster.dead_ranks()
        return CollectiveAbortedError(op, self.rank, self._clock,
                                      dead=dead, timed_out=not dead)

    def shrink(self) -> GroupInfo:
        """Rendezvous the survivors on a new communicator epoch.

        The ULFM ``MPI_Comm_shrink`` model: after a
        :class:`CollectiveAbortedError` names dead ranks, every
        survivor calls ``shrink()``; all live ranks meet on a fresh
        group excluding the dead and subsequent collectives span only
        them.  The agreement costs one small collective in virtual
        time.  Returns the new epoch's membership and every rank that
        died since this rank's previous epoch.
        """
        cluster = self._cluster
        old_epoch = self._group.epoch
        with cluster._state_lock:
            latest = cluster._latest_group
            dead = set(cluster._dead)
            if self.rank in dead:
                raise RankCrashedError(self.rank, self._clock)
            if any(r in dead for r in latest.alive):
                alive = tuple(r for r in latest.alive if r not in dead)
                if not alive:
                    raise NoSurvivorsError(sorted(dead))
                newly = tuple(r for r in latest.alive if r in dead)
                latest = _Group(latest.epoch + 1, alive, cluster.timeout,
                                newly_dead=newly, op_seqs=latest.op_seqs)
                cluster._groups[latest.epoch] = latest
                cluster._latest_group = latest
                cluster._recoveries += 1
            target = latest
        newly_dead: List[int] = []
        for e in range(old_epoch + 1, target.epoch + 1):
            newly_dead.extend(cluster._groups[e].newly_dead)
        self._group = target
        idx = target.index.get(self.rank)
        if idx is None:
            raise RankCrashedError(self.rank, self._clock)
        target.entry_clocks[idx] = self._clock
        try:
            target.wait()
            t_latest = float(target.entry_clocks.max())
            target.wait()  # everyone has read before clocks are reused
        except threading.BrokenBarrierError:
            raise self._aborted("shrink") from None
        t_entry = self._clock
        self._sync_to(t_latest)
        cost = self._cluster.cost
        self._charge_comm(cost.reduce_seconds(1.0, target.size,
                                              self._cluster.threads_per_rank)
                          + cost.collective_sync_seconds(target.size))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_span("shrink", "comm", self.rank, t_entry,
                                self._clock, epoch=target.epoch,
                                alive=list(target.alive))
        return GroupInfo(epoch=target.epoch, alive=target.alive,
                         newly_dead=tuple(newly_dead))

    # -- collectives -------------------------------------------------------

    def _collective(self, payload: Any,
                    combine: Callable[[List[Any]], Any],
                    cost: Callable[[List[Any]], float],
                    op: str = "collective") -> Any:
        """Generic synchronising collective over the current group.

        ``combine`` maps the slot list (in group order) to the common
        result; ``cost`` maps it to the operation's virtual cost.  All
        live ranks synchronise to the latest entry clock, then advance
        by the cost.  ``op`` names the trace event emitted when
        observability is on.  A broken barrier — peer death, timeout or
        mismatched schedule — surfaces as
        :class:`CollectiveAbortedError`, never ``BrokenBarrierError``.
        """
        st = self._group
        idx = st.index.get(self.rank)
        if idx is None:
            raise RankCrashedError(self.rank, self._clock)
        plan = self._cluster.fault_plan
        op_seq = st.op_seqs.get(op, 0)
        if plan is not None and not plan.is_empty:
            delay = plan.collective_delay(self.rank, op, op_seq)
            if delay > 0.0:
                self._charge_comm(delay)
                self._cluster._record_fault(
                    FaultEvent("delay", self.rank, self._clock,
                               f"{op}[{op_seq}] +{delay:g}s"))
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.virtual_instant("fault.delay", "fault",
                                           self.rank, self._clock,
                                           op=op, seconds=delay)
        st.slots[idx] = payload
        st.entry_clocks[idx] = self._clock
        try:
            st.wait()
            if idx == 0:
                st.result = combine(st.slots)
                st.op_seqs[op] = op_seq + 1
            st.wait()
        except threading.BrokenBarrierError:
            raise self._aborted(op) from None
        result = _payload_copy(st.result)
        t_max = float(st.entry_clocks.max())
        dt = float(cost(st.slots))
        if plan is not None and not plan.is_empty:
            dt += self._collective_retransmits(op, op_seq, st, t_max, idx)
        t_entry = self._clock
        self._sync_to(t_max)
        self._charge_comm(dt)
        tracer = get_tracer()
        if tracer.enabled:
            nbytes = int(8 * _payload_words(payload)) if payload is not None \
                else 0
            if t_max > t_entry:
                tracer.virtual_span(f"{op}.wait", "idle", self.rank,
                                    t_entry, t_max)
            tracer.virtual_span(op, "comm", self.rank, t_max, self._clock,
                                payload_bytes=nbytes, size=st.size)
        try:
            st.wait()  # everyone has read before slots are reused
        except threading.BrokenBarrierError:
            raise self._aborted(op) from None
        return result

    def _collective_retransmits(self, op: str, op_seq: int, st: _Group,
                                t_fault: float, idx: int) -> float:
        """Virtual cost of retransmitting dropped collective fragments.

        A lost fragment from any participant stalls the whole
        operation for one inter-node round trip of the largest
        fragment — every rank pays it, which is how a reliable
        transport's retransmission shows up in an Allreduce.
        """
        plan = self._cluster.fault_plan
        drops = plan.collective_drops(op, op_seq, st.alive)
        if not drops:
            return 0.0
        words = max(_payload_words(s) for s in st.slots)
        extra = len(drops) * self._cluster.cost.point_to_point_seconds(
            words, same_node=False)
        if idx == 0:  # record once per collective, not once per rank
            for src in drops:
                self._cluster._record_fault(
                    FaultEvent("drop", src, t_fault,
                               f"{op}[{op_seq}] fragment retransmitted"))
            tracer = get_tracer()
            if tracer.enabled:
                for src in drops:
                    tracer.virtual_instant("fault.drop", "fault", src,
                                           t_fault, op=op)
        return extra

    def _effective_root(self, root: int) -> int:
        """Map a (possibly dead) root rank onto the current group."""
        if root in self._group.index:
            return root
        return self._group.alive[0]

    def barrier(self) -> None:
        """Synchronise virtual clocks (latency-only cost)."""
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        self._collective(
            None,
            combine=lambda slots: None,
            cost=lambda slots: cm.reduce_seconds(1.0, len(slots), p),
            op="barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        root = self._effective_root(root)
        root_idx = self._group.index[root]
        return self._collective(
            obj if self.rank == root else None,
            combine=lambda slots: slots[root_idx],
            cost=lambda slots: cm.reduce_seconds(
                _payload_words(slots[root_idx]), len(slots), p),
            op="bcast")

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Allreduce over numpy arrays or scalars (``sum``/``min``/``max``)."""
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        reducers = {"sum": _reduce_sum, "min": _reduce_min,
                    "max": _reduce_max}
        if op not in reducers:
            raise ValueError(f"unsupported op {op!r}")
        return self._collective(
            value,
            combine=reducers[op],
            cost=lambda slots: cm.allreduce_seconds(
                _payload_words(slots[0]), len(slots), p),
            op="allreduce")

    def reduce(self, value: Any, root: int = 0, op: str = "sum") -> Any:
        """Reduce to ``root``; other ranks receive ``None``.

        If ``root`` died, the lowest surviving rank takes over as
        master (the Fig. 4 energy accumulation must always have one).
        """
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        reducers = {"sum": _reduce_sum, "min": _reduce_min,
                    "max": _reduce_max}
        if op not in reducers:
            raise ValueError(f"unsupported op {op!r}")
        root = self._effective_root(root)
        out = self._collective(
            value,
            combine=reducers[op],
            cost=lambda slots: cm.reduce_seconds(
                _payload_words(slots[0]), len(slots), p),
            op="reduce")
        return out if self.rank == root else None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather everyone's payload; the list is in group (alive) order."""
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        return self._collective(
            obj,
            combine=lambda slots: list(slots),
            cost=lambda slots: cm.allgather_seconds(
                max(_payload_words(s) for s in slots), len(slots), p),
            op="allgather")

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather to ``root`` (tree gather — cheaper than allgather)."""
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        root = self._effective_root(root)
        out = self._collective(
            obj,
            combine=lambda slots: list(slots),
            cost=lambda slots: cm.gather_seconds(
                max(_payload_words(s) for s in slots), len(slots), p),
            op="gather")
        return out if self.rank == root else None

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        cm = self._cluster.cost
        p = self._cluster.threads_per_rank
        root = self._effective_root(root)
        root_idx = self._group.index[root]
        my_idx = self._group.index[self.rank]
        if self.rank == root:
            if objs is None or len(objs) != self._group.size:
                raise ValueError("scatter needs one payload per live rank")
        result = self._collective(
            objs if self.rank == root else None,
            combine=lambda slots: slots[root_idx],
            cost=lambda slots: cm.allgather_seconds(
                max(_payload_words(s) for s in slots[root_idx]),
                len(slots), p),
            op="scatter")
        return _payload_copy(result[my_idx])

    # -- point-to-point ------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size or dest == self.rank:
            raise ValueError(f"bad destination {dest}")
        same = (self._cluster.placement[self.rank]
                == self._cluster.placement[dest])
        words = _payload_words(obj)
        dt = self._cluster.cost.point_to_point_seconds(
            words, same_node=same)
        t0 = self._clock
        self._charge_comm(dt)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.virtual_span("send", "comm", self.rank, t0, self._clock,
                                payload_bytes=int(8 * words), dest=dest,
                                tag=tag, same_node=same)
        arrival_clock = self._clock
        plan = self._cluster.fault_plan
        if plan is not None and not plan.is_empty:
            seq = self._send_seqs.get((dest, tag), 0)
            self._send_seqs[(dest, tag)] = seq + 1
            drop, delay = plan.p2p_fault(self.rank, dest, tag, seq)
            if drop is not None:
                self._cluster._record_fault(
                    FaultEvent("drop", self.rank, self._clock,
                               f"send -> {dest} tag {tag} seq {seq}"))
                if tracer.enabled:
                    tracer.virtual_instant("fault.drop", "fault",
                                           self.rank, self._clock,
                                           dest=dest, tag=tag)
                return  # the message vanishes in transit
            if delay is not None:
                arrival_clock += delay.seconds
                self._cluster._record_fault(
                    FaultEvent("delay", self.rank, self._clock,
                               f"send -> {dest} tag {tag} "
                               f"+{delay.seconds:g}s"))
                if tracer.enabled:
                    tracer.virtual_instant("fault.delay", "fault",
                                           self.rank, self._clock,
                                           dest=dest, tag=tag,
                                           seconds=delay.seconds)
        self._cluster._queue_for(self.rank, dest, tag).put(
            (_payload_copy(obj), arrival_clock))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive.

        Raises :class:`RankCrashedError` if the source is known dead,
        and :class:`RecvTimeoutError` — naming the channel and both
        endpoints' virtual clocks — if nothing arrives within the
        cluster timeout.  Never leaks ``queue.Empty``.
        """
        if not 0 <= source < self.size or source == self.rank:
            raise ValueError(f"bad source {source}")
        cluster = self._cluster
        q = cluster._queue_for(source, self.rank, tag)
        deadline = time.monotonic() + cluster.timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                obj, sender_clock = q.get(
                    timeout=min(_RECV_POLL, max(1e-6, remaining)))
                break
            except queue.Empty:
                if source in cluster._dead:
                    raise RankCrashedError(
                        source, cluster.rank_clock(source)) from None
                if remaining <= 0:
                    raise RecvTimeoutError(
                        source, self.rank, tag,
                        dest_clock=self._clock,
                        source_clock=cluster.rank_clock(source),
                        timeout=cluster.timeout) from None
        t0 = self._clock
        self._sync_to(sender_clock)
        tracer = get_tracer()
        if tracer.enabled and self._clock > t0:
            tracer.virtual_span("recv.wait", "idle", self.rank, t0,
                                self._clock, source=source, tag=tag)
        return obj


def _reduce_sum(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = acc + s
    return acc


def _reduce_min(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = np.minimum(acc, s)
    return acc


def _reduce_max(slots: List[Any]) -> Any:
    acc = _payload_copy(slots[0])
    for s in slots[1:]:
        acc = np.maximum(acc, s)
    return acc


class SimCluster:
    """Launches rank threads and aggregates their statistics.

    Parameters
    ----------
    processes:
        Number of MPI ranks.
    threads_per_rank:
        Cores each rank occupies (affects placement and collective
        costs; intra-rank threading itself is modelled by the
        work-stealing simulator in the drivers).
    machine:
        Cluster hardware model.
    cost:
        Cost model; defaults to one over ``machine``.
    timeout:
        Real-time seconds a barrier or receive waits before aborting
        (default: ``REPRO_SIMMPI_TIMEOUT`` env var, else 120).
    fault_plan:
        Deterministic fault injection plan (``None`` — the default —
        keeps every fault hook off the fast path).

    A cluster object is reusable: ``run()`` resets all shared state
    (collective groups, p2p queues, dead set, fault log), so an aborted
    run cannot poison the next one.
    """

    def __init__(self,
                 processes: int,
                 threads_per_rank: int = 1,
                 machine: Optional[MachineSpec] = None,
                 cost: Optional[CostModel] = None,
                 timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self.threads_per_rank = threads_per_rank
        self.machine = machine or lonestar4()
        self.cost = cost or CostModel(machine=self.machine)
        self.placement = self.machine.placement(processes, threads_per_rank)
        self.timeout = _resolve_timeout(timeout)
        self.fault_plan = fault_plan
        self._state_lock = threading.Lock()
        self._queues_lock = threading.Lock()
        self._comms: List[SimComm] = []
        self._reset_run_state()

    # -- shared run state ------------------------------------------------

    def _reset_run_state(self) -> None:
        """Fresh collective group, queues, dead set and fault log.

        Runs lock-free by design: it is only called from ``__init__``
        and from :meth:`run` *before* the rank threads start, so no
        other thread can observe the torn state — hence the per-line
        RPR204 suppressions on the guarded fields below.
        """
        self._dead: Dict[int, bool] = {}  # guarded-by: _state_lock  # lint: ignore[RPR204] — pre-thread reset
        self._groups: Dict[int, _Group] = {  # guarded-by: _state_lock  # lint: ignore[RPR204] — pre-thread reset
            0: _Group(0, tuple(range(self.processes)), self.timeout)}
        self._latest_group = self._groups[0]
        self._queues: Dict[Tuple[int, int, int], queue.Queue] = {}  # guarded-by: _queues_lock  # lint: ignore[RPR204] — pre-thread reset
        self._fault_events: List[FaultEvent] = []  # guarded-by: _state_lock  # lint: ignore[RPR204] — pre-thread reset
        self._recoveries = 0  # guarded-by: _state_lock  # lint: ignore[RPR204] — pre-thread reset

    def dead_ranks(self) -> Tuple[int, ...]:
        """Ranks currently known dead (sorted)."""
        with self._state_lock:
            return tuple(sorted(self._dead))

    def rank_clock(self, rank: int) -> Optional[float]:
        """Best-effort read of a rank's virtual clock (diagnostics)."""
        if 0 <= rank < len(self._comms):
            return self._comms[rank]._clock
        return None

    def _mark_dead(self, rank: int) -> None:
        """Record a death and break every group barrier so survivors
        blocked in collectives learn about it promptly."""
        with self._state_lock:
            self._dead[rank] = True
            groups = list(self._groups.values())
        for g in groups:
            g.barrier.abort()

    def _record_fault(self, event: FaultEvent) -> None:
        with self._state_lock:
            self._fault_events.append(event)

    def _queue_for(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._queues_lock:
            if key not in self._queues:
                self._queues[key] = queue.Queue()
            return self._queues[key]

    # -- execution -------------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any
            ) -> Tuple[List[Any], RunStats]:
        """Execute ``fn(comm, *args)`` on every rank.

        Returns the list of per-rank return values and the aggregated
        :class:`RunStats`.  Error policy, in order of precedence:

        * a non-fault exception on any rank (a programming error) is
          re-raised in the caller, in preference to the typed fault
          errors its death caused on peers;
        * a typed fault error a rank did *not* recover from
          (:class:`CollectiveAbortedError`, :class:`RecvTimeoutError`)
          is re-raised;
        * an *injected* :class:`RankCrashedError` (the plan killed that
          rank) is tolerated as long as at least one rank survived —
          dead ranks simply return ``None`` — so fault-tolerant rank
          functions can recover and still deliver results.
        """
        self._reset_run_state()
        comms = [SimComm(self, r) for r in range(self.processes)]
        self._comms = comms
        results: List[Any] = [None] * self.processes
        errors: List[Optional[BaseException]] = [None] * self.processes

        def runner(r: int) -> None:
            try:
                results[r] = fn(comms[r], *args)
            except BaseException as exc:  # lint: ignore[RPR003] — re-raised below
                errors[r] = exc
                # Mark the death and break the collective barriers so
                # peers fail fast instead of timing out.
                self._mark_dead(r)

        threads = [threading.Thread(target=runner, args=(r,),
                                    name=f"simmpi-rank{r}", daemon=True)
                   for r in range(self.processes)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        self._raise_run_errors(errors)
        with self._state_lock:
            events = sorted(self._fault_events,
                            key=lambda e: (e.t, e.rank, e.kind))
            recoveries = self._recoveries
        stats = RunStats(processes=self.processes,
                         threads=self.threads_per_rank,
                         ranks=[c.stats for c in comms],
                         faults=len(events),
                         recoveries=recoveries,
                         fault_events=events)
        return results, stats

    def _raise_run_errors(self,
                          errors: List[Optional[BaseException]]) -> None:
        """Re-raise the most informative rank error (see :meth:`run`)."""
        injected = self.fault_plan is not None

        def tolerated(r: int, exc: BaseException) -> bool:
            return (injected and isinstance(exc, RankCrashedError)
                    and exc.rank == r)

        real = [e for e in errors
                if e is not None
                and not isinstance(e, (FaultError,
                                       threading.BrokenBarrierError))]
        if real:
            raise real[0]
        surfaced = [e for r, e in enumerate(errors)
                    if e is not None and not tolerated(r, e)]
        # Typed fault errors carry rank/op/clock context; a raw
        # BrokenBarrierError can only come from user code.
        surfaced.sort(key=lambda e: isinstance(
            e, threading.BrokenBarrierError))
        if surfaced:
            raise surfaced[0]
        if errors and all(e is not None for e in errors):
            raise NoSurvivorsError(sorted(range(len(errors))))
