"""Virtual-time simulated cluster of multicores.

This container has one physical core and no MPI installation, so the
paper's hardware substrate (Lonestar4: 12 nodes × 12 Westmere cores,
InfiniBand fat-tree, MVAPICH2 + cilk++) is *simulated*:

* :mod:`repro.cluster.machine` — the machine model (paper Table I);
* :mod:`repro.cluster.costmodel` — operation → seconds conversion,
  cache-tier effects, memory-pressure penalties and Grama-style
  collective communication formulas;
* :mod:`repro.cluster.simmpi` — a thread-backed simulated MPI with
  virtual per-rank clocks and real data movement;
* :mod:`repro.cluster.workstealing` — a discrete-event simulator of the
  cilk++ randomized work-stealing scheduler;
* :mod:`repro.cluster.hybrid` — P ranks × p threads composition;
* :mod:`repro.cluster.trace` — per-run statistics records.

All *numerical* results flowing through this layer are real; only the
reported wall-clock seconds are virtual.
"""

from repro.cluster.machine import MachineSpec, NodeSpec, NetworkSpec, lonestar4
from repro.cluster.costmodel import CostModel
from repro.cluster.simmpi import SimCluster, SimComm
from repro.cluster.workstealing import WorkStealingSim, StealStats
from repro.cluster.cross_rank import CrossRankStealingSim, CrossRankStats
from repro.cluster.trace import PhaseSlice, RankStats, RunStats

__all__ = [
    "PhaseSlice",
    "CrossRankStealingSim",
    "CrossRankStats",
    "MachineSpec",
    "NodeSpec",
    "NetworkSpec",
    "lonestar4",
    "CostModel",
    "SimCluster",
    "SimComm",
    "WorkStealingSim",
    "StealStats",
    "RankStats",
    "RunStats",
]
