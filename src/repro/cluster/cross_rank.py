"""Cross-rank (inter-node) work stealing — the paper's future work.

The paper's conclusion: "we are planning to incorporate explicit
dynamic load balancing techniques such as work-stealing to improve the
performance even further".  Intra-node stealing is cheap (shared
memory); *inter-node* stealing costs a round trip over the interconnect
per steal, so whether it pays depends on how imbalanced the static
division is.

:class:`CrossRankStealingSim` extends the discrete-event scheduler of
:mod:`repro.cluster.workstealing` to a two-level topology: workers
belong to ranks; a worker steals preferentially inside its own rank
(same overhead as cilk++) and falls back to a random remote rank with
an RDMA-ish latency.  Each rank's deque starts with its static leaf
segment, so the simulation answers exactly the paper's question: *how
much of the static division's imbalance can stealing claw back, at what
communication price?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import record_steal_stats


@dataclass(frozen=True)
class CrossRankStats:
    """Outcome of one cross-rank stealing simulation."""

    makespan: float
    total_work: float
    intra_steals: int
    inter_steals: int
    failed_steals: int

    @property
    def steals(self) -> int:
        return self.intra_steals + self.inter_steals


class CrossRankStealingSim:
    """Two-level randomized work stealing over P ranks × p workers.

    Parameters
    ----------
    ranks, threads_per_rank:
        Topology: ``ranks × threads_per_rank`` workers.
    task_overhead, intra_steal_overhead:
        Per-grain execution and same-rank steal costs (cilk++-like).
    inter_steal_overhead:
        Cost of stealing from a *remote* rank (one interconnect round
        trip; ~tens of µs on the paper's InfiniBand).
    remote_attempt_fraction:
        Probability an idle worker tries a remote victim instead of a
        local one (locality-biased stealing).
    """

    def __init__(self,
                 ranks: int,
                 threads_per_rank: int,
                 task_overhead: float = 9.0e-8,
                 intra_steal_overhead: float = 6.0e-7,
                 inter_steal_overhead: float = 2.5e-5,
                 remote_attempt_fraction: float = 0.25,
                 grain: Optional[int] = None,
                 seed: int = 0) -> None:
        if ranks < 1 or threads_per_rank < 1:
            raise ValueError("ranks and threads_per_rank must be >= 1")
        if not 0.0 <= remote_attempt_fraction <= 1.0:
            raise ValueError("remote_attempt_fraction must be in [0, 1]")
        self.ranks = ranks
        self.threads_per_rank = threads_per_rank
        self.task_overhead = task_overhead
        self.intra_steal_overhead = intra_steal_overhead
        self.inter_steal_overhead = inter_steal_overhead
        self.remote_attempt_fraction = remote_attempt_fraction
        self.grain = grain
        self.seed = seed

    def run(self, task_costs: Sequence[float],
            segment_bounds: Sequence[int]) -> CrossRankStats:
        """Simulate executing ``task_costs``; rank *r* initially owns
        tasks ``segment_bounds[r]:segment_bounds[r+1]``."""
        costs = np.asarray(task_costs, dtype=np.float64)
        if np.any(costs < 0):
            raise ValueError("task costs must be nonnegative")
        bounds = np.asarray(segment_bounds, dtype=np.int64)
        if len(bounds) != self.ranks + 1 or bounds[0] != 0 \
                or bounds[-1] != len(costs):
            raise ValueError("segment_bounds must cover all tasks with "
                             "one segment per rank")
        n = len(costs)
        total = float(costs.sum())
        P, p = self.ranks, self.threads_per_rank
        W = P * p
        if n == 0:
            return CrossRankStats(0.0, 0.0, 0, 0, 0)

        prefix = np.concatenate([[0.0], np.cumsum(costs)])
        grain = self.grain or max(1, n // (64 * W))
        rng = np.random.default_rng(self.seed)

        # Worker w belongs to rank w // p; rank r's first worker seeds
        # the deque with the rank's whole segment.
        deques: List[List[Tuple[int, int, float]]] = [[] for _ in range(W)]
        for r in range(P):
            if bounds[r + 1] > bounds[r]:
                deques[r * p].append((int(bounds[r]),
                                      int(bounds[r + 1]), 0.0))
        clocks = np.zeros(W)
        remaining = n
        intra = inter = failed = 0

        while remaining > 0:
            w = int(np.argmin(clocks))
            dq = deques[w]
            if dq:
                lo, hi, _ready = dq.pop()
                while hi - lo > grain:
                    mid = (lo + hi) // 2
                    dq.append((mid, hi, clocks[w]))
                    hi = mid
                clocks[w] += (prefix[hi] - prefix[lo]) + self.task_overhead
                remaining -= hi - lo
                continue
            my_rank = w // p
            go_remote = rng.random() < self.remote_attempt_fraction
            if go_remote and P > 1:
                victim_rank = int(rng.integers(0, P - 1))
                if victim_rank >= my_rank:
                    victim_rank += 1
                victim = victim_rank * p + int(rng.integers(0, p))
                overhead = self.inter_steal_overhead
                is_remote = True
            else:
                victim = my_rank * p + int(rng.integers(0, p))
                overhead = self.intra_steal_overhead
                is_remote = False
            clocks[w] += overhead
            if victim != w and deques[victim]:
                lo, hi, ready = deques[victim].pop(0)
                clocks[w] = max(clocks[w], ready)
                deques[w].append((lo, hi, clocks[w]))
                if is_remote:
                    inter += 1
                else:
                    intra += 1
            else:
                failed += 1
                ahead = clocks[clocks > clocks[w]]
                if len(ahead):
                    clocks[w] = max(clocks[w], float(ahead.min()))

        record_steal_stats(intra + inter, failed, scope="cross")
        return CrossRankStats(
            makespan=float(clocks.max()),
            total_work=total,
            intra_steals=intra,
            inter_steals=inter,
            failed_steals=failed,
        )
