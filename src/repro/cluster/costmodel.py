"""Cost model: operation counts → virtual seconds.

The traversals in :mod:`repro.core` report exactly what they computed
(frontier visits, far-field evaluations, exact pair interactions).
This module prices those operations on a :class:`MachineSpec`:

* **Computation** — flop counts per operation divided by the per-core
  sustained rate, scaled by a *cache factor* that depends on the
  per-core working set (the paper's §V-B observation that smaller
  per-core segments fit in cache and run faster).
* **Memory pressure** — when the replicated per-process data blows past
  a node's RAM (the paper's OCT_MPI vs OCT_MPI+CILK memory argument,
  8.2 GB vs 1.4 GB on BTV), a paging penalty kicks in.
* **Communication** — Grama et al. collective formulas with a two-level
  (intra-node, inter-node) decomposition, so runs with many ranks per
  node pay more than hybrid runs with few.

Flop weights below were calibrated once against the real vectorised
kernels in this repository (see ``tests/cluster/test_costmodel.py`` for
the sanity bounds); absolute seconds are *modelled*, ratios are what the
benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from repro.cluster.machine import MachineSpec, lonestar4

#: Flops per exact Born interaction (diff, dot, r², r⁶, divide, FMA).
FLOPS_EXACT_BORN = 24.0
#: Flops per far-field Born evaluation (one pseudo-particle term).
FLOPS_FAR_BORN = 30.0
#: Flops per exact energy pair (f_GB: exp, sqrt, divide ≈ 40 flops).
FLOPS_EXACT_EPOL = 40.0
#: Flops per far-field energy bucket term (M_ε² of these per far pair).
FLOPS_FAR_EPOL_PER_BUCKET2 = 42.0
#: Flops per frontier visit (MAC test, bookkeeping).
FLOPS_VISIT = 18.0
#: Flops per atom for the push phase (prefix add + cube root).
FLOPS_PUSH_PER_ATOM = 14.0
#: Speedup factor of approximate math (paper §V-E: ×1.42).
APPROX_MATH_SPEEDUP = 1.42


@dataclass(frozen=True)
class CostModel:
    """Prices operations on a machine."""

    machine: MachineSpec = field(default_factory=lonestar4)
    #: Multiplier applied on top of the flop model to absorb constant
    #: factors of the paper's C++ implementation (instruction mix,
    #: memory stalls at perfect cache residence).
    base_cpi_factor: float = 2.0

    # -- computation -------------------------------------------------------

    def seconds_per_flop(self) -> float:
        return self.base_cpi_factor / self.machine.node.flops_per_second

    def cache_factor(self, working_set_bytes: float,
                     cores_sharing_socket: int = 1) -> float:
        """Slowdown for working sets spilling down the cache hierarchy.

        Piecewise-smooth: 1.0 within L2, rising to ~1.25 at the L3
        share, ~1.6 when the set spills to DRAM.  This reproduces the
        paper's observation that larger per-core segments (fewer cores)
        run disproportionately slower.
        """
        node = self.machine.node
        l3_share = node.l3_bytes / max(1, cores_sharing_socket)
        if working_set_bytes <= node.l2_bytes:
            return 1.0
        if working_set_bytes <= l3_share:
            # log-interpolate 1.0 → 1.25 between L2 and the L3 share
            t = (math.log(working_set_bytes / node.l2_bytes)
                 / max(1e-9, math.log(l3_share / node.l2_bytes)))
            return 1.0 + 0.25 * t
        # L3 → DRAM: 1.25 → 1.6 over two decades
        t = min(1.0, math.log10(working_set_bytes / l3_share) / 2.0)
        return 1.25 + 0.35 * t

    def memory_pressure_factor(self, node_bytes: float) -> float:
        """Paging penalty as a node's resident set approaches/passes RAM.

        1.0 below 80 % of RAM, then rising steeply (10× at 2× RAM) —
        the regime where the paper's Tinker/GBr⁶ runs die and OCT_MPI
        starts losing to OCT_MPI+CILK.
        """
        ram = self.machine.node.ram_bytes
        x = node_bytes / ram
        if x <= 0.8:
            return 1.0
        return 1.0 + 9.0 * ((x - 0.8) / 1.2) ** 2

    def born_compute_seconds(self, visits: float, far: float, exact: float,
                             approx_math: bool = False,
                             cache_factor: float = 1.0) -> float:
        flops = (FLOPS_VISIT * visits + FLOPS_FAR_BORN * far
                 + FLOPS_EXACT_BORN * exact)
        sec = flops * self.seconds_per_flop() * cache_factor
        return sec / (APPROX_MATH_SPEEDUP if approx_math else 1.0)

    def epol_compute_seconds(self, visits: float, far: float, exact: float,
                             nbuckets: int,
                             approx_math: bool = False,
                             cache_factor: float = 1.0) -> float:
        flops = (FLOPS_VISIT * visits
                 + FLOPS_FAR_EPOL_PER_BUCKET2 * far * nbuckets * nbuckets
                 + FLOPS_EXACT_EPOL * exact)
        sec = flops * self.seconds_per_flop() * cache_factor
        return sec / (APPROX_MATH_SPEEDUP if approx_math else 1.0)

    def push_compute_seconds(self, atoms: float, nodes_visited: float
                             ) -> float:
        flops = FLOPS_PUSH_PER_ATOM * atoms + FLOPS_VISIT * nodes_visited
        return flops * self.seconds_per_flop()

    # -- communication -----------------------------------------------------

    def _two_level(self, processes: int, threads: int):
        """(ranks per node, nodes used) for a placement."""
        if processes == 1:
            return 1, 1
        rpn = min(processes,
                  max(1, self.machine.node.cores // threads))
        nodes = -(-processes // rpn)
        return rpn, nodes

    def allreduce_seconds(self, words: float, processes: int,
                          threads: int = 1) -> float:
        """Hierarchical allreduce: reduce within nodes, then across.

        Each level costs ``2(t_s·log2 k + t_w·m·(k−1)/k)`` (reduce-scatter
        + allgather, Grama Table 4.1).
        """
        if processes <= 1:
            return 0.0
        net = self.machine.network
        rpn, nodes = self._two_level(processes, threads)

        def level(k: int, ts: float, tw: float) -> float:
            if k <= 1:
                return 0.0
            return 2.0 * (ts * math.log2(k) + tw * words * (k - 1) / k)

        return (level(rpn, net.ts_intra, net.tw_intra)
                + level(nodes, net.ts_inter, net.tw_inter))

    def allgather_seconds(self, words_per_rank: float, processes: int,
                          threads: int = 1) -> float:
        """Hierarchical allgather; total payload grows with P."""
        if processes <= 1:
            return 0.0
        net = self.machine.network
        rpn, nodes = self._two_level(processes, threads)
        total = words_per_rank * processes

        def level(k: int, ts: float, tw: float) -> float:
            if k <= 1:
                return 0.0
            return ts * math.log2(k) + tw * total * (k - 1) / k

        return (level(rpn, net.ts_intra, net.tw_intra)
                + level(nodes, net.ts_inter, net.tw_inter))

    def gather_seconds(self, words_per_rank: float, processes: int,
                       threads: int = 1) -> float:
        """Tree gather to the master rank.

        Like :meth:`allgather_seconds` the total payload grows with P,
        but data only flows *toward* the root: within the root's level
        the full volume converges on one endpoint (``tw·m·(k−1)``
        without the allgather's broadcast-back), so a gather is priced
        below the allgather that used to stand in for it.
        """
        if processes <= 1:
            return 0.0
        net = self.machine.network
        rpn, nodes = self._two_level(processes, threads)

        def level(k: int, ts: float, tw: float, words: float) -> float:
            if k <= 1:
                return 0.0
            return ts * math.log2(k) + tw * words * (k - 1) / k

        # Intra-node gathers move one node's worth; the inter-node
        # stage funnels every node's aggregate to the root's node.
        return (level(rpn, net.ts_intra, net.tw_intra,
                      words_per_rank * rpn)
                + level(nodes, net.ts_inter, net.tw_inter,
                        words_per_rank * processes))

    def reduce_seconds(self, words: float, processes: int,
                       threads: int = 1) -> float:
        """Tree reduce to the master rank."""
        if processes <= 1:
            return 0.0
        net = self.machine.network
        rpn, nodes = self._two_level(processes, threads)

        def level(k: int, ts: float, tw: float) -> float:
            if k <= 1:
                return 0.0
            return (ts + tw * words) * math.log2(k)

        return (level(rpn, net.ts_intra, net.tw_intra)
                + level(nodes, net.ts_inter, net.tw_inter))

    def point_to_point_seconds(self, words: float,
                               same_node: bool) -> float:
        net = self.machine.network
        if same_node:
            return net.ts_intra + net.tw_intra * words
        return net.ts_inter + net.tw_inter * words

    # -- scheduler overheads -------------------------------------------

    #: Per-spawned-task overhead of the cilk++ scheduler (s).
    cilk_task_overhead: float = 9.0e-8
    #: Cost of one (possibly failed) steal attempt (s).
    cilk_steal_overhead: float = 6.0e-7
    #: One-time cost per phase of crossing the MPI↔cilk boundary (s)
    #: (the paper's "additional overhead of interfacing cilk++ and MPI").
    hybrid_interface_overhead: float = 1.4e-3
    #: Per-collective synchronisation/jitter overhead (s), multiplied by
    #: ``√P`` — OS-jitter amplification grows with the number of ranks
    #: that must rendezvous.  This is the process-count-dependent cost
    #: that makes pure MPI lose to OCT_CILK on small molecules (paper
    #: §V-C) and to the hybrid (6× fewer ranks) at high core counts
    #: (paper Fig. 6, crossover ≈ 180 cores).
    mpi_collective_sync_overhead: float = 1.8e-4
    #: Compute penalty for a single process whose worker threads span
    #: sockets *without* affinity pinning — cilk++ provides no thread
    #: affinity manager (paper §V-A), so OCT_CILK's 12 workers migrate
    #: across the two sockets and pay remote-socket traffic.  The
    #: hybrid's one-process-per-socket layout avoids this.
    numa_no_affinity_factor: float = 2.0

    def collective_sync_seconds(self, processes: int) -> float:
        """Sync/jitter overhead of one collective call at P ranks."""
        if processes <= 1:
            return 0.0
        return self.mpi_collective_sync_overhead * math.sqrt(processes)
