"""Per-run statistics records shared by the simulated runtimes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class PhaseSlice:
    """One contiguous interval of a rank's virtual timeline.

    ``kind`` is ``"comp"``, ``"comm"`` or ``"idle"``; comm slices carry
    the modelled payload size.  ``repro.obs.runstats_events`` turns a
    list of these into per-rank Chrome-trace tracks.
    """

    rank: int
    name: str
    kind: str
    t0: float
    t1: float
    payload_bytes: int = 0

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass
class RankStats:
    """Virtual-time accounting for one MPI rank."""

    rank: int
    comp_seconds: float = 0.0
    comm_seconds: float = 0.0
    idle_seconds: float = 0.0
    steals: int = 0
    #: Peak resident bytes attributed to this rank's process.
    memory_bytes: int = 0
    #: Portion of ``comp_seconds`` spent recomputing work lost to rank
    #: failures (charged by the fault-tolerant drivers).
    recovery_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.comp_seconds + self.comm_seconds + self.idle_seconds


@dataclass
class RunStats:
    """Virtual-time accounting for one distributed run."""

    processes: int
    threads: int
    ranks: List[RankStats] = field(default_factory=list)
    #: Free-form per-phase timings (seconds), e.g. {"born": ..,
    #: "allreduce": .., "push": .., "epol": .., "reduce": ..}.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Per-rank virtual timeline (``simulate_fig4`` populates this);
    #: empty for runtimes that only track aggregates.
    timeline: List[PhaseSlice] = field(default_factory=list)
    #: Number of injected faults that actually fired during the run.
    faults: int = 0
    #: Communicator shrink operations the survivors performed.
    recoveries: int = 0
    #: The fired faults themselves (``repro.faults.plan.FaultEvent``
    #: records, sorted by virtual time) — exported as trace instants.
    fault_events: List[Any] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        """Completion time = the slowest rank."""
        if not self.ranks:
            return float(sum(self.phases.values()))
        return max(r.total_seconds for r in self.ranks)

    @property
    def total_cores(self) -> int:
        return self.processes * self.threads

    def comp_seconds(self) -> float:
        return max((r.comp_seconds for r in self.ranks), default=0.0)

    def comm_seconds(self) -> float:
        return max((r.comm_seconds for r in self.ranks), default=0.0)

    def idle_seconds(self) -> float:
        return max((r.idle_seconds for r in self.ranks), default=0.0)

    def steals(self) -> int:
        """Total successful steals across all ranks."""
        return sum(r.steals for r in self.ranks)

    def recovery_seconds(self) -> float:
        """Total virtual time spent recomputing work lost to failures."""
        return sum(r.recovery_seconds for r in self.ranks)

    def memory_per_process(self) -> int:
        return max((r.memory_bytes for r in self.ranks), default=0)

    def memory_per_node(self, ranks_per_node: Optional[int] = None) -> int:
        """Replication cost: per-process bytes × ranks packed per node."""
        rpn = ranks_per_node if ranks_per_node is not None else self.processes
        return self.memory_per_process() * min(rpn, self.processes)

    def summary(self) -> str:
        text = (f"P={self.processes} p={self.threads} "
                f"wall={self.wall_seconds:.4f}s "
                f"comp={self.comp_seconds():.4f}s "
                f"comm={self.comm_seconds():.4f}s "
                f"idle={self.idle_seconds():.4f}s "
                f"steals={self.steals()} "
                f"mem/proc={self.memory_per_process() / 1e6:.1f}MB")
        if self.faults or self.recoveries:
            text += (f" faults={self.faults} recoveries={self.recoveries} "
                     f"recovery={self.recovery_seconds():.4f}s")
        return text
