"""Discrete-event simulator of the cilk++ randomized work-stealing
scheduler (Blumofe & Leiserson).

The paper's intra-node load balancing is "implicit dynamic load
balancing" via cilk++: each worker owns a double-ended queue, pushes
spawned work to the *bottom*, pops its own work from the bottom, and an
idle worker steals from the *top* of a uniformly random victim's deque
(the oldest — i.e. largest — outstanding task).

The solvers' intra-rank work is a parallel loop over leaf tasks with
known per-task costs.  cilk++ executes such a loop by lazy binary
splitting: a worker holding a range ``[lo, hi)`` of more than ``grain``
tasks pushes the right half and continues with the left.  This
simulator reproduces that behaviour event-by-event on virtual worker
clocks, so the *schedule* (who steals what and when, the final
makespan) is a faithful sample of the real scheduler's distribution —
seeded, hence reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_tracer, record_steal_stats


@dataclass(frozen=True)
class StealStats:
    """Outcome of one simulated parallel region."""

    makespan: float
    total_work: float
    per_worker_busy: np.ndarray
    steals: int
    failed_steals: int

    @property
    def utilization(self) -> float:
        """busy / (p × makespan) ∈ (0, 1]."""
        p = len(self.per_worker_busy)
        if self.makespan <= 0.0:
            return 1.0
        return float(self.per_worker_busy.sum() / (p * self.makespan))


class WorkStealingSim:
    """Simulates ``p`` workers executing a task range with given costs.

    Parameters
    ----------
    workers:
        Number of worker threads ``p``.
    task_overhead:
        Virtual seconds charged per executed grain (spawn/bookkeeping).
    steal_overhead:
        Virtual seconds charged per steal *attempt* (successful or not).
    grain:
        Maximum tasks executed as one unit without further splitting;
        ``None`` picks ``max(1, n / (64p))`` — small enough that the
        end-of-loop tail costs ~1 grain per worker, large enough to
        amortise per-task overhead (cilk++'s auto-grainsize heuristic).
    seed:
        Victim-selection RNG seed.
    """

    def __init__(self, workers: int,
                 task_overhead: float = 9.0e-8,
                 steal_overhead: float = 6.0e-7,
                 grain: Optional[int] = None,
                 seed: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.task_overhead = task_overhead
        self.steal_overhead = steal_overhead
        self.grain = grain
        self.seed = seed

    def run(self, task_costs: Sequence[float]) -> StealStats:
        """Simulate executing ``task_costs`` (virtual seconds each)."""
        costs = np.asarray(task_costs, dtype=np.float64)
        if np.any(costs < 0):
            raise ValueError("task costs must be nonnegative")
        n = len(costs)
        total = float(costs.sum())
        p = self.workers
        if n == 0:
            return StealStats(0.0, 0.0, np.zeros(p), 0, 0)
        if p == 1:
            busy = total + n * self.task_overhead
            return StealStats(busy, total, np.array([busy]), 0, 0)

        prefix = np.concatenate([[0.0], np.cumsum(costs)])

        def range_cost(lo: int, hi: int) -> float:
            return float(prefix[hi] - prefix[lo])

        grain = self.grain or max(1, n // (64 * p))
        rng = np.random.default_rng(self.seed)
        tracer = get_tracer()
        emit_events = tracer.enabled

        # Deques of (lo, hi, ready_time) ranges; bottom = end of list,
        # top = index 0.  ``ready_time`` is the owner's virtual clock at
        # push time: a thief cannot execute work before it existed.
        deques: List[List[Tuple[int, int, float]]] = [[] for _ in range(p)]
        deques[0].append((0, n, 0.0))
        clocks = np.zeros(p)
        busy = np.zeros(p)
        steals = 0
        failed = 0
        remaining = n

        while remaining > 0:
            w = int(np.argmin(clocks))
            dq = deques[w]
            if dq:
                lo, hi, _ready = dq.pop()  # pop bottom (own work, newest)
                while hi - lo > grain:
                    mid = (lo + hi) // 2
                    dq.append((mid, hi, clocks[w]))  # right half to bottom
                    hi = mid
                dt = range_cost(lo, hi) + self.task_overhead
                clocks[w] += dt
                busy[w] += dt
                remaining -= hi - lo
            else:
                # Steal attempt from a random victim's top.
                clocks[w] += self.steal_overhead
                victim = int(rng.integers(0, p))
                if victim != w and deques[victim]:
                    lo, hi, ready = deques[victim].pop(0)  # take top
                    # Work cannot run before it was pushed.
                    clocks[w] = max(clocks[w], ready)
                    deques[w].append((lo, hi, clocks[w]))
                    steals += 1
                    if emit_events:
                        tracer.virtual_instant(
                            "steal", "workstealing", w, float(clocks[w]),
                            victim=victim, tasks=hi - lo)
                else:
                    failed += 1
                    if emit_events:
                        tracer.virtual_instant(
                            "failed_steal", "workstealing", w,
                            float(clocks[w]), victim=victim)
                    # An idle worker with nothing to steal waits until
                    # someone is ahead of it in virtual time.
                    ahead = clocks[clocks > clocks[w]]
                    if len(ahead):
                        clocks[w] = max(clocks[w], float(ahead.min()))

        record_steal_stats(steals, failed, scope="intra")
        return StealStats(
            makespan=float(clocks.max()),
            total_work=total,
            per_worker_busy=busy,
            steals=steals,
            failed_steals=failed,
        )

    def makespan(self, task_costs: Sequence[float]) -> float:
        """Convenience: just the virtual completion time."""
        return self.run(task_costs).makespan


def static_block_makespan(task_costs: Sequence[float], workers: int
                          ) -> float:
    """Makespan of a *static* contiguous block partition (no stealing).

    The ablation baseline for dynamic intra-node balancing: tasks are
    split into ``workers`` contiguous blocks of equal task *count* and
    each worker runs one block; the makespan is the largest block sum.
    """
    costs = np.asarray(task_costs, dtype=np.float64)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if len(costs) == 0:
        return 0.0
    blocks = np.array_split(costs, workers)
    return float(max(b.sum() for b in blocks))
