"""Typed diagnostics hierarchy for the guard layer.

Every error the numerical pipeline surfaces to user code is a
:class:`DiagnosticError` naming *where* it happened (``phase``), *what*
was wrong (``indices`` of the offending atoms / leaves / lines) and —
where one exists — a concrete fix (``hint``).  The concrete classes
keep their historical bases (``ValueError`` for format and numeric
problems, ``RuntimeError`` for checkpoint problems) so pre-guard
callers written against the bare built-ins keep working.

Lint rule RPR007 (``repro.lint``) enforces adoption: code under
``repro/core`` and ``repro/molecules`` may not raise a bare
``ValueError``/``RuntimeError`` — it must raise one of these (or carry
a documented ``# lint: ignore[RPR007]`` suppression).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "DiagnosticError",
    "MoleculeFormatError",
    "DegenerateGeometryError",
    "NumericalGuardError",
    "WatchdogBreachError",
    "CheckpointError",
    "format_indices",
]

#: How many offending indices an error message spells out before "…".
_MAX_SHOWN = 8


def format_indices(indices: Sequence[int]) -> str:
    """Render an index list compactly (``[3, 7, 9, … 212 total]``)."""
    idx = list(indices)
    if not idx:
        return "[]"
    shown = ", ".join(str(int(i)) for i in idx[:_MAX_SHOWN])
    if len(idx) > _MAX_SHOWN:
        return f"[{shown}, … {len(idx)} total]"
    return f"[{shown}]"


class DiagnosticError(Exception):
    """Base of every typed diagnostic the guard layer raises.

    Parameters
    ----------
    message:
        What is wrong, in one sentence.
    phase:
        Pipeline phase that detected the problem (``"preflight"``,
        ``"sample_surface"``, ``"born"``, ``"push"``, ``"epol"``,
        ``"watchdog"``, ``"checkpoint"``).
    indices:
        Offending atom / leaf / quadrature-point / line indices.
    hint:
        A concrete, actionable fix when one exists.
    """

    def __init__(self, message: str, *,
                 phase: Optional[str] = None,
                 indices: Sequence[int] = (),
                 hint: str = "") -> None:
        self.phase = phase
        self.indices = tuple(int(i) for i in indices)
        self.hint = hint
        parts = [message]
        if phase:
            parts[0] = f"[{phase}] {parts[0]}"
        if self.indices:
            parts.append(f"offending indices {format_indices(self.indices)}")
        if hint:
            parts.append(f"hint: {hint}")
        super().__init__("; ".join(parts))


class MoleculeFormatError(DiagnosticError, ValueError):
    """A molecule file / array set is structurally malformed.

    Subclasses ``ValueError`` so callers written against the pre-guard
    readers (``pdbio``) and constructors (``Molecule``) keep working.
    ``line`` and ``field`` carry file context where it exists.
    """

    def __init__(self, message: str, *,
                 line: Optional[int] = None,
                 field: Optional[str] = None,
                 phase: str = "preflight",
                 indices: Sequence[int] = (),
                 hint: str = "") -> None:
        self.line = line
        self.field = field
        where = ""
        if line is not None:
            where = f" (line {line}" + (f", field {field!r})" if field
                                        else ")")
        elif field is not None:
            where = f" (field {field!r})"
        super().__init__(message + where, phase=phase, indices=indices,
                         hint=hint)


class DegenerateGeometryError(DiagnosticError, ValueError):
    """Geometry the solvers cannot handle: coincident atoms, zero or
    negative radii, a quadrature point on an atom centre, an empty
    surface."""

    def __init__(self, message: str, *,
                 phase: str = "preflight",
                 indices: Sequence[int] = (),
                 hint: str = "") -> None:
        super().__init__(message, phase=phase, indices=indices, hint=hint)


class NumericalGuardError(DiagnosticError, ValueError):
    """A runtime sentinel tripped: NaN/Inf in a phase output, negative
    or non-finite Born radii, an unfilled (NaN-sentinel) atom entry,
    an empty-bucket pathology."""

    def __init__(self, message: str, *,
                 phase: Optional[str] = None,
                 indices: Sequence[int] = (),
                 hint: str = "") -> None:
        super().__init__(message, phase=phase, indices=indices, hint=hint)


class WatchdogBreachError(NumericalGuardError):
    """The accuracy watchdog's exact cross-check disagreed with the
    approximate pipeline beyond tolerance.

    ``observed`` is the worst relative deviation seen, ``tolerance``
    the bound it broke.  :class:`repro.guard.solver.GuardedSolver`
    catches this and walks the degradation ladder; it only escapes to
    user code when every rung is exhausted.
    """

    def __init__(self, message: str, *,
                 observed: float = float("nan"),
                 tolerance: float = float("nan"),
                 phase: str = "watchdog",
                 indices: Sequence[int] = (),
                 hint: str = "") -> None:
        self.observed = float(observed)
        self.tolerance = float(tolerance)
        super().__init__(
            f"{message} (worst relative deviation {observed:.3e} > "
            f"tolerance {tolerance:.3e})",
            phase=phase, indices=indices, hint=hint)


class CheckpointError(DiagnosticError, RuntimeError):
    """A checkpoint file cannot be trusted: bad magic, unsupported
    schema version, checksum mismatch, truncated payload, or a
    fingerprint that belongs to a different molecule / configuration."""

    def __init__(self, message: str, *,
                 path: Optional[str] = None,
                 hint: str = "") -> None:
        self.path = path
        where = f" ({path})" if path else ""
        super().__init__(message + where, phase="checkpoint", hint=hint)
