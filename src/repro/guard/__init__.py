"""repro.guard — numerical guardrails, degradation, checkpoint/restart.

Five pieces (see ``docs/ROBUSTNESS.md`` for the full model):

* **Errors** (:mod:`repro.guard.errors`) — the typed
  :class:`DiagnosticError` hierarchy every guard raises, each naming
  the phase and the offending atom/leaf indices;
* **Checks** (:mod:`repro.guard.checks`) — preflight molecule/config
  validation (``repro doctor``) plus the runtime NaN/Inf and Born-radii
  sentinels wired into every solver phase;
* **Watchdog** (:mod:`repro.guard.watchdog`) — a seeded random atom
  subset cross-checked against the exact naive kernels, catching
  finite-but-wrong results the sentinels cannot see;
* **Checkpoints** (:mod:`repro.guard.checkpoint`) — versioned,
  checksummed, atomically-written snapshots with bitwise-identical
  resume (``repro solve --checkpoint DIR`` / ``--resume``);
* **GuardedSolver** (:mod:`repro.guard.solver`) — the orchestration:
  preflight → guarded phases → watchdog, walking the degradation
  ladder (retry → tighten ε → exact naive fallback) on any breach and
  recording every step as an ``obs`` event.

Attribute access is lazy (PEP 562): ``repro.molecules`` and
``repro.core`` raise the typed errors from :mod:`repro.guard.errors`,
so this package init must stay import-free or it would close a cycle
(molecule → guard → checks → molecule) during their import.
"""

from __future__ import annotations

import importlib

__all__ = [
    "DiagnosticError",
    "MoleculeFormatError",
    "DegenerateGeometryError",
    "NumericalGuardError",
    "WatchdogBreachError",
    "CheckpointError",
    "format_indices",
    "Diagnostic",
    "diagnose_molecule",
    "preflight",
    "check_finite",
    "check_positive",
    "check_born_radii",
    "WatchdogReport",
    "born_tolerance",
    "check_born_subset",
    "Checkpoint",
    "CheckpointStore",
    "SCHEMA_VERSION",
    "molecule_fingerprint",
    "GuardPolicy",
    "GuardEvent",
    "GuardedReport",
    "GuardedSolver",
    "WarmStart",
]

_HOMES = {
    "DiagnosticError": "repro.guard.errors",
    "MoleculeFormatError": "repro.guard.errors",
    "DegenerateGeometryError": "repro.guard.errors",
    "NumericalGuardError": "repro.guard.errors",
    "WatchdogBreachError": "repro.guard.errors",
    "CheckpointError": "repro.guard.errors",
    "format_indices": "repro.guard.errors",
    "Diagnostic": "repro.guard.checks",
    "diagnose_molecule": "repro.guard.checks",
    "preflight": "repro.guard.checks",
    "check_finite": "repro.guard.checks",
    "check_positive": "repro.guard.checks",
    "check_born_radii": "repro.guard.checks",
    "WatchdogReport": "repro.guard.watchdog",
    "born_tolerance": "repro.guard.watchdog",
    "check_born_subset": "repro.guard.watchdog",
    "Checkpoint": "repro.guard.checkpoint",
    "CheckpointStore": "repro.guard.checkpoint",
    "SCHEMA_VERSION": "repro.guard.checkpoint",
    "molecule_fingerprint": "repro.guard.checkpoint",
    "GuardPolicy": "repro.guard.solver",
    "GuardEvent": "repro.guard.solver",
    "GuardedReport": "repro.guard.solver",
    "GuardedSolver": "repro.guard.solver",
    "WarmStart": "repro.guard.solver",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.guard' has no attribute "
                             f"{name!r}")
    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
