"""Durable checkpoint/restart for long-running solves and MD blocks.

A checkpoint is one file per ``kind`` (``born.ckpt``, ``epol.ckpt``,
``md.ckpt``) inside a user-chosen directory:

.. code-block:: text

    REPRO-CKPT v1\\n                  ← magic + format version
    {…header JSON…}\\n                ← schema, kind, fingerprint,
                                        payload sha256 + length, meta
    <npz payload>                     ← the arrays, bit-exact float64

Three properties the solver relies on:

* **versioned** — the header carries ``schema``; a reader refuses
  versions it does not understand instead of misparsing them;
* **checksummed** — the payload's SHA-256 is stored in the header and
  verified on load, so a torn or bit-flipped file surfaces as a typed
  :class:`~repro.guard.errors.CheckpointError`, never as silent wrong
  physics;
* **atomic** — writes go to a temporary file in the same directory,
  are fsynced, and land via ``os.replace`` (plus a directory fsync),
  so a crash mid-write leaves either the old checkpoint or the new
  one, never a half-written hybrid.

Fingerprints bind a checkpoint to the run that wrote it: a SHA-256
over the molecule's arrays and the solver configuration.  ``--resume``
with a mismatched fingerprint is an error (you pointed the solver at
somebody else's checkpoint directory), not a silent recompute.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.fingerprint import molecule_fingerprint
from repro.guard.errors import CheckpointError

__all__ = ["Checkpoint", "CheckpointStore", "SCHEMA_VERSION",
           "molecule_fingerprint"]

#: Current checkpoint schema; bump on any layout change.
SCHEMA_VERSION = 1

_MAGIC = b"REPRO-CKPT v1\n"


@dataclass
class Checkpoint:
    """One loaded (and verified) checkpoint."""

    kind: str
    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION
    fingerprint: str = ""
    path: Optional[Path] = None


class CheckpointStore:
    """Directory of checkpoint files, one per ``kind``.

    ``fingerprint`` (optional) is verified against every load and
    stamped into every save; leave it empty to skip binding.
    """

    def __init__(self, directory: Union[str, Path],
                 fingerprint: str = "") -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, kind: str) -> Path:
        if not kind or any(c in kind for c in "/\\."):
            raise CheckpointError(f"invalid checkpoint kind {kind!r}")
        return self.directory / f"{kind}.ckpt"

    def has(self, kind: str) -> bool:
        return self.path_for(kind).exists()

    def delete(self, kind: str) -> None:
        try:
            self.path_for(kind).unlink()
        except FileNotFoundError:
            pass

    # -- write -------------------------------------------------------------

    def save(self, kind: str,
             arrays: Dict[str, np.ndarray],
             meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically write ``arrays`` + ``meta`` as ``<kind>.ckpt``."""
        payload_io = io.BytesIO()
        np.savez(payload_io,
                 **{k: np.asarray(v) for k, v in arrays.items()})
        payload = payload_io.getvalue()
        header = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": self.fingerprint,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "meta": meta or {},
        }
        blob = (_MAGIC
                + json.dumps(header, sort_keys=True).encode("utf-8")
                + b"\n" + payload)

        final = self.path_for(kind)
        tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
            self._fsync_directory()
        finally:
            if tmp.exists():  # a failed write never leaves turds behind
                tmp.unlink()
        self._observe("save", kind, final)
        return final

    def _fsync_directory(self) -> None:
        try:
            dfd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # platform without directory fds (Windows)
            return
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)

    # -- read --------------------------------------------------------------

    def load(self, kind: str) -> Checkpoint:
        """Load and verify ``<kind>.ckpt``; typed errors on any damage."""
        path = self.path_for(kind)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(f"no {kind!r} checkpoint",
                                  path=str(path)) from None
        if not blob.startswith(_MAGIC):
            raise CheckpointError(
                f"bad magic in {kind!r} checkpoint", path=str(path),
                hint="the file is not a repro checkpoint (or predates "
                     "the current format)")
        rest = blob[len(_MAGIC):]
        nl = rest.find(b"\n")
        if nl < 0:
            raise CheckpointError(f"truncated {kind!r} checkpoint header",
                                  path=str(path))
        try:
            header = json.loads(rest[:nl].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable {kind!r} checkpoint header: {exc}",
                path=str(path)) from exc
        schema = int(header.get("schema", -1))
        if schema != SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema {schema} "
                f"(this build reads {SCHEMA_VERSION})", path=str(path),
                hint="re-create the checkpoint with this version")
        payload = rest[nl + 1:]
        if len(payload) != int(header.get("payload_bytes", -1)):
            raise CheckpointError(
                f"{kind!r} checkpoint payload truncated "
                f"({len(payload)} of {header.get('payload_bytes')} bytes)",
                path=str(path))
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointError(
                f"{kind!r} checkpoint checksum mismatch (file corrupted)",
                path=str(path),
                hint="delete the checkpoint and re-run without --resume")
        theirs = header.get("fingerprint", "")
        if self.fingerprint and theirs and theirs != self.fingerprint:
            raise CheckpointError(
                f"{kind!r} checkpoint belongs to a different "
                f"molecule/configuration", path=str(path),
                hint="point --checkpoint at this run's own directory")
        with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
            arrays = {k: npz[k] for k in npz.files}
        self._observe("load", kind, path)
        return Checkpoint(kind=kind, arrays=arrays,
                          meta=header.get("meta", {}), schema=schema,
                          fingerprint=theirs, path=path)

    def try_load(self, kind: str) -> Optional[Checkpoint]:
        """Like :meth:`load` but ``None`` when the file does not exist.
        Damage (bad checksum, wrong schema/fingerprint) still raises."""
        if not self.has(kind):
            return None
        return self.load(kind)

    # -- observability -----------------------------------------------------

    @staticmethod
    def _observe(action: str, kind: str, path: Path) -> None:
        import repro.obs as obs
        if not obs.is_enabled():
            return
        obs.instant(f"checkpoint.{action}", cat="guard", kind=kind,
                    path=str(path))
        obs.registry.counter(f"checkpoint.{action}s",
                             "checkpoint files written/read").inc()
