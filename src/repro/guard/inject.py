"""Applying :class:`repro.faults.plan.DataCorruption` specs to arrays.

The corruption faults live in :mod:`repro.faults.plan` next to the
cluster faults; this module is the *mechanism* — a deterministic,
seeded transformation of a named array that
:class:`repro.guard.solver.GuardedSolver` applies at the phase
boundaries where the named arrays are produced.  Keeping the mechanism
here (and out of ``repro/core``) means the kernels stay pure: a run
without a fault plan never touches this code.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

__all__ = ["corruption_rng", "apply_corruption"]


def _name_seed(array_name: str) -> int:
    """Stable 64-bit seed component from an array name."""
    digest = hashlib.sha256(array_name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def corruption_rng(seed: int, array_name: str,
                   occurrence: int) -> np.random.Generator:
    """The generator a given (plan seed, array, occurrence) always gets."""
    return np.random.default_rng((seed, _name_seed(array_name), occurrence))


def apply_corruption(arr: Union[np.ndarray, float], spec,
                     seed: int, occurrence: int
                     ) -> Tuple[Union[np.ndarray, float], np.ndarray]:
    """Return a corrupted *copy* of ``arr`` plus the indices hit.

    ``spec`` is a :class:`repro.faults.plan.DataCorruption` (duck-typed:
    ``kind``, ``fraction``, ``factor``, ``array``).  Scalars are treated
    as one-element arrays (the whole value is hit).
    """
    scalar = np.isscalar(arr) or getattr(arr, "ndim", 1) == 0
    a = np.atleast_1d(np.array(arr, dtype=np.float64, copy=True))
    rng = corruption_rng(seed, spec.array, occurrence)
    n = max(1, int(round(spec.fraction * a.size)))
    idx = np.sort(rng.choice(a.size, size=min(n, a.size), replace=False))
    flat = a.reshape(-1)
    if spec.kind == "nan":
        flat[idx] = np.nan
    elif spec.kind == "scale":
        flat[idx] *= spec.factor
    else:  # pragma: no cover — DataCorruption validates kind
        raise ValueError(f"unknown corruption kind {spec.kind!r}")
    if scalar:
        return float(a.reshape(-1)[0]), idx
    return a, idx
