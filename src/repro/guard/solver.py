"""GuardedSolver: the full guard pipeline around :class:`PolarizationSolver`.

Order of operations for one solve:

1. **preflight** — typed validation of the molecule (and surface) before
   any kernel runs;
2. **phases with sentinels** — Born pass then energy pass, each output
   scanned for NaN/Inf / non-positive radii under ``np.errstate``;
3. **accuracy watchdog** — a seeded subset of atoms cross-checked
   against the exact naive kernel;
4. **degradation ladder** on any sentinel or watchdog breach::

       attempt    →  retry (same ε)  →  tighten ε one notch  →  naive

   A retry clears transient corruption (the work is simply redone); a
   tighten clears a genuine approximation breach; the naive rung is
   exact and consults none of the approximate machinery.  Every step
   down the ladder is recorded in :attr:`GuardedSolver.events`, as an
   ``obs`` instant (category ``guard``) and in the ``guard.*``
   counters, so a degraded run is visible in traces and metrics — the
   solver degrades gracefully but never silently.

Checkpointing (opt-in via a :class:`~repro.guard.checkpoint.
CheckpointStore`): the post-Born radii and the post-energy state are
snapshotted after each phase; ``resume=True`` restarts from the newest
valid snapshot and reproduces the uninterrupted energy bitwise (the
stored float64 arrays are exact, and the remaining phases are
deterministic functions of them).

:class:`~repro.faults.plan.DataCorruption` specs in a
:class:`~repro.faults.plan.FaultPlan` are injected at the named phase
boundaries, which is how ``repro chaos`` proves the guards catch what
they claim to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.solver import METHODS, PolarizationSolver
from repro.guard.checkpoint import CheckpointStore, molecule_fingerprint
from repro.guard.checks import (
    Diagnostic,
    check_born_radii,
    check_finite,
    preflight,
)
from repro.guard.errors import (
    DegenerateGeometryError,
    DiagnosticError,
    NumericalGuardError,
)
from repro.guard.inject import apply_corruption
from repro.guard.watchdog import (
    DEFAULT_SAMPLES,
    WatchdogReport,
    check_born_subset,
)
from repro.molecules.molecule import Molecule
from repro.molecules.surface import sample_surface

__all__ = ["GuardPolicy", "GuardEvent", "GuardedReport", "GuardedSolver",
           "WarmStart"]


@dataclass(frozen=True)
class WarmStart:
    """Artifacts a caller already holds for this exact molecule + params.

    ``repro.serve`` passes cached octrees and Born radii here so a warm
    repeat solve skips the corresponding construction phases.  The
    trees depend only on the point sets and ``leaf_size``/``max_depth``
    — which the degradation ladder never changes — so they are adopted
    on every non-naive rung; warm Born radii are only trusted on the
    *first* attempt and still pass through the sentinels and the
    accuracy watchdog, so a corrupt cache entry degrades into a fresh
    recompute instead of corrupting the result.
    """

    atoms_tree: Optional[object] = None
    q_tree: Optional[object] = None
    born_radii: Optional[np.ndarray] = None


@dataclass(frozen=True)
class GuardPolicy:
    """Knobs of the guard pipeline (defaults are production settings)."""

    preflight: bool = True
    sentinels: bool = True
    watchdog: bool = True
    watchdog_samples: int = DEFAULT_SAMPLES
    watchdog_seed: int = 0
    #: ``None`` → derive from ``eps_born`` (see ``born_tolerance``).
    watchdog_tolerance: Optional[float] = None
    #: Same-rung retries before the ladder tightens ε.
    retries: int = 1
    #: One "notch": both ε are multiplied by this on the tighten rung.
    tighten_factor: float = 0.5
    #: Last rung: fall back to the exact O(M·N)/O(M²) naive path.
    allow_naive_fallback: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if not 0.0 < self.tighten_factor < 1.0:
            raise ValueError("tighten_factor must be in (0, 1)")
        if self.watchdog_samples < 1:
            raise ValueError("watchdog_samples must be >= 1")


@dataclass(frozen=True)
class GuardEvent:
    """One guard action (breach, degradation, injection, checkpoint)."""

    action: str   # "sentinel-breach" | "watchdog-breach" | "retry"
    #               | "tighten" | "fallback-naive" | "corruption"
    #               | "checkpoint-save" | "checkpoint-load"
    phase: str
    detail: str = ""


@dataclass
class GuardedReport:
    """Everything a guarded run produced."""

    energy: float
    born_radii: np.ndarray
    method: str                    # method of the rung that succeeded
    params: ApproxParams           # params of the rung that succeeded
    rung: str                      # "primary" | "retry-N" | "tighten" | "naive"
    attempts: int
    degradations: int
    events: List[GuardEvent] = field(default_factory=list)
    watchdog: Optional[WatchdogReport] = None
    preflight: List[Diagnostic] = field(default_factory=list)


#: Rung label of a clean first attempt.
_PRIMARY = "primary"


class GuardedSolver:
    """Guarded, degradable, checkpointable polarization solve.

    Parameters mirror :class:`PolarizationSolver` plus:

    policy:
        :class:`GuardPolicy` switches (None → defaults).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` whose
        ``DataCorruption`` specs are injected at phase boundaries.
    checkpoint:
        Optional :class:`CheckpointStore` (or a directory path) for
        durable post-phase snapshots.
    resume:
        Restart from the newest valid snapshot in ``checkpoint``.
    warm:
        Optional :class:`WarmStart` of artifacts already built for this
        exact molecule + params (cached octrees, Born radii).
    """

    def __init__(self,
                 molecule: Molecule,
                 params: ApproxParams = ApproxParams(),
                 method: str = "octree",
                 tau: float = TAU_WATER,
                 policy: Optional[GuardPolicy] = None,
                 fault_plan=None,
                 checkpoint=None,
                 resume: bool = False,
                 warm: Optional[WarmStart] = None) -> None:
        if method not in METHODS:
            raise ValueError(  # lint: ignore[RPR007] — arg check, not data
                f"method must be one of {METHODS}")
        if molecule.surface is None:
            molecule = sample_surface(molecule)
        self.molecule = molecule
        self.params = params
        self.method = method
        self.tau = tau
        self.policy = policy or GuardPolicy()
        self.fault_plan = fault_plan
        self.warm = warm
        self.events: List[GuardEvent] = []
        self._occurrences: dict = {}
        self._last_inner: Optional[PolarizationSolver] = None
        self._report: Optional[GuardedReport] = None
        self._preflight: List[Diagnostic] = []
        if self.policy.preflight:
            self._preflight = preflight(molecule, params)
        self.checkpoint: Optional[CheckpointStore] = None
        if checkpoint is not None:
            store = (checkpoint if isinstance(checkpoint, CheckpointStore)
                     else CheckpointStore(checkpoint))
            if not store.fingerprint:
                store.fingerprint = molecule_fingerprint(
                    molecule, params, method)
            self.checkpoint = store
        self.resume = resume

    # -- public API --------------------------------------------------------

    def energy(self) -> float:
        return self.report().energy

    def born_radii(self) -> np.ndarray:
        return self.report().born_radii

    @property
    def degradations(self) -> int:
        return sum(1 for e in self.events
                   if e.action in ("retry", "tighten", "fallback-naive"))

    @property
    def injected_faults(self) -> int:
        return sum(1 for e in self.events if e.action == "corruption")

    def report(self) -> GuardedReport:
        if self._report is None:
            self._report = self._solve()
        return self._report

    @property
    def inner_solver(self) -> Optional[PolarizationSolver]:
        """The :class:`PolarizationSolver` of the rung that succeeded
        (None before :meth:`report`, or after a pure checkpoint/epol
        resume).  ``repro.serve`` harvests its built octrees from here
        into the artifact cache."""
        return self._last_inner

    # -- ladder ------------------------------------------------------------

    def _rungs(self) -> List[Tuple[str, str, ApproxParams]]:
        rungs = [(_PRIMARY, self.method, self.params)]
        rungs += [(f"retry-{i + 1}", self.method, self.params)
                  for i in range(self.policy.retries)]
        f = self.policy.tighten_factor
        rungs.append(("tighten", self.method,
                      self.params.with_(eps_born=self.params.eps_born * f,
                                        eps_epol=self.params.eps_epol * f)))
        if self.policy.allow_naive_fallback and self.method != "naive":
            rungs.append(("naive", "naive", self.params))
        return rungs

    def _make_inner(self, method: str,
                    params: ApproxParams) -> PolarizationSolver:
        """Inner solver for one rung, seeded with any warm octrees.

        The trees depend only on the point sets and ``leaf_size``/
        ``max_depth`` (never on ε), so warm trees stay valid on every
        non-naive rung of the ladder.
        """
        inner = PolarizationSolver(self.molecule, params, method=method,
                                   tau=self.tau)
        if self.warm is not None and method != "naive":
            if self.warm.atoms_tree is not None:
                inner._atoms_tree = self.warm.atoms_tree
            if self.warm.q_tree is not None:
                inner._q_tree = self.warm.q_tree
        return inner

    def _solve(self) -> GuardedReport:
        resumed = self._try_resume()
        if resumed is not None:
            return resumed
        rungs = self._rungs()
        warm_radii = (self.warm.born_radii if self.warm is not None
                      else None)
        last_error: Optional[DiagnosticError] = None
        for i, (rung, method, params) in enumerate(rungs):
            if i > 0:
                action = {"tighten": "tighten",
                          "naive": "fallback-naive"}.get(rung, "retry")
                self._record(action, "ladder",
                             f"after {type(last_error).__name__}: "
                             f"{rungs[i - 1][0]} -> {rung}")
            try:
                # Warm radii are only trusted on the first attempt —
                # once they (or anything else) breach a guard, every
                # later rung recomputes from scratch.
                return self._attempt(rung, method, params, attempts=i + 1,
                                     preset_radii=(warm_radii if i == 0
                                                   else None))
            except (NumericalGuardError, DegenerateGeometryError) as exc:
                breach = ("watchdog-breach" if exc.phase == "watchdog"
                          else "sentinel-breach")
                self._record(breach, exc.phase or "unknown", str(exc))
                last_error = exc
        assert last_error is not None
        raise last_error

    def _born_phase(self, rung: str, method: str, params: ApproxParams,
                    preset_radii: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, Optional[WatchdogReport],
                               Optional[PolarizationSolver]]:
        """Born half of one attempt: compute (or adopt a resumed array),
        inject, sentinel, watchdog, snapshot.

        Also returns the inner solver (None when resuming from a preset
        array) so the energy phase can reuse its cached octrees instead
        of rebuilding them — the guard layer must not double the
        structure-construction cost of a clean solve."""
        pol = self.policy
        inner: Optional[PolarizationSolver] = None
        if preset_radii is not None:
            radii = np.asarray(preset_radii, dtype=np.float64)
        else:
            inner = self._make_inner(method, params)
            with np.errstate(invalid="ignore", over="ignore",
                             divide="ignore"):
                radii = inner.born_radii()
            # Corruption models bit-rot in the approximate pipeline's
            # data products; the exact fallback recomputes from
            # pristine inputs, so the last rung is exempt — a
            # guarantee, not an attempt.
            if method != "naive":
                radii = self._inject("born.radii", radii, phase="born")
        watchdog_report: Optional[WatchdogReport] = None
        if pol.sentinels:
            check_born_radii("born", radii,
                             intrinsic=self.molecule.radii)
        if pol.watchdog:
            watchdog_report = check_born_subset(
                self.molecule, radii, params,
                seed=pol.watchdog_seed, samples=pol.watchdog_samples,
                tolerance=pol.watchdog_tolerance)
        radii = np.asarray(radii, dtype=np.float64)
        if preset_radii is None:
            self._save("born", {"radii": radii},
                       {"rung": rung, "method": method,
                        "eps_born": params.eps_born,
                        "eps_epol": params.eps_epol})
        return radii, watchdog_report, inner

    def born_phase_only(self) -> np.ndarray:
        """Run just the primary rung's Born phase (guards + snapshot).

        This is the interruption half of a checkpoint round-trip:
        ``repro solve --checkpoint DIR --stop-after born`` exits here,
        and a later ``--resume`` finishes from the snapshot with a
        bitwise-identical energy.
        """
        rung, method, params = self._rungs()[0]
        radii, _, _ = self._born_phase(rung, method, params)
        return radii

    def _attempt(self, rung: str, method: str, params: ApproxParams,
                 attempts: int,
                 preset_radii: Optional[np.ndarray] = None
                 ) -> GuardedReport:
        pol = self.policy
        radii, watchdog_report, inner = self._born_phase(
            rung, method, params, preset_radii)
        if inner is None:
            inner = self._make_inner(method, params)
        inner._born = radii

        # Energy phase.
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            energy = inner.energy()
        if method != "naive":
            energy = self._inject("epol.energy", energy, phase="epol")
        if pol.sentinels:
            check_finite("epol", "E_pol", np.asarray(energy),
                         hint="the energy pass produced NaN/Inf from "
                              "finite Born radii")
        self._save("epol",
                   {"radii": inner._born,
                    "energy": np.asarray(float(energy))},
                   {"rung": rung, "method": method,
                    "eps_born": params.eps_born,
                    "eps_epol": params.eps_epol})
        self._last_inner = inner
        return GuardedReport(
            energy=float(energy), born_radii=inner._born, method=method,
            params=params, rung=rung, attempts=attempts,
            degradations=self.degradations, events=self.events,
            watchdog=watchdog_report, preflight=self._preflight)

    # -- checkpoint / resume ----------------------------------------------

    def _save(self, kind: str, arrays: dict, meta: dict) -> None:
        if self.checkpoint is None:
            return
        path = self.checkpoint.save(kind, arrays, meta)
        self._record("checkpoint-save", kind, str(path))

    def _params_from_meta(self, meta: dict) -> ApproxParams:
        return self.params.with_(eps_born=float(meta["eps_born"]),
                                 eps_epol=float(meta["eps_epol"]))

    def _try_resume(self) -> Optional[GuardedReport]:
        if self.checkpoint is None or not self.resume:
            return None
        ck = self.checkpoint.try_load("epol")
        if ck is not None:
            self._record("checkpoint-load", "epol", str(ck.path))
            radii = np.asarray(ck.arrays["radii"], dtype=np.float64)
            energy = float(ck.arrays["energy"])
            if self.policy.sentinels:
                check_born_radii("born", radii,
                                 intrinsic=self.molecule.radii)
                check_finite("epol", "E_pol", np.asarray(energy))
            return GuardedReport(
                energy=energy, born_radii=radii,
                method=str(ck.meta.get("method", self.method)),
                params=self._params_from_meta(ck.meta),
                rung=str(ck.meta.get("rung", _PRIMARY)),
                attempts=0, degradations=0, events=self.events,
                preflight=self._preflight)
        ck = self.checkpoint.try_load("born")
        if ck is not None:
            self._record("checkpoint-load", "born", str(ck.path))
            return self._attempt(
                str(ck.meta.get("rung", _PRIMARY)),
                str(ck.meta.get("method", self.method)),
                self._params_from_meta(ck.meta), attempts=0,
                preset_radii=np.asarray(ck.arrays["radii"],
                                        dtype=np.float64))
        return None

    # -- fault injection + observability -----------------------------------

    def _inject(self, array: str, value, phase: str):
        if self.fault_plan is None or not self.fault_plan.has_corruptions:
            return value
        occurrence = self._occurrences.get(array, 0)
        self._occurrences[array] = occurrence + 1
        spec = self.fault_plan.corruption_for(array, occurrence)
        if spec is None:
            return value
        corrupted, idx = apply_corruption(value, spec,
                                          self.fault_plan.seed, occurrence)
        self._record("corruption", phase,
                     f"{spec.kind} x{len(idx)} into {array} "
                     f"(occurrence {occurrence})")
        return corrupted

    def _record(self, action: str, phase: str, detail: str = "") -> None:
        self.events.append(GuardEvent(action, phase, detail))
        if not obs.is_enabled():
            return
        obs.instant(f"guard.{action}", cat="guard", phase=phase,
                    detail=detail)
        obs.registry.counter(
            f"guard.{action.replace('-', '_')}s",
            "guard-layer actions by kind").inc()
