"""Preflight validation and runtime numerical sentinels.

Two call styles over the same checks:

* :func:`diagnose_molecule` returns a list of :class:`Diagnostic`
  records (errors, warnings and notes) without raising — this is what
  ``repro doctor`` prints;
* :func:`preflight` raises the first *error*-severity diagnostic as
  the matching typed exception — this is what
  :class:`repro.guard.solver.GuardedSolver` runs before touching the
  kernels.

The sentinel helpers (:func:`check_finite`, :func:`check_positive`,
:func:`check_born_radii`) are the per-phase runtime guards: cheap
vectorised ``isfinite`` scans, run under ``np.errstate`` so the scan
itself never emits floating-point warnings, that convert silent
garbage (NaN/Inf propagating out of a kernel) into a
:class:`~repro.guard.errors.NumericalGuardError` naming the phase and
the offending indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ApproxParams
from repro.guard.errors import (
    DegenerateGeometryError,
    MoleculeFormatError,
    NumericalGuardError,
    format_indices,
)
from repro.molecules.molecule import Molecule

__all__ = [
    "Diagnostic",
    "diagnose_molecule",
    "preflight",
    "check_finite",
    "check_positive",
    "check_born_radii",
    "COINCIDENT_TOL",
    "EXTREME_COORDINATE",
]

#: Two atoms closer than this (Å) are treated as coincident.
COINCIDENT_TOL = 1e-8

#: Coordinates beyond this magnitude (Å) exhaust the Morton grid's
#: useful resolution and flag a likely unit mix-up (nm vs Å, or pm).
EXTREME_COORDINATE = 1e6


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the preflight validator.

    ``severity`` is ``"error"`` (the solve would crash or lie),
    ``"warning"`` (legal but suspicious) or ``"note"``.  ``fixable``
    marks findings ``repro doctor`` can name a concrete fix for, which
    ``hint`` spells out.
    """

    severity: str
    code: str
    message: str
    indices: Tuple[int, ...] = ()
    fixable: bool = False
    hint: str = ""

    def render(self) -> str:
        idx = (f" {format_indices(self.indices)}" if self.indices else "")
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return f"{self.severity.upper():7s} {self.code} {self.message}{idx}{hint}"


def _nonfinite_indices(arr: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        finite = np.isfinite(arr)
    if arr.ndim > 1:
        finite = finite.all(axis=tuple(range(1, arr.ndim)))
    return np.flatnonzero(~finite)


def _coincident_pairs(positions: np.ndarray,
                      tol: float = COINCIDENT_TOL) -> np.ndarray:
    """Indices of atoms that share a position with an earlier atom.

    Sort-and-compare: after a lexicographic sort, every member of a
    coincident cluster is adjacent to another member, so one adjacent
    diff finds them all in O(M log M).
    """
    m = len(positions)
    if m < 2:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort(positions.T)
    sp = positions[order]
    close = np.linalg.norm(np.diff(sp, axis=0), axis=1) <= tol
    hits = np.zeros(m, dtype=bool)
    hits[1:] |= close
    hits[:-1] |= close
    return np.sort(order[hits])


def diagnose_molecule(molecule: Molecule,
                      params: Optional[ApproxParams] = None
                      ) -> List[Diagnostic]:
    """Validate a molecule (and optional params); never raises."""
    out: List[Diagnostic] = []
    pos, q, r = molecule.positions, molecule.charges, molecule.radii

    for name, arr, code in (("positions", pos, "GRD101"),
                            ("charges", q, "GRD102"),
                            ("radii", r, "GRD103")):
        bad = _nonfinite_indices(arr)
        if len(bad):
            out.append(Diagnostic(
                "error", code, f"non-finite {name}", tuple(bad), True,
                f"drop or re-derive the listed atoms' {name}"))

    bad = np.flatnonzero(~(r > 0.0) & np.isfinite(r))
    if len(bad):
        out.append(Diagnostic(
            "error", "GRD104", "non-positive atom radii", tuple(bad), True,
            "assign van der Waals radii (repro.molecules.atom_data)"))

    if not len(_nonfinite_indices(pos)):
        dup = _coincident_pairs(pos)
        if len(dup):
            out.append(Diagnostic(
                "error", "GRD105",
                f"coincident atoms (closer than {COINCIDENT_TOL:g} Å)",
                tuple(dup), True,
                "merge duplicates or perturb one of each pair"))
        with np.errstate(invalid="ignore"):
            extreme = np.flatnonzero(
                np.abs(np.nan_to_num(pos)).max(axis=1) > EXTREME_COORDINATE)
        if len(extreme):
            out.append(Diagnostic(
                "warning", "GRD106",
                f"coordinates beyond {EXTREME_COORDINATE:g} Å "
                f"(unit mix-up?)", tuple(extreme), True,
                "check input units — coordinates must be in Å"))

    if np.all(q == 0.0):
        out.append(Diagnostic(
            "warning", "GRD107", "all charges are zero (E_pol will be 0)",
            (), True, "apply a charge model (PQR input carries charges)"))
    if molecule.natoms == 1:
        out.append(Diagnostic(
            "note", "GRD108", "single-atom molecule: Born radius should "
            "equal the intrinsic radius", ()))

    surf = molecule.surface
    if surf is None:
        out.append(Diagnostic(
            "note", "GRD110", "no surface samples yet (the solver calls "
            "sample_surface automatically)", ()))
    else:
        for name, arr, code in (("surface points", surf.points, "GRD111"),
                                ("surface normals", surf.normals, "GRD111"),
                                ("surface weights", surf.weights, "GRD111")):
            bad = _nonfinite_indices(arr)
            if len(bad):
                out.append(Diagnostic(
                    "error", "GRD111", f"non-finite {name}", tuple(bad),
                    True, "re-run sample_surface on a cleaned molecule"))
        if not len(surf.points):
            out.append(Diagnostic(
                "error", "GRD112", "surface has zero quadrature points",
                (), True, "lower cull_tolerance or check atom radii"))
        elif np.any(surf.weights < 0.0):
            out.append(Diagnostic(
                "warning", "GRD112", "negative quadrature weights",
                tuple(np.flatnonzero(surf.weights < 0.0))))
        if (len(surf.points) and not len(_nonfinite_indices(pos))
                and not len(_nonfinite_indices(surf.points))):
            bad = _atoms_touching_surface(pos, surf.points)
            if len(bad):
                out.append(Diagnostic(
                    "error", "GRD113",
                    "quadrature point coincides with an atom centre "
                    "(singular integrand)", tuple(bad), True,
                    "re-sample the surface or perturb the atom"))

    if params is not None and params.eps_born > 2.0:
        out.append(Diagnostic(
            "warning", "GRD120",
            f"eps_born={params.eps_born:g} is far beyond the paper's "
            f"studied range (0.1–0.9)", (), True,
            "use eps_born <= 0.9 for published accuracy"))
    return out


#: Spatial-hash mixing primes (Teschner et al. style).
_HASH_P = (np.int64(73856093), np.int64(19349663), np.int64(83492791))


def _cell_keys(cells: np.ndarray) -> np.ndarray:
    """Hash integer grid cells to one int64 key each (overflow wraps)."""
    with np.errstate(over="ignore"):
        return (cells[:, 0] * _HASH_P[0] ^ cells[:, 1] * _HASH_P[1]
                ^ cells[:, 2] * _HASH_P[2])


def _keys_present(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
    i = np.searchsorted(sorted_keys, keys)
    i[i == len(sorted_keys)] = 0
    return sorted_keys[i] == keys


def _atoms_touching_surface(pos: np.ndarray, qpts: np.ndarray,
                            tol: float = COINCIDENT_TOL) -> np.ndarray:
    """Atom indices whose centre lies on a quadrature point.

    This check runs in every preflight and must stay far below solve
    time, so the all-miss common case is a vectorised spatial-hash
    join: both point sets are quantised onto a grid much coarser than
    ``tol`` (a within-``tol`` pair shares a cell, up to boundary
    straddle, which only the rare near-boundary points re-check across
    their up-to-8 candidate cells).  Hash collisions and straddle only
    ever *add* candidates; a bounded KD-tree query on the (normally
    empty) candidate set keeps the result exact.
    """
    cell = 1024.0 * tol
    akeys = np.unique(_cell_keys(np.floor(pos / cell).astype(np.int64)))
    scaled = qpts / cell
    base = np.floor(scaled)
    frac = scaled - base
    base = base.astype(np.int64)
    cand = _keys_present(akeys, _cell_keys(base))
    eps = tol / cell
    near = (frac < eps) | (frac > 1.0 - eps)
    straddle = np.flatnonzero(near.any(axis=1))
    if len(straddle):
        lo = base[straddle] - (frac[straddle] < eps)
        hi = base[straddle] + (frac[straddle] > 1.0 - eps)
        scand = np.zeros(len(straddle), dtype=bool)
        for bits in range(1, 8):
            corner = np.where(np.array([bits & 1, bits & 2, bits & 4],
                                       dtype=bool), hi, lo)
            scand |= _keys_present(akeys, _cell_keys(corner))
        cand[straddle] |= scand
    if not cand.any():
        return np.empty(0, dtype=np.int64)
    from scipy.spatial import cKDTree
    d, j = cKDTree(pos).query(qpts[cand], k=1, distance_upper_bound=tol)
    return np.unique(j[np.isfinite(d)])


#: Diagnostic code → exception class for :func:`preflight`.
_ERROR_CLASSES = {
    "GRD101": MoleculeFormatError,
    "GRD102": MoleculeFormatError,
    "GRD103": MoleculeFormatError,
    "GRD104": DegenerateGeometryError,
    "GRD105": DegenerateGeometryError,
    "GRD111": MoleculeFormatError,
    "GRD112": DegenerateGeometryError,
    "GRD113": DegenerateGeometryError,
}


def preflight(molecule: Molecule,
              params: Optional[ApproxParams] = None) -> List[Diagnostic]:
    """Raise the first error-severity diagnostic; return all findings.

    The raised type matches the finding: format problems (non-finite
    input arrays) surface as :class:`MoleculeFormatError`, geometry
    problems (coincident atoms, singular surface points) as
    :class:`DegenerateGeometryError`.
    """
    findings = diagnose_molecule(molecule, params)
    for d in findings:
        if d.severity == "error":
            cls = _ERROR_CLASSES.get(d.code, DegenerateGeometryError)
            raise cls(d.message, indices=d.indices, hint=d.hint)
    return findings


# -- runtime sentinels -----------------------------------------------------


def check_finite(phase: str, name: str, arr: np.ndarray,
                 hint: str = "") -> np.ndarray:
    """Raise :class:`NumericalGuardError` if ``arr`` has NaN/Inf."""
    a = np.asarray(arr)
    bad = _nonfinite_indices(a)
    if len(bad):
        raise NumericalGuardError(
            f"non-finite values in {name}", phase=phase, indices=bad,
            hint=hint or "re-run with the naive method to isolate the "
                         "kernel, or file the molecule with repro doctor")
    return arr


def check_positive(phase: str, name: str, arr: np.ndarray,
                   hint: str = "") -> np.ndarray:
    """Finite *and* strictly positive, else :class:`NumericalGuardError`."""
    check_finite(phase, name, arr, hint=hint)
    a = np.asarray(arr)
    bad = np.flatnonzero(~(a > 0.0))
    if len(bad):
        raise NumericalGuardError(
            f"non-positive values in {name}", phase=phase, indices=bad,
            hint=hint)
    return arr


def check_born_radii(phase: str, radii: np.ndarray,
                     intrinsic: Optional[np.ndarray] = None) -> np.ndarray:
    """Sentinel for a Born-radii array: finite, positive and (when the
    intrinsic radii are given) at or above the intrinsic floor the
    push phase guarantees."""
    check_positive(phase, "Born radii", radii,
                   hint="Born radii are floored at the intrinsic radius; "
                        "non-positive values mean a corrupted integral")
    if intrinsic is not None:
        r = np.asarray(radii)
        with np.errstate(invalid="ignore"):
            bad = np.flatnonzero(r < np.asarray(intrinsic) * (1.0 - 1e-12))
        if len(bad):
            raise NumericalGuardError(
                "Born radii below the intrinsic-radius floor",
                phase=phase, indices=bad,
                hint="the push phase enforces R >= r_vdw; smaller values "
                     "mean the radii array was corrupted after the solve")
    return radii
