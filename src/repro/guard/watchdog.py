"""Accuracy watchdog: seeded exact spot-checks of the approximate pipeline.

The octree solvers carry an ε-parameterised error *bound*, but a bound
argues about the algorithm, not about this run: corrupted memory, a
broken MAC, or a miscompiled kernel all produce answers the bound says
nothing about.  The watchdog closes that gap empirically — it draws a
seeded random subset of atoms and recomputes their r⁶ Born integral
*exactly* against every quadrature point (O(samples · N), trivial next
to the solve), then compares with the radii the tree pass produced.

A disagreement beyond :func:`born_tolerance` raises
:class:`~repro.guard.errors.WatchdogBreachError`;
:class:`~repro.guard.solver.GuardedSolver` catches it and walks the
degradation ladder (retry → tighten ε → exact naive path) instead of
returning a plausible-looking wrong energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import ApproxParams
from repro.core.born_naive import integral_to_radius_r6
from repro.guard.errors import DegenerateGeometryError, WatchdogBreachError
from repro.molecules.molecule import Molecule

__all__ = ["WatchdogReport", "born_tolerance", "exact_born_subset",
           "check_born_subset", "DEFAULT_SAMPLES"]

#: Atoms spot-checked per solve (each costs one O(N) exact row).
DEFAULT_SAMPLES = 8

#: Safety factor over the analytic ε bound: the distance-MAC error is
#: far below ε in practice, but the watchdog exists to catch *gross*
#: corruption, not to police the approximation's last digit.
_SLACK = 2.0


def born_tolerance(params: ApproxParams) -> float:
    """Relative Born-radius tolerance implied by ``eps_born``.

    An ε-bounded relative error on the r⁶ integral maps through
    ``R = (s/4π)^(−1/3)`` to a ``(1+ε)^(1/3) − 1`` relative error on
    the radius; the watchdog allows :data:`_SLACK` times that.
    """
    eps = params.eps_born
    return _SLACK * ((1.0 + eps) ** (1.0 / 3.0) - 1.0)


def sample_indices(natoms: int, seed: int,
                   samples: int = DEFAULT_SAMPLES) -> np.ndarray:
    """The seeded atom subset the watchdog will cross-check."""
    k = min(samples, natoms)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(natoms, size=k, replace=False))


def exact_born_subset(molecule: Molecule,
                      idx: np.ndarray) -> np.ndarray:
    """Exact (Eq. 4) r⁶ Born radii for the atoms in ``idx``.

    Identical arithmetic to :func:`repro.core.born_naive.
    born_radii_naive_r6` restricted to the subset rows.
    """
    surf = molecule.require_surface()
    pos = molecule.positions[idx]
    diff = surf.points[None, :, :] - pos[:, None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        r2 = np.einsum("bnk,bnk->bn", diff, diff)
        if np.any(r2 == 0.0):
            atom_rows = np.flatnonzero((r2 == 0.0).any(axis=1))
            raise DegenerateGeometryError(
                "a quadrature point coincides with an atom centre; the "
                "surface integrand is singular there",
                phase="watchdog", indices=idx[atom_rows],
                hint="run repro doctor on this molecule")
        numer = np.einsum("bnk,nk->bn", diff, surf.weighted_normals)
        s = np.sum(numer / r2 ** 3, axis=1)
    return integral_to_radius_r6(s, molecule.radii[idx])


@dataclass(frozen=True)
class WatchdogReport:
    """Outcome of one spot-check (kept by ``GuardedSolver.events``)."""

    indices: Tuple[int, ...]
    worst_rel: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.worst_rel <= self.tolerance


def check_born_subset(molecule: Molecule,
                      radii: np.ndarray,
                      params: ApproxParams,
                      seed: int = 0,
                      samples: int = DEFAULT_SAMPLES,
                      tolerance: Optional[float] = None) -> WatchdogReport:
    """Cross-check ``radii`` on a seeded subset; raise on breach.

    ``radii`` is the full per-atom array in original order.  Raises
    :class:`WatchdogBreachError` naming the disagreeing atoms when the
    worst relative deviation exceeds ``tolerance`` (default:
    :func:`born_tolerance`).
    """
    tol = born_tolerance(params) if tolerance is None else float(tolerance)
    idx = sample_indices(molecule.natoms, seed, samples)
    exact = exact_born_subset(molecule, idx)
    got = np.asarray(radii)[idx]
    with np.errstate(invalid="ignore"):
        rel = np.abs(got - exact) / exact
        rel = np.where(np.isfinite(rel), rel, np.inf)
    worst = float(rel.max()) if len(rel) else 0.0
    report = WatchdogReport(tuple(int(i) for i in idx), worst, tol)
    if not report.ok:
        bad = idx[rel > tol]
        raise WatchdogBreachError(
            "approximate Born radii disagree with the exact spot-check",
            observed=worst, tolerance=tol, indices=bad,
            hint="tighten eps_born or solve with method='naive'")
    return report
