"""The in-process solve service: queue → worker pool → guarded solver.

One :class:`SolveService` turns the one-shot CLI pipeline into a
multi-tenant request server:

* :meth:`~SolveService.submit` admits a
  :class:`~repro.serve.request.SolveRequest` into a bounded priority
  queue (full → typed :class:`~repro.serve.errors.QueueFullError`,
  explicit backpressure) and returns a :class:`Ticket`;
* duplicate in-flight requests **coalesce**: submits whose idempotency
  key matches a queued/running request get the *same* ticket, so one
  computation's result fans out to every caller;
* ``workers`` threads pop priority **batches** and execute each
  request through :class:`~repro.guard.solver.GuardedSolver` —
  preflight, sentinels, watchdog and the degradation ladder all apply,
  and guard events are propagated into the result ``status``;
* every phase output lands in the shared
  :class:`~repro.serve.cache.ArtifactCache`, so a warm repeat solve
  starts from cached octrees or Born radii — or skips computation
  entirely on a full-result hit, returning the bitwise-identical
  energy (stored float64 arrays round-trip exactly).

Resilience (all optional, pay-for-what-you-use — see
:mod:`repro.serve.resilience` and ``docs/SERVING.md``):

* a :class:`~repro.faults.plan.ServeFaultPlan` injects deterministic
  worker crashes, stragglers, disk faults and cache poison;
* **supervision** detects a dead worker, requeues its in-flight batch
  exactly once (idempotency keys make the replay safe) and spawns a
  replacement thread — replacement worker ids continue past the
  initial pool so crash specs never re-fire on the replacement;
* a :class:`~repro.serve.resilience.RetryPolicy` re-queues failed
  attempts with deadline-aware, deterministically jittered backoff,
  and optionally **hedges** a straggling attempt; tickets are
  first-set-wins, so the loser's result is discarded and the loser
  itself is cancelled at its next checkpoint;
* an :class:`~repro.serve.resilience.AdmissionController` sheds load
  (typed, with a retry-after hint) before hard queue backpressure.

Everything is observable through :mod:`repro.obs`: queue depth, wait
and service time histograms, cache hit/miss/eviction counters, and a
``serve.request`` span per executed request (solver phase spans nest
inside it).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

import repro.obs as obs
from repro.faults.errors import WorkerCrashedError
from repro.faults.plan import ServeFaultPlan
from repro.guard.errors import DiagnosticError
from repro.guard.solver import GuardPolicy, GuardedSolver, WarmStart
from repro.molecules.molecule import Molecule, SurfaceSamples
from repro.molecules.surface import sample_surface
from repro.serve.cache import (
    ArtifactCache,
    CachedArrays,
    CacheStats,
    DEFAULT_CACHE_BYTES,
    born_key,
    epol_key,
    surface_key,
    trees_key,
)
from repro.serve.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.queueing import BoundedPriorityQueue
from repro.serve.request import SolveRequest, SolveResult
from repro.serve.resilience import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    DelayTimer,
    RetryPolicy,
)

__all__ = ["SolveService", "Ticket", "ServeStats",
           "LATENCY_BOUNDS_SECONDS", "CANCELLED_MARK"]

#: Error prefix marking a result produced by :meth:`SolveService.cancel`
#: rather than by execution — the fleet router skips these when
#: propagating shard results to fleet tickets.
CANCELLED_MARK = "[cancelled]"

#: Histogram bucket edges for wait/service time (seconds) — the count
#: grid in :data:`repro.obs.metrics.DEFAULT_BOUNDS` is tuned for
#: operation counts, not latencies.
LATENCY_BOUNDS_SECONDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Ticket:
    """Handle to one (possibly shared) in-flight computation.

    First set wins: with hedging, two attempts can race to deliver —
    whichever lands first is the result every coalesced caller sees;
    the loser's ``_set`` returns False and its result is discarded.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self._done = threading.Event()
        self._result: Optional[SolveResult] = None
        # Leaf-level: nothing is ever acquired under it (done
        # callbacks are invoked after it is released).
        self._win = threading.Lock()
        self._callbacks: List["object"] = []     # guarded-by: _win

    def done(self) -> bool:
        return self._done.is_set()

    def on_done(self, fn) -> None:
        """Register ``fn(ticket)`` to run once the result lands.

        Fires on the resolving thread (worker, canceller or timer) with
        no ticket lock held; when the ticket is already resolved the
        callback runs immediately on the caller's thread.  The fleet
        router uses this to propagate shard results without a
        collector thread per request.
        """
        with self._win:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: Optional[float] = None) -> SolveResult:
        """Block until the result lands; ``TimeoutError`` otherwise."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"no result for {self.key[:24]}… within {timeout}s")
        assert self._result is not None
        return self._result

    def _set(self, result: SolveResult) -> bool:
        """Install ``result`` if none landed yet; True iff it won."""
        with self._win:
            if self._done.is_set():
                return False
            self._result = result
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return True


@dataclass
class _Job:
    """A ticketed request inside the queue."""

    request: SolveRequest
    ticket: Ticket
    enqueued_at: float
    deadline_at: Optional[float]
    #: 1-based delivery attempt (retries, hedges and crash requeues
    #: each consume one).
    attempt: int = 1
    #: True for a hedged duplicate racing the original attempt.
    hedge: bool = False
    #: Set when supervision requeued this job after a worker crash —
    #: a second crash fails it instead of requeueing forever.
    crash_requeued: bool = False


@dataclass
class ServeStats:
    """Aggregate service counters + latency quantiles (at drain time)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    expired: int = 0
    coalesced: int = 0
    rejected: int = 0
    degraded: int = 0
    shed: int = 0
    cancelled: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    requeued: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_cancelled: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    by_level: Dict[str, int] = field(default_factory=dict)
    wait_p50: float = 0.0
    wait_p99: float = 0.0
    service_p50: float = 0.0
    service_p99: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate


def _quantile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class SolveService:
    """Batched multi-tenant polarization-energy solve service.

    Parameters
    ----------
    workers:
        Worker threads executing requests.
    queue_capacity:
        Bounded queue size; a full queue raises
        :class:`QueueFullError` at submit.
    batch_size:
        Max requests one worker pops per queue round-trip; batching
        amortises wake-ups and lets back-to-back repeats of one
        molecule run against a cache its predecessor just filled.
    cache:
        Shared :class:`ArtifactCache`; built from ``cache_bytes`` /
        ``cache_dir`` when omitted.
    policy:
        :class:`GuardPolicy` for every solve (None → defaults).
    fault_plan:
        Optional :class:`ServeFaultPlan` driving deterministic crash /
        straggler / disk / poison injection (chaos testing only).
    retry:
        Optional :class:`RetryPolicy`; enables bounded retry of failed
        attempts and (via ``hedge_after_s``) hedged re-submits.  Also
        starts the :class:`DelayTimer` thread.
    admission:
        Optional :class:`AdmissionPolicy` (or a prebuilt
        :class:`AdmissionController`) shedding load ahead of
        :class:`QueueFullError` backpressure.
    breaker:
        Optional :class:`CircuitBreaker` for the disk cache tier; only
        applied when the service builds its own cache (pass a wired
        :class:`ArtifactCache` otherwise).
    """

    def __init__(self, workers: int = 2, queue_capacity: int = 64,
                 batch_size: int = 4,
                 cache: Optional[ArtifactCache] = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 cache_dir: Optional[str] = None,
                 policy: Optional[GuardPolicy] = None,
                 fault_plan: Optional[ServeFaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 admission: Union[AdmissionPolicy, AdmissionController,
                                  None] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cache = cache if cache is not None else ArtifactCache(
            max_bytes=cache_bytes, disk_dir=cache_dir,
            breaker=breaker, fault_plan=fault_plan)
        self.policy = policy
        self.batch_size = int(batch_size)
        self._fault_plan = fault_plan
        self._retry = retry
        if isinstance(admission, AdmissionController):
            self._admission: Optional[AdmissionController] = admission
        elif admission is not None:
            self._admission = AdmissionController(admission,
                                                  workers=int(workers))
        else:
            self._admission = None
        # The timer thread exists only when retry/hedging is on —
        # fault-free services pay nothing for it.
        self._timer = DelayTimer() if retry is not None else None
        self._queue = BoundedPriorityQueue(queue_capacity)
        # Witness-aware factories: plain threading primitives unless a
        # LockWitness is installed (repro.obs.lockwitness).
        self._lock = obs.named_lock("serve.service._lock")
        self._idle = obs.named_condition("serve.service._idle",
                                         self._lock)
        self._inflight: Dict[str, Ticket] = {}   # guarded-by: _lock
        self._pending = 0                        # guarded-by: _lock
        self._closed = False                     # guarded-by: _lock
        self._stats = ServeStats()               # guarded-by: _lock
        self._waits: List[float] = []            # guarded-by: _lock
        self._services: List[float] = []         # guarded-by: _lock
        # Replacement workers take ids past the initial pool, so a
        # WorkerCrash spec can never re-fire on the replacement.
        self._wid_counter = itertools.count(int(workers))
        self._threads = [                        # guarded-by: _lock
            threading.Thread(target=self._worker, args=(i,),
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(int(workers))
        ]
        for t in self._threads:
            t.start()
        if obs.is_enabled():
            obs.registry.gauge("serve.workers",
                               "solve-service worker threads").set(
                                   len(self._threads))

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop admitting work, drain what was accepted, join workers.

        Order matters: the delay timer is flushed *first* (its close
        runs pending retry/hedge callbacks synchronously, requeueing
        their jobs), then the queue closes and drains, then workers —
        including replacements spawned by supervision during the drain
        — are joined until the pool is stable.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._timer is not None:
            self._timer.close()
        self._queue.close()
        while True:
            with self._lock:
                threads = list(self._threads)
            for t in threads:
                t.join()
            with self._lock:
                stable = len(self._threads) == len(threads)
            if stable:
                return

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Condition-wait until every accepted request has a result."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0,
                                       timeout)

    @property
    def pending(self) -> int:
        """Accepted-but-unresolved requests (0 after a clean drain —
        the zero-stranded-tickets invariant ``repro chaos --serve``
        asserts)."""
        with self._lock:
            return self._pending

    @property
    def queue_depth(self) -> int:
        """Requests sitting in the bounded queue right now (the
        per-shard gauge the fleet router exports)."""
        return len(self._queue)

    def cancel(self, key: str, reason: str = "cancelled") -> bool:
        """Revoke an in-flight request; True iff the cancel won.

        The cancelled ticket resolves immediately with a ``failed``
        result whose error carries :data:`CANCELLED_MARK`, which also
        wakes any worker stalled on the ticket's interruptible event.
        A worker that later pops the revoked job sees a done ticket
        and discards its work, and a completion racing the cancel
        simply wins first (``False`` return) — the caller must then
        treat the request as served, not revoked.  This is the fleet
        failover primitive: cancel on the old shard, and only if the
        cancel won, re-submit on the new one (exactly-once).
        """
        with self._lock:
            ticket = self._inflight.get(key)
        if ticket is None:
            return False
        won = ticket._set(SolveResult(
            key=key, status="failed",
            error=f"{CANCELLED_MARK} {reason}"))
        if won:
            with self._lock:
                self._stats.cancelled += 1
            self._observe_counter("serve.cancelled")
        self._finalize(ticket)
        return won

    # -- producer side -----------------------------------------------------

    def submit(self, request: SolveRequest,
               wait_timeout: Optional[float] = None) -> Ticket:
        """Admit ``request``; returns a (possibly shared) ticket.

        A full queue raises :class:`QueueFullError` immediately;
        passing ``wait_timeout`` instead waits (condition-based) up to
        that long for a slot before raising — the service never blocks
        a submitter forever and never drops silently.
        """
        if self._closed:
            raise ServiceClosedError()
        key = request.key()
        if self._admission is not None:
            with self._lock:
                ticket = self._inflight.get(key)
                if ticket is not None:
                    self._stats.coalesced += 1
                    self._observe_counter("serve.coalesced")
                    return ticket
            # Coalesced duplicates never reach this point — they cost
            # no queue slot, so only genuinely new work can be shed.
            try:
                self._admission.check(len(self._queue))
            except ServiceOverloadedError:
                with self._lock:
                    self._stats.shed += 1
                raise
        with self._lock:
            ticket = self._inflight.get(key)
            if ticket is not None:
                # A coalescing hit — or, with admission on, a race
                # with an identical submit while the check ran.
                self._stats.coalesced += 1
                self._observe_counter("serve.coalesced")
                return ticket
            ticket = Ticket(key)
            self._inflight[key] = ticket
            # Counted as pending from the instant the ticket becomes
            # visible for coalescing: a fast worker can then never
            # drive _pending negative, and a drain() waiter can never
            # observe zero while an accepted job is still queued.
            self._pending += 1
        job = _Job(request=request, ticket=ticket,
                   enqueued_at=time.monotonic(),
                   deadline_at=(time.monotonic() + request.deadline_s
                                if request.deadline_s is not None
                                else None))
        try:
            self._put_with_wait(job, request.priority, wait_timeout)
        except QueueFullError:
            self._withdraw(ticket, "queue full: request rejected with "
                                   "backpressure")
            with self._lock:
                self._stats.rejected += 1
            self._observe_counter("serve.rejected")
            raise
        except ServiceClosedError:
            self._withdraw(ticket, "service closed before the request "
                                   "was enqueued")
            raise
        with self._lock:
            self._stats.submitted += 1
        self._observe_counter("serve.requests")
        return ticket

    def _withdraw(self, ticket: Ticket, reason: str) -> None:
        """Retract a published ticket whose enqueue failed.

        Between publication in ``_inflight`` and the failed queue put,
        concurrent submitters may have coalesced onto this ticket and
        already returned it to their callers — so it must still reach
        a terminal result, or those callers block forever.
        """
        with self._lock:
            self._inflight.pop(ticket.key, None)
            self._pending -= 1
            self._idle.notify_all()
        ticket._set(SolveResult(key=ticket.key, status="failed",
                                error=reason))

    def _put_with_wait(self, job: _Job, priority: int,
                       wait_timeout: Optional[float]) -> None:
        if wait_timeout is None:
            self._queue.put(job, priority)
            return
        deadline = time.monotonic() + wait_timeout
        while True:
            try:
                self._queue.put(job, priority)
                return
            except QueueFullError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                self._queue.wait_not_full(remaining)

    # -- consumer side -----------------------------------------------------

    def _worker(self, wid: int) -> None:
        # The per-worker batch sequence number is deterministic state
        # WorkerCrash specs key on (never wall clock).
        for batch_seq in itertools.count():
            batch = self._queue.get_batch(self.batch_size)
            if batch is None:
                return
            crash = (self._fault_plan.crash_for(wid, batch_seq)
                     if self._fault_plan is not None else None)
            for i, job in enumerate(batch):
                if crash is not None and i >= crash.after_jobs:
                    self._on_worker_crash(wid, batch_seq, batch[i:])
                    return  # the thread dies mid-batch
                try:
                    self._execute(job, wid)
                except Exception:  # lint: ignore[RPR003]
                    # _execute's finally already resolved the ticket;
                    # a bookkeeping failure in one job must not strand
                    # the rest of the batch or kill the worker thread.
                    continue

    # -- supervision -------------------------------------------------------

    def _on_worker_crash(self, wid: int, batch_seq: int,
                         jobs: Sequence[_Job]) -> None:
        """A worker died with ``jobs`` in flight: requeue each exactly
        once (idempotency keys make the replay safe) and spawn a
        replacement thread.  A job that already survived one crash is
        failed instead — never requeued forever."""
        obs.instant(f"serve.worker.crash[{wid}]", cat="fault",
                    batch_seq=batch_seq, inflight=len(jobs))
        self._observe_counter("serve.worker.crashes")
        with self._lock:
            self._stats.worker_crashes += 1
        for job in jobs:
            if job.ticket.done():
                self._finalize(job.ticket)
                continue
            if job.crash_requeued:
                exc = WorkerCrashedError(wid, batch_seq, job.ticket.key)
                self._fail(job, str(exc))
                continue
            job.crash_requeued = True
            job.attempt += 1
            job.enqueued_at = time.monotonic()
            with self._lock:
                self._stats.requeued += 1
            self._observe_counter("serve.requeued")
            self._queue.requeue(job, job.request.priority)
        self._spawn_replacement()

    def _spawn_replacement(self) -> None:
        with self._lock:
            wid = next(self._wid_counter)
            t = threading.Thread(target=self._worker, args=(wid,),
                                 name=f"serve-worker-{wid}", daemon=True)
            self._threads.append(t)
            self._stats.worker_restarts += 1
        t.start()
        self._observe_counter("serve.worker.restarts")
        obs.instant(f"serve.worker.restart[{wid}]", cat="fault")

    # -- job resolution ----------------------------------------------------

    def _finalize(self, ticket: Ticket) -> None:
        """Exactly-once completion bookkeeping for a ticket.

        With hedging, two jobs share one ticket and both pass through
        here; only the call that finds the ticket still published in
        ``_inflight`` decrements ``_pending``.
        """
        with self._lock:
            if self._inflight.get(ticket.key) is ticket:
                del self._inflight[ticket.key]
                self._pending -= 1
                self._idle.notify_all()

    def _fail(self, job: _Job, error: str) -> None:
        """Terminal failure for a job (crash re-loss, exhausted retry)."""
        result = SolveResult(key=job.ticket.key, status="failed",
                             method=job.request.method, error=error,
                             attempt=job.attempt)
        if job.ticket._set(result):
            self._observe_counter("serve.failures")
            with self._lock:
                self._stats.failed += 1
        self._finalize(job.ticket)

    # -- retry / hedging ---------------------------------------------------

    def _maybe_retry(self, job: _Job, exc: Exception) -> bool:
        """Schedule a retry of ``job`` after backoff; False = give up.

        Deadline-aware: a backoff that alone would overrun the
        request's remaining monotonic budget is not scheduled.
        """
        pol, timer = self._retry, self._timer
        if pol is None or timer is None or job.ticket.done():
            return False
        remaining = (None if job.deadline_at is None
                     else job.deadline_at - time.monotonic())
        pause = pol.next_backoff(job.ticket.key, job.attempt, remaining)
        if pause is None:
            self._observe_counter("serve.retry.exhausted")
            return False
        job.attempt += 1
        with self._lock:
            self._stats.retries += 1
        self._observe_counter("serve.retry.attempts")
        obs.instant("serve.retry", cat="serve", key=job.ticket.key[:16],
                    attempt=job.attempt, backoff_s=pause,
                    error=type(exc).__name__)
        timer.schedule(pause, lambda: self._requeue_job(job))
        return True

    def _requeue_job(self, job: _Job) -> None:
        """Timer callback: put a retried job back on the queue."""
        if job.ticket.done():
            # A hedge (or the crash path) resolved it meanwhile.
            self._finalize(job.ticket)
            return
        job.enqueued_at = time.monotonic()
        self._queue.requeue(job, job.request.priority)

    def _arm_hedge(self, job: _Job) -> None:
        """Arm a hedged duplicate if this attempt straggles."""
        pol, timer = self._retry, self._timer
        if (pol is None or timer is None or pol.hedge_after_s is None
                or job.hedge or job.crash_requeued
                or job.attempt >= pol.max_attempts):
            return
        timer.schedule(pol.hedge_after_s,
                       lambda: self._submit_hedge(job))

    def _submit_hedge(self, job: _Job) -> None:
        """Timer callback: the original attempt is still running —
        race a duplicate against it (first completed wins)."""
        if job.ticket.done():
            return
        with self._lock:
            self._stats.hedges += 1
        self._observe_counter("serve.hedge.armed")
        obs.instant("serve.hedge", cat="serve",
                    key=job.ticket.key[:16], attempt=job.attempt + 1)
        self._queue.requeue(
            _Job(request=job.request, ticket=job.ticket,
                 enqueued_at=time.monotonic(),
                 deadline_at=job.deadline_at,
                 attempt=job.attempt + 1, hedge=True),
            job.request.priority)

    def _note_hedge_loss(self, job: _Job) -> None:
        """This attempt lost the hedge race (cancelled or outpaced)."""
        with self._lock:
            self._stats.hedge_cancelled += 1
        self._observe_counter("serve.hedge.cancelled")

    # -- execution ---------------------------------------------------------

    def _execute(self, job: _Job, wid: int) -> None:
        req, started = job.request, time.monotonic()
        ticket = job.ticket
        if ticket.done():
            # Hedge loser cancelled before it started (or a crash
            # requeue raced a concurrent resolution).
            if job.hedge or self._retry is not None:
                self._note_hedge_loss(job)
            self._finalize(ticket)
            return
        wait = started - job.enqueued_at
        retried = False
        try:
            if job.deadline_at is not None and started > job.deadline_at:
                exc = DeadlineExceededError(req.deadline_s or 0.0,
                                            started - job.deadline_at)
                result = SolveResult(key=ticket.key, status="expired",
                                     method=req.method, error=str(exc))
                self._observe_counter("serve.expired")
                with self._lock:
                    self._stats.expired += 1
            else:
                if self._retry is not None:
                    self._arm_hedge(job)
                slow = (self._fault_plan.slow_seconds(
                            wid, ticket.key, job.attempt)
                        if self._fault_plan is not None else 0.0)
                if slow > 0.0:
                    obs.instant(f"serve.worker.slow[{wid}]", cat="fault",
                                seconds=slow, key=ticket.key[:16])
                    # Interruptible stall (never time.sleep — RPR008);
                    # a hedge may win while this attempt is stuck.
                    ticket._done.wait(slow)
                    if ticket.done():
                        self._note_hedge_loss(job)
                        return
                try:
                    with obs.span("serve.request", cat="serve",
                                  method=req.method,
                                  natoms=req.molecule.natoms,
                                  key=ticket.key[:16]):
                        result = self._solve(req, ticket.key)
                except DiagnosticError as exc:
                    result = SolveResult(key=ticket.key,
                                         status="failed",
                                         method=req.method,
                                         error=str(exc))
                    self._observe_counter("serve.failures")
                    with self._lock:
                        self._stats.failed += 1
                except Exception as exc:  # lint: ignore[RPR003]
                    # Anything a solve can throw — OSError from the
                    # disk cache tier, a numpy shape error — is a
                    # retryable failure when a RetryPolicy is armed,
                    # and otherwise a failed *result*, never a dead
                    # worker thread: the rest of the popped batch must
                    # still run and every ticket must resolve.
                    if self._maybe_retry(job, exc):
                        retried = True
                        return
                    result = SolveResult(
                        key=ticket.key, status="failed",
                        method=req.method,
                        error=f"{type(exc).__name__}: {exc}")
                    self._observe_counter("serve.failures")
                    with self._lock:
                        self._stats.failed += 1
            result.wait_seconds = wait
            result.service_seconds = time.monotonic() - started
            result.worker = wid
            result.attempt = job.attempt
            # Resolve before recording: a failure in the (obs-touching)
            # latency bookkeeping must not replace a good result with
            # the finally-block's "internal error" fallback.
            if ticket._set(result):
                self._record_latency(result)
                if self._admission is not None and result.ok:
                    self._admission.note_service_seconds(
                        result.service_seconds)
                if job.hedge:
                    with self._lock:
                        self._stats.hedge_wins += 1
                    self._observe_counter("serve.hedge.wins")
            else:
                # The other attempt landed first; this result is
                # discarded (first-set-wins).
                self._note_hedge_loss(job)
        finally:
            if not retried:
                # The ticket always resolves — even if bookkeeping
                # threw — except when a retry now owns it.
                if not ticket.done():
                    ticket._set(SolveResult(
                        key=ticket.key, status="failed",
                        error="internal error before a result was "
                              "built"))
                self._finalize(ticket)

    def _record_latency(self, result: SolveResult) -> None:
        with self._lock:
            if result.ok:
                self._stats.completed += 1
                if result.status == "degraded":
                    self._stats.degraded += 1
            level = result.cache
            self._stats.by_level[level] = \
                self._stats.by_level.get(level, 0) + 1
            self._waits.append(result.wait_seconds)
            self._services.append(result.service_seconds)
        if obs.is_enabled():
            obs.registry.histogram(
                "serve.wait_seconds", "queue wait per request",
                bounds=LATENCY_BOUNDS_SECONDS).observe(result.wait_seconds)
            obs.registry.histogram(
                "serve.service_seconds", "execution time per request",
                bounds=LATENCY_BOUNDS_SECONDS).observe(
                    result.service_seconds)
            obs.registry.counter("serve.completed",
                                 "requests that reached a terminal "
                                 "status").inc()

    # -- the solve ---------------------------------------------------------

    def _surfaced(self, molecule: Molecule) -> Molecule:
        """Attach a surface, reusing the cached samples when present."""
        if molecule.surface is not None:
            return molecule
        skey = surface_key(molecule)
        hit = self.cache.get(skey)
        if isinstance(hit, CachedArrays):
            return Molecule(molecule.positions, molecule.charges,
                            molecule.radii,
                            surface=SurfaceSamples(**hit.arrays),
                            name=molecule.name)
        with obs.span("serve.sample_surface", cat="serve",
                      natoms=molecule.natoms):
            molecule = sample_surface(molecule)
        surf = molecule.require_surface()
        self.cache.put(skey, CachedArrays(
            {"points": surf.points, "normals": surf.normals,
             "weights": surf.weights}))
        return molecule

    def _solve(self, req: SolveRequest, key: str) -> SolveResult:
        mol = self._surfaced(req.molecule)
        ekey = epol_key(mol, req.params, req.method, req.tau)
        hit = self.cache.get(ekey)
        if isinstance(hit, CachedArrays):
            # Full-result hit: stored float64 arrays are bit-exact, so
            # this is the cold result, byte for byte.
            return SolveResult(
                key=key, status=str(hit.meta.get("status", "ok")),
                energy=float(hit.arrays["energy"]),
                born_radii=np.asarray(hit.arrays["radii"],
                                      dtype=np.float64),
                method=str(hit.meta.get("method", req.method)),
                rung=str(hit.meta.get("rung", "")),
                degradations=int(hit.meta.get("degradations", 0)),
                cache="epol")

        warm, level = self._warm_start(mol, req)
        guarded = GuardedSolver(mol, req.params, method=req.method,
                                tau=req.tau, policy=self.policy,
                                warm=warm)
        report = guarded.report()
        self._store_artifacts(mol, req, ekey, report, guarded, warm)
        status = "degraded" if report.degradations else "ok"
        return SolveResult(
            key=key, status=status, energy=report.energy,
            born_radii=report.born_radii, method=report.method,
            rung=report.rung, degradations=report.degradations,
            guard_events=list(report.events), cache=level)

    def _warm_start(self, mol: Molecule,
                    req: SolveRequest) -> "tuple[Optional[WarmStart], str]":
        """Deepest cached artifacts for this request, plus the level
        label ('born' ⊃ 'trees' ⊃ 'cold')."""
        if req.method == "naive":
            return None, "cold"
        atoms_tree = q_tree = None
        trees = self.cache.get(trees_key(mol, req.params))
        if isinstance(trees, tuple) and len(trees) == 2:
            atoms_tree, q_tree = trees
        radii = None
        born = self.cache.get(born_key(mol, req.params, req.method))
        if isinstance(born, CachedArrays):
            radii = np.asarray(born.arrays["radii"], dtype=np.float64)
        if atoms_tree is None and radii is None:
            return None, "cold"
        level = "born" if radii is not None else "trees"
        return WarmStart(atoms_tree=atoms_tree, q_tree=q_tree,
                         born_radii=radii), level

    def _store_artifacts(self, mol: Molecule, req: SolveRequest,
                         ekey: str, report, guarded: GuardedSolver,
                         warm: Optional[WarmStart]) -> None:
        primary = report.rung == "primary" or \
            report.rung.startswith("retry")
        inner = guarded.inner_solver
        if inner is not None and req.method != "naive" \
                and inner._atoms_tree is not None \
                and inner._q_tree is not None \
                and (warm is None or warm.atoms_tree is None):
            self.cache.put(trees_key(mol, req.params),
                           (inner._atoms_tree, inner._q_tree))
        if primary and (warm is None or warm.born_radii is None):
            # Radii of the requested (un-tightened) params only — a
            # degraded rung's radii answer different parameters and
            # must not poison the primary key.
            self.cache.put(
                born_key(mol, req.params, req.method),
                CachedArrays({"radii": np.asarray(report.born_radii,
                                                  dtype=np.float64)}))
        self.cache.put(ekey, CachedArrays(
            {"radii": np.asarray(report.born_radii, dtype=np.float64),
             "energy": np.asarray(float(report.energy))},
            meta={"status": ("degraded" if report.degradations
                             else "ok"),
                  "method": report.method, "rung": report.rung,
                  "degradations": int(report.degradations)}))

    # -- stats -------------------------------------------------------------

    @staticmethod
    def _observe_counter(name: str) -> None:
        if obs.is_enabled():
            obs.registry.counter(name, "solve-service request "
                                       "accounting").inc()

    def stats(self) -> ServeStats:
        """Snapshot (meaningful after :meth:`drain` for quantiles)."""
        with self._lock:
            snap = ServeStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                failed=self._stats.failed,
                expired=self._stats.expired,
                coalesced=self._stats.coalesced,
                rejected=self._stats.rejected,
                degraded=self._stats.degraded,
                shed=self._stats.shed,
                cancelled=self._stats.cancelled,
                worker_crashes=self._stats.worker_crashes,
                worker_restarts=self._stats.worker_restarts,
                requeued=self._stats.requeued,
                retries=self._stats.retries,
                hedges=self._stats.hedges,
                hedge_wins=self._stats.hedge_wins,
                hedge_cancelled=self._stats.hedge_cancelled,
                by_level=dict(self._stats.by_level),
                wait_p50=_quantile(self._waits, 50),
                wait_p99=_quantile(self._waits, 99),
                service_p50=_quantile(self._services, 50),
                service_p99=_quantile(self._services, 99),
            )
        snap.cache = self.cache.stats()
        return snap
