"""Recovery machinery for the solve service.

Four pieces, all pay-for-what-you-use (a service constructed without
them takes no locks and runs no extra threads):

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *seeded deterministic* jitter: the jitter for attempt *k* of request
  *key* is a pure function of ``(seed, key, k)``, so two same-seed runs
  produce identical backoff schedules (property-tested in
  ``tests/serve/test_resilience.py``).  Deadline math uses
  ``time.monotonic()`` exclusively (lint rule RPR009).  Optional
  ``hedge_after_s`` arms a hedged re-submit for requests stuck behind a
  straggling worker; the first completed attempt wins (tickets are
  first-set-wins) and the loser is cancelled at its next checkpoint.

* :class:`CircuitBreaker` — classic closed → open → half-open state
  machine over a count-based sliding window, wrapped around the
  :class:`~repro.serve.cache.ArtifactCache` disk tier so a failing
  disk degrades to memory-only caching instead of charging
  ``disk_errors`` (and a filesystem round-trip) on every request.

* :class:`AdmissionController` — sheds load with a typed
  :class:`~repro.serve.errors.ServiceOverloadedError` carrying a
  retry-after hint when queue depth or projected wait breach the
  configured SLO thresholds, *ahead* of hard
  :class:`~repro.serve.errors.QueueFullError` backpressure.

* :class:`DelayTimer` — a single scheduler thread delivering delayed
  callbacks (retry requeues, hedge arms) off the worker threads.  It
  waits on a condition with a computed timeout (never sleep-polls) and
  ``close()`` flushes every pending callback synchronously, so a retry
  scheduled moments before shutdown still resolves its ticket — the
  zero-stranded-tickets invariant survives the timer.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.serve.errors import ServiceOverloadedError

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "AdmissionPolicy",
    "AdmissionController",
    "DelayTimer",
]


# ---------------------------------------------------------------------------
# Retry / hedging
# ---------------------------------------------------------------------------


def _unit_jitter(seed: int, key: str, attempt: int) -> float:
    """Uniform in [0, 1) as a pure function of (seed, key, attempt)."""
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware bounded retry with deterministic jitter.

    ``backoff(key, attempt)`` is the pause before re-queueing attempt
    ``attempt + 1`` (attempts are 1-based; attempt 1 needs no backoff).
    The base grows geometrically and is modulated by ±``jitter`` using
    the seeded hash above — deterministic, but de-synchronized across
    keys so a burst of failures does not retry in lockstep.

    ``hedge_after_s`` (optional) arms a duplicate submission if the
    first attempt has not completed after that long in execution —
    the straggler escape hatch.  Hedges consume an attempt.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be positive")

    def backoff(self, key: str, attempt: int) -> float:
        """Seconds to wait after ``attempt`` failed (attempt >= 1)."""
        base = min(self.max_backoff_s,
                   self.base_backoff_s * self.multiplier ** (attempt - 1))
        u = _unit_jitter(self.seed, key, attempt)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))

    def next_backoff(self, key: str, attempt: int,
                     remaining_s: Optional[float]) -> Optional[float]:
        """Backoff before attempt ``attempt + 1``, or None to give up.

        ``remaining_s`` is the monotonic-clock budget left before the
        request's deadline (None = no deadline); a retry whose backoff
        alone would overrun it is pointless and is not scheduled.
        """
        if attempt >= self.max_attempts:
            return None
        pause = self.backoff(key, attempt)
        if remaining_s is not None and pause >= remaining_s:
            return None
        return pause

    def schedule(self, key: str,
                 deadline_s: Optional[float] = None) -> List[float]:
        """The full backoff schedule this policy would produce for
        ``key`` — one pause per failed attempt, truncated so the
        cumulative pause never exceeds ``deadline_s``."""
        out: List[float] = []
        spent = 0.0
        for attempt in range(1, self.max_attempts):
            remaining = (None if deadline_s is None
                         else deadline_s - spent)
            pause = self.next_backoff(key, attempt, remaining)
            if pause is None:
                break
            out.append(pause)
            spent += pause
        return out


# ---------------------------------------------------------------------------
# Circuit breaker (disk tier)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for :class:`CircuitBreaker`.

    The window is count-based (last ``window`` outcomes); the breaker
    opens when at least ``min_samples`` outcomes are recorded and the
    failure fraction reaches ``failure_threshold``.  After
    ``open_seconds`` it lets ``half_open_probes`` calls through: all
    succeed → closed, any fails → open again.
    """

    window: int = 20
    failure_threshold: float = 0.5
    min_samples: int = 5
    open_seconds: float = 5.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if self.min_samples > self.window:
            raise ValueError("min_samples cannot exceed window")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.open_seconds < 0:
            raise ValueError("open_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """closed → open → half-open state machine over recent outcomes.

    ``allow()`` asks permission before an operation; the caller then
    reports ``record_success()`` / ``record_failure()``.  ``clock`` is
    injectable (monotonic by default) so the state machine is unit-
    testable without real waits.  Thread-safe; its lock is leaf-level
    (nothing else is ever acquired under it).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: Optional[BreakerPolicy] = None, *,
                 name: str = "serve.cache.disk",
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or BreakerPolicy()
        self.name = name
        self._clock = clock
        self._lock = obs.named_lock(f"serve.breaker[{name}]._lock")
        self._state = self.CLOSED          # guarded-by: _lock
        self._outcomes: List[bool] = []    # guarded-by: _lock
        self._opened_at = 0.0              # guarded-by: _lock
        self._probes_left = 0              # guarded-by: _lock
        self._open_count = 0               # guarded-by: _lock
        self._shorted = 0                  # guarded-by: _lock

    @property
    def state(self) -> str:
        with self._lock:
            return self._maybe_half_open()

    @property
    def open_count(self) -> int:
        with self._lock:
            return self._open_count

    @property
    def short_circuited(self) -> int:
        """Operations refused while open."""
        with self._lock:
            return self._shorted

    def _maybe_half_open(self) -> str:
        # guarded-by: _lock (callers hold it)
        if (self._state == self.OPEN
                and self._clock() - self._opened_at
                >= self.policy.open_seconds):
            self._state = self.HALF_OPEN
            self._probes_left = self.policy.half_open_probes
            obs.instant(f"breaker.half_open[{self.name}]", cat="fault")
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the protected operation now?"""
        with self._lock:
            state = self._maybe_half_open()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            self._shorted += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                if self._probes_left == 0:
                    self._trip_closed()
                return
            self._push(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._trip_open()
                return
            self._push(False)
            n = len(self._outcomes)
            failures = n - sum(self._outcomes)
            if (n >= self.policy.min_samples
                    and failures / n >= self.policy.failure_threshold):
                self._trip_open()

    def _push(self, ok: bool) -> None:
        # guarded-by: _lock (callers hold it)
        self._outcomes.append(ok)
        if len(self._outcomes) > self.policy.window:
            del self._outcomes[0]

    def _trip_open(self) -> None:
        # guarded-by: _lock (callers hold it)
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()
        self._open_count += 1
        obs.registry.counter(
            "serve.breaker.opens",
            "circuit breaker closed/half-open -> open transitions").inc()
        obs.instant(f"breaker.open[{self.name}]", cat="fault")

    def _trip_closed(self) -> None:
        # guarded-by: _lock (callers hold it)
        self._state = self.CLOSED
        self._outcomes.clear()
        obs.registry.counter(
            "serve.breaker.closes",
            "circuit breaker half-open -> closed transitions").inc()
        obs.instant(f"breaker.close[{self.name}]", cat="fault")


# ---------------------------------------------------------------------------
# Admission control (load shedding)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionPolicy:
    """SLO thresholds for :class:`AdmissionController`.

    ``max_queue_depth`` sheds when the backlog (queued + executing)
    reaches it; ``max_wait_seconds`` sheds when the projected wait —
    backlog × smoothed per-job service time ÷ workers — would breach
    the latency SLO.  Either may be None (unchecked).
    """

    max_queue_depth: Optional[int] = None
    max_wait_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if (self.max_wait_seconds is not None
                and self.max_wait_seconds <= 0):
            raise ValueError("max_wait_seconds must be positive")


class AdmissionController:
    """Sheds load ahead of hard queue backpressure.

    Service-time estimates come from an exponential moving average the
    service feeds after every completed job; a fresh controller (no
    samples yet) admits on depth alone.  Shedding raises
    :class:`ServiceOverloadedError` whose ``retry_after_s`` projects
    when the backlog will have drained below the threshold.
    """

    def __init__(self, policy: AdmissionPolicy, *,
                 workers: int = 1, ema_alpha: float = 0.2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.policy = policy
        self.workers = workers
        self._alpha = ema_alpha
        self._lock = obs.named_lock("serve.admission._lock")
        self._ema_service_s: Optional[float] = None  # guarded-by: _lock
        self._shed = 0                               # guarded-by: _lock

    @property
    def shed_count(self) -> int:
        with self._lock:
            return self._shed

    def note_service_seconds(self, seconds: float) -> None:
        """Feed one completed job's service time into the EMA."""
        if seconds < 0:
            return
        with self._lock:
            if self._ema_service_s is None:
                self._ema_service_s = seconds
            else:
                self._ema_service_s += self._alpha * (
                    seconds - self._ema_service_s)

    def projected_wait(self, depth: int) -> Optional[float]:
        """Projected queue wait for a request arriving at ``depth``."""
        with self._lock:
            ema = self._ema_service_s
        if ema is None:
            return None
        return depth * ema / self.workers

    def check(self, depth: int) -> None:
        """Admit or shed a request seeing ``depth`` jobs ahead of it.

        Raises :class:`ServiceOverloadedError` on shed.
        """
        pol = self.policy
        limit = pol.max_queue_depth
        if limit is not None and depth >= limit:
            self._shed_one()
            raise ServiceOverloadedError(
                self._retry_after(depth, limit), depth, limit)
        wait = (self.projected_wait(depth)
                if pol.max_wait_seconds is not None else None)
        if wait is not None and wait > pol.max_wait_seconds:
            # express the wait SLO as an equivalent depth limit for
            # the error payload
            with self._lock:
                ema = self._ema_service_s or 0.0
            eq_limit = (max(1, int(pol.max_wait_seconds
                                   * self.workers / ema))
                        if ema > 0 else depth)
            self._shed_one()
            raise ServiceOverloadedError(
                self._retry_after(depth, eq_limit), depth, eq_limit)

    def _shed_one(self) -> None:
        with self._lock:
            self._shed += 1
        obs.registry.counter(
            "serve.shed.total",
            "requests shed by admission control").inc()
        obs.instant("serve.shed", cat="serve")

    def _retry_after(self, depth: int, limit: int) -> float:
        """Time for the backlog to drain from ``depth`` below
        ``limit`` at the smoothed service rate (floor 1 ms)."""
        with self._lock:
            ema = self._ema_service_s
        if ema is None or ema <= 0:
            return 0.05
        excess = max(1, depth - limit + 1)
        return max(0.001, excess * ema / self.workers)


# ---------------------------------------------------------------------------
# Delayed-callback scheduler
# ---------------------------------------------------------------------------


class DelayTimer:
    """One thread delivering delayed callbacks in due order.

    Used by the service to arm retry requeues and hedge submissions
    without blocking a worker.  Callbacks run on the timer thread with
    no locks held; a callback that raises is counted and swallowed so
    one bad retry cannot kill the scheduler.

    ``close()`` runs every still-pending callback *synchronously*
    before returning: a retry scheduled just before shutdown is
    delivered early rather than dropped, letting the service resolve
    the ticket (typically to a failed result) instead of stranding it.
    After close, ``schedule`` runs the callback inline.
    """

    def __init__(self, name: str = "serve.timer") -> None:
        self.name = name
        self._lock = obs.named_lock(f"{name}._lock")
        self._cond = obs.named_condition(f"{name}._cond", self._lock)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        # guarded-by: _lock (heap, closed flag, error count)
        self._closed = False
        self._errors = 0
        self._seq = itertools.count()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def callback_errors(self) -> int:
        with self._lock:
            return self._errors

    def schedule(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay_s`` (inline if already closed)."""
        due = time.monotonic() + max(0.0, delay_s)
        with self._lock:
            if not self._closed:
                heapq.heappush(self._heap, (due, next(self._seq), fn))
                self._cond.notify()
                return
        self._invoke(fn)

    def close(self) -> None:
        """Stop the thread, flushing pending callbacks synchronously."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [fn for _, _, fn in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify()
        for fn in pending:
            self._invoke(fn)
        self._thread.join()

    def _invoke(self, fn: Callable[[], None]) -> None:
        try:
            fn()
        # Deliberate isolation boundary: a failing retry/hedge callback
        # must not kill the shared timer thread; the failure is counted
        # and surfaced as serve.timer.callback_errors.
        except Exception:  # lint: ignore[RPR003]
            with self._lock:
                self._errors += 1
            obs.registry.counter(
                "serve.timer.callback_errors",
                "exceptions raised by delayed callbacks").inc()

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._closed and (
                        not self._heap
                        or self._heap[0][0] > time.monotonic()):
                    if self._heap:
                        timeout = self._heap[0][0] - time.monotonic()
                        self._cond.wait(timeout=max(0.0, timeout))
                    else:
                        self._cond.wait()
                if self._closed:
                    return
                _, _, fn = heapq.heappop(self._heap)
            self._invoke(fn)
