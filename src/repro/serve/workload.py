"""Workload generation and loading for the solve service.

Two sources of requests:

* :func:`synthetic_workload` — a seeded mixed-tenant stream: a small
  pool of distinct molecules × an ε grid, drawn with repetition, so a
  realistic fraction of the stream re-asks recent questions (the
  cache-hit opportunity the service exists for);
* :func:`load_workload` — a JSON workload file (one document holding a
  ``requests`` list, or a bare list), each entry naming a molecule
  recipe (``atoms``/``seed``/``capsid``) plus per-request knobs.

Both return plain :class:`~repro.serve.request.SolveRequest` lists;
molecules are built once per distinct recipe and shared across the
requests that reference them, so fingerprints (and therefore cache
keys and coalescing) line up without re-hashing identical arrays from
separate constructions.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.config import ApproxParams
from repro.molecules.generator import synthetic_protein, virus_capsid
from repro.molecules.molecule import Molecule
from repro.serve.request import SolveRequest

__all__ = ["synthetic_workload", "load_workload"]

#: (atoms, seed, capsid) → built molecule, shared within one loader call.
_Recipe = Tuple[int, int, bool]


def _molecule(cache: Dict[_Recipe, Molecule], atoms: int, seed: int,
              capsid: bool = False) -> Molecule:
    recipe = (int(atoms), int(seed), bool(capsid))
    mol = cache.get(recipe)
    if mol is None:
        mol = (virus_capsid(recipe[0], seed=recipe[1]) if capsid
               else synthetic_protein(recipe[0], seed=recipe[1]))
        cache[recipe] = mol
    return mol


def synthetic_workload(n: int, seed: int = 0, molecules: int = 3,
                       atoms: int = 300,
                       eps_grid: Sequence[float] = (0.9, 0.5),
                       deadline_s: Union[float, None] = None,
                       tenants: Union[Sequence[str], None] = None
                       ) -> List[SolveRequest]:
    """A seeded stream of ``n`` mixed requests over a molecule pool.

    Molecule sizes step up from ``atoms`` so the pool is heterogeneous;
    priorities 0–2 and the ε grid are drawn per request.  With
    ``n >> molecules × len(eps_grid)`` the stream necessarily repeats
    itself, which is what exercises coalescing and the artifact cache.

    ``tenants``, when given, attributes each request to a tenant drawn
    from the list — multi-tenant edge traffic from one seed.  The
    tenant draws happen in a second pass *after* every molecule/ε/
    priority draw, so the underlying request stream (molecules, ε
    grid, priorities) is byte-identical with and without the knob.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    built: Dict[_Recipe, Molecule] = {}
    pool = [_molecule(built, atoms + 60 * i, seed + i)
            for i in range(max(1, molecules))]
    requests = []
    for _ in range(n):
        mol = pool[int(rng.integers(len(pool)))]
        params = ApproxParams(
            eps_epol=float(eps_grid[int(rng.integers(len(eps_grid)))]))
        priority = int(rng.integers(3))
        requests.append(SolveRequest(
            molecule=mol, params=params, method="octree",
            priority=priority, deadline_s=deadline_s))
    if tenants:
        requests = [replace(req, tenant=str(
            tenants[int(rng.integers(len(tenants)))]))
            for req in requests]
    return requests


def load_workload(path: Union[str, Path]) -> List[SolveRequest]:
    """Read a JSON workload file into requests.

    Entry schema (all fields optional except ``atoms``)::

        {"atoms": 300, "seed": 0, "capsid": false,
         "eps_born": 0.9, "eps_epol": 0.9, "method": "octree",
         "priority": 0, "deadline_s": null, "repeat": 1,
         "tenant": "default"}

    ``repeat`` expands one entry into that many identical requests
    (the canonical way to script cache-hit traffic); every expanded
    copy keeps the entry's ``tenant``, so a trace file scripts
    multi-tenant traffic for the HTTP edge
    (:func:`repro.edge.app.workload_bodies` is the body-side mirror).
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = doc.get("requests", []) if isinstance(doc, dict) else doc
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected a non-empty list of "
                         f"request entries (or {{'requests': [...]}})")
    built: Dict[_Recipe, Molecule] = {}
    requests: List[SolveRequest] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "atoms" not in entry:
            raise ValueError(f"{path}: entry {i} must be an object "
                             f"with at least an 'atoms' field")
        mol = _molecule(built, entry["atoms"], entry.get("seed", 0),
                        entry.get("capsid", False))
        params = ApproxParams(
            eps_born=float(entry.get("eps_born", 0.9)),
            eps_epol=float(entry.get("eps_epol", 0.9)),
            approx_math=bool(entry.get("approx_math", False)))
        req = SolveRequest(
            molecule=mol, params=params,
            method=str(entry.get("method", "octree")),
            priority=int(entry.get("priority", 0)),
            deadline_s=entry.get("deadline_s"),
            tenant=str(entry.get("tenant", "default")))
        requests.extend([req] * max(1, int(entry.get("repeat", 1))))
    return requests
