"""Request/response model of the solve service.

A :class:`SolveRequest` is everything one tenant asks for — molecule,
approximation parameters, traversal method, priority, an optional
deadline and an optional idempotency key.  The key defaults to a
content fingerprint of the inputs (see
:func:`repro.core.fingerprint.arrays_fingerprint`), which is what lets
the service coalesce duplicate in-flight requests: two tenants asking
for the same molecule at the same ε share one computation and receive
the same :class:`SolveResult`.

A :class:`SolveResult` always comes back — failures, expired deadlines
and degraded (guard-ladder) runs are *statuses*, never silent drops —
and carries the cache level that served it plus queue-wait and service
timings so callers can see exactly what they paid for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.fingerprint import arrays_fingerprint
from repro.core.solver import METHODS
from repro.guard.solver import GuardEvent
from repro.molecules.molecule import Molecule

__all__ = ["SolveRequest", "SolveResult", "STATUSES", "CACHE_LEVELS"]

#: Terminal request statuses (every submitted request reaches one).
STATUSES = ("ok", "degraded", "expired", "failed")

#: Deepest artifact a solve reused, best to worst: a full-result hit,
#: warm Born radii, warm octrees only, nothing.
CACHE_LEVELS = ("epol", "born", "trees", "cold")


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's solve order.

    Parameters
    ----------
    molecule:
        The molecule to solve (a surface is attached by the service —
        and cached — when absent).
    params:
        Approximation parameters (the ε knobs).
    method:
        Traversal method, as in :class:`repro.core.PolarizationSolver`.
    priority:
        Lower pops first; equal priorities are FIFO.
    deadline_s:
        Optional wall-clock budget in seconds, measured from submit.
        A request whose deadline passes while still queued is *not*
        executed; its result has ``status="expired"``.
    idempotency_key:
        Coalescing key; empty → derived from the request content, so
        identical requests coalesce automatically.
    tau:
        Dielectric prefactor (see :data:`repro.constants.TAU_WATER`).
    tenant:
        Which tenant submitted the request (the HTTP edge fills this
        from the bearer token; workload files may script it).  Pure
        attribution: it is deliberately *not* part of the content
        fingerprint, so two tenants asking the same question still
        coalesce into one computation.
    """

    molecule: Molecule
    params: ApproxParams = ApproxParams()
    method: str = "octree"
    priority: int = 0
    deadline_s: Optional[float] = None
    idempotency_key: str = ""
    tau: float = TAU_WATER
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")

    def key(self) -> str:
        """Idempotency key: explicit, else a content fingerprint."""
        if self.idempotency_key:
            return self.idempotency_key
        return self.route_key()

    def route_key(self) -> str:
        """Content fingerprint of the inputs, ignoring the idempotency
        key.  The fleet router hashes this onto its ring so that
        repeats of the same molecule land on the same shard (memory-
        tier cache affinity) even when tenants attach distinct
        idempotency keys."""
        mol, surf = self.molecule, self.molecule.surface
        return "req-" + arrays_fingerprint(
            mol.positions, mol.charges, mol.radii,
            surf.points if surf is not None else None,
            surf.normals if surf is not None else None,
            surf.weights if surf is not None else None,
            extra=f"{self.params!r},{self.method},tau={self.tau!r}")


@dataclass
class SolveResult:
    """What one request produced (also delivered to coalesced callers).

    ``status`` is one of :data:`STATUSES`; ``ok`` and ``degraded``
    both carry a trustworthy energy (a degraded run finished on a
    lower guard-ladder rung — inspect ``rung``/``guard_events``).
    ``cache`` names the deepest artifact level reused
    (:data:`CACHE_LEVELS`).
    """

    key: str
    status: str
    energy: Optional[float] = None
    born_radii: Optional[np.ndarray] = None
    method: str = ""
    rung: str = ""
    degradations: int = 0
    guard_events: List[GuardEvent] = field(default_factory=list)
    cache: str = "cold"
    wait_seconds: float = 0.0
    service_seconds: float = 0.0
    worker: int = -1
    error: str = ""
    #: Which delivery attempt produced this result (1 = first try;
    #: higher after retries, hedges or a crash requeue).
    attempt: int = 1
    #: Fleet shard that produced the result (-1 = not fleet-served).
    shard: int = -1

    @property
    def ok(self) -> bool:
        """True when the result carries a usable energy."""
        return self.status in ("ok", "degraded")
