"""Typed errors of the solve service.

Every error follows the :class:`~repro.guard.errors.DiagnosticError`
conventions established in the guard layer: it names *where* the
problem happened (``phase="serve"``), carries whatever quantitative
context a caller needs to write policy against it (queue depth and
capacity, deadline and lateness), and — where one exists — a concrete
fix hint.  Each class keeps a ``RuntimeError`` base so pre-serve
callers written against the builtin keep working.
"""

from __future__ import annotations

from repro.guard.errors import DiagnosticError

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "ServiceOverloadedError",
]


class ServeError(DiagnosticError, RuntimeError):
    """Base of every error the solve service raises."""

    def __init__(self, message: str, *, phase: str = "serve",
                 hint: str = "") -> None:
        super().__init__(message, phase=phase, hint=hint)


class QueueFullError(ServeError):
    """The bounded job queue is at capacity — explicit backpressure.

    The service never blocks a submitter forever and never drops a
    request silently: a full queue is *this* error, carrying the
    observed ``depth`` and configured ``capacity`` so the caller can
    shed load, retry with backoff, or raise the capacity.
    """

    def __init__(self, depth: int, capacity: int) -> None:
        self.depth = int(depth)
        self.capacity = int(capacity)
        super().__init__(
            f"job queue full ({depth} of {capacity} slots)",
            hint="retry with backoff, lower the request rate, or "
                 "raise queue_capacity")


class DeadlineExceededError(ServeError):
    """A request's deadline passed before (or while) it was served.

    ``late_by`` is how many seconds past the deadline the service
    noticed; the request was *not* executed past this point.
    """

    def __init__(self, deadline_s: float, late_by: float) -> None:
        self.deadline_s = float(deadline_s)
        self.late_by = float(late_by)
        super().__init__(
            f"deadline of {deadline_s:g}s exceeded by {late_by:.3f}s "
            f"before the solve ran",
            hint="raise the deadline, the worker count, or the "
                 "request priority")


class ServiceClosedError(ServeError):
    """Submit/drain called on a service that was already closed."""

    def __init__(self) -> None:
        super().__init__("the solve service is closed",
                         hint="create a new SolveService (or use it as "
                              "a context manager)")


class ServiceOverloadedError(ServeError):
    """Admission control shed this request — soft backpressure.

    Raised *ahead* of :class:`QueueFullError` when the configured SLO
    thresholds (queue depth, projected wait) are breached: the queue
    still has slots, but accepting the request would blow its latency
    budget anyway.  ``retry_after_s`` is the controller's estimate of
    when the backlog will have drained enough to admit it.
    """

    def __init__(self, retry_after_s: float, depth: int,
                 limit: int) -> None:
        self.retry_after_s = float(retry_after_s)
        self.depth = int(depth)
        self.limit = int(limit)
        super().__init__(
            f"service overloaded (queue depth {depth}, admission "
            f"limit {limit}); retry after {retry_after_s:.3f}s",
            hint="back off for retry_after_s, lower the request rate, "
                 "or raise the admission thresholds")
