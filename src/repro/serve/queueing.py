"""Bounded priority job queue with explicit backpressure.

The service's admission policy lives here and is deliberately blunt:

* the queue holds at most ``capacity`` jobs — a ``put`` into a full
  queue raises :class:`~repro.serve.errors.QueueFullError` *immediately*
  (it never blocks forever and never drops silently); callers that
  prefer to wait do so explicitly via :meth:`wait_not_full` with a
  timeout;
* jobs pop lowest ``priority`` first, FIFO within a priority (a
  monotonically increasing sequence number breaks ties, so equal
  priorities can never compare the payloads);
* all waiting is :class:`threading.Condition` based — there are no
  ``time.sleep`` polling loops anywhere in this package, a property
  lint rule RPR008 enforces.

``close()`` wakes every waiter; a closed queue still *drains* — ``get``
keeps returning queued jobs until the heap is empty and only then
returns ``None``, the worker-shutdown sentinel — so closing the
service never abandons accepted work.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

import repro.obs as obs
from repro.serve.errors import QueueFullError, ServiceClosedError

__all__ = ["BoundedPriorityQueue"]


class BoundedPriorityQueue:
    """Thread-safe bounded min-heap of ``(priority, seq, item)``."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self._heap: List[Tuple[int, int, Any]] = []  # guarded-by: _lock
        self._seq = itertools.count()
        # Witness-aware: plain threading primitives unless a
        # LockWitness is installed (repro.obs.lockwitness).
        self._lock = obs.named_lock("serve.queue._lock")
        self._not_empty = obs.named_condition("serve.queue._not_empty",
                                              self._lock)
        self._not_full = obs.named_condition("serve.queue._not_full",
                                             self._lock)
        self._closed = False                         # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def _observe_depth(self) -> None:
        if obs.is_enabled():
            obs.registry.gauge("serve.queue.depth",
                               "jobs waiting in the solve-service "
                               "queue").set(len(self._heap))

    # -- producer side -----------------------------------------------------

    def put(self, item: Any, priority: int = 0) -> None:
        """Enqueue ``item``; :class:`QueueFullError` at capacity."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError()
            if len(self._heap) >= self.capacity:
                raise QueueFullError(len(self._heap), self.capacity)
            heapq.heappush(self._heap,
                           (int(priority), next(self._seq), item))
            self._observe_depth()
            self._not_empty.notify()

    def requeue(self, item: Any, priority: int = 0) -> None:
        """Re-enqueue recovered work, bypassing capacity *and* close.

        Supervision and retry use this for jobs the service already
        accepted (their tickets are outstanding): rejecting them at a
        full or closing queue would strand a ticket, so recovered jobs
        always land — the transient over-capacity is bounded by the
        in-flight batch size.
        """
        with self._lock:
            heapq.heappush(self._heap,
                           (int(priority), next(self._seq), item))
            self._observe_depth()
            self._not_empty.notify()

    def wait_empty(self, timeout: Optional[float] = None) -> bool:
        """Block until the heap is empty (all queued jobs picked up by
        workers — *not* necessarily completed) or ``timeout`` elapses;
        True iff empty."""
        with self._lock:
            # get()/get_batch() notify _not_full on every pop, so an
            # emptying heap always wakes this waiter.
            self._not_full.wait_for(lambda: not self._heap, timeout)
            return not self._heap

    def wait_not_full(self, timeout: Optional[float]) -> bool:
        """Block (condition wait) until a slot frees up, the queue
        closes, or ``timeout`` elapses; True iff a slot is free."""
        with self._lock:
            self._not_full.wait_for(
                lambda: self._closed or len(self._heap) < self.capacity,
                timeout)
            if self._closed:
                raise ServiceClosedError()
            return len(self._heap) < self.capacity

    # -- consumer side -----------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the best job, waiting while the queue is open but empty.

        Returns ``None`` when the queue is closed *and* drained (the
        worker-shutdown sentinel) or when ``timeout`` elapses first.
        """
        with self._lock:
            self._not_empty.wait_for(
                lambda: self._heap or self._closed, timeout)
            if not self._heap:
                return None
            _, _, item = heapq.heappop(self._heap)
            self._observe_depth()
            # notify_all: both wait_not_full and wait_empty waiters
            # share this condition; a single notify could wake only
            # the one whose predicate is still false.
            self._not_full.notify_all()
            return item

    def get_batch(self, max_items: int,
                  timeout: Optional[float] = None) -> Optional[List[Any]]:
        """Pop up to ``max_items`` jobs: one blocking :meth:`get`, then
        whatever else is immediately available (no further waiting), in
        priority order.  ``None`` only when the queue is closed and
        drained."""
        first = self.get(timeout)
        if first is None:
            return None
        batch = [first]
        with self._lock:
            while self._heap and len(batch) < max_items:
                _, _, item = heapq.heappop(self._heap)
                batch.append(item)
            self._observe_depth()
            self._not_full.notify_all()
        return batch

    def close(self) -> None:
        """Refuse new puts and wake every waiter; queued jobs drain."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
