"""Fingerprint-keyed two-tier artifact cache.

The solve pipeline decomposes into cacheable phases (paper Figs. 2–4):
surface sampling → octree construction → Born radii → energy.  Each
phase's output depends on a *subset* of the request, so artifacts are
keyed in layers — and a parameter change invalidates exactly the
layers it touches:

========  =================================================  =========
artifact  key covers                                         disk tier
========  =================================================  =========
surface   positions, radii, sampling knobs                   yes
trees     positions, surface points, leaf_size, max_depth    no
born      geometry + surface, eps_born, born_mac,            yes
          approx_math, leaf/depth, method
epol      everything (adds charges, eps_epol, tau)           yes
========  =================================================  =========

Changing ``eps_epol`` therefore re-runs only the energy pass on warm
radii and trees; changing the molecule misses every layer.  Charges
deliberately do not enter the surface/trees/born keys — Born radii are
a pure geometry integral — so re-charged variants of one scaffold
share the expensive artifacts.

The memory tier is an LRU bounded by a byte budget.  The optional disk
tier reuses the ``REPRO-CKPT`` checkpoint format from
:mod:`repro.guard.checkpoint` (versioned, checksummed, atomic writes)
for array artifacts, so a restarted service re-warms from disk and a
corrupt file surfaces as a counted miss, never as wrong physics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.config import ApproxParams
from repro.core.fingerprint import arrays_fingerprint
from repro.faults.errors import DiskFaultError
from repro.faults.plan import ServeFaultPlan
from repro.guard.checkpoint import CheckpointStore
from repro.guard.errors import CheckpointError
from repro.molecules.molecule import Molecule
from repro.serve.resilience import CircuitBreaker

__all__ = ["ArtifactCache", "CachedArrays", "CacheStats",
           "surface_key", "trees_key", "born_key", "epol_key",
           "DEFAULT_CACHE_BYTES"]

#: Default memory-tier budget: enough for a few hundred protein-sized
#: artifact sets without threatening a laptop.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


# -- layered keys ----------------------------------------------------------

def surface_key(molecule: Molecule, subdivisions: int = 1,
                degree: int = 1, probe_radius: float = 0.0,
                cull_tolerance: float = 1e-9) -> str:
    """Key of the sampled surface: geometry + sampling knobs only."""
    return "surface-" + arrays_fingerprint(
        molecule.positions, molecule.radii,
        extra=f"surf:{subdivisions},{degree},{probe_radius!r},"
              f"{cull_tolerance!r}")


def trees_key(molecule: Molecule, params: ApproxParams) -> str:
    """Key of the (atoms, quadrature-points) octree pair."""
    surf = molecule.require_surface()
    return "trees-" + arrays_fingerprint(
        molecule.positions, surf.points,
        extra=f"trees:{params.leaf_size},{params.max_depth}")


def born_key(molecule: Molecule, params: ApproxParams,
             method: str) -> str:
    """Key of the Born radii: geometry + Born-phase knobs (no charges,
    no ``eps_epol`` — radii do not depend on either)."""
    surf = molecule.require_surface()
    return "born-" + arrays_fingerprint(
        molecule.positions, molecule.radii,
        surf.points, surf.normals, surf.weights,
        extra=f"born:{method},{params.eps_born!r},{params.born_mac},"
              f"{params.approx_math},{params.leaf_size},"
              f"{params.max_depth}")


def epol_key(molecule: Molecule, params: ApproxParams, method: str,
             tau: float) -> str:
    """Key of the full result: every input that steers the energy."""
    surf = molecule.require_surface()
    return "epol-" + arrays_fingerprint(
        molecule.positions, molecule.charges, molecule.radii,
        surf.points, surf.normals, surf.weights,
        extra=f"epol:{method},{params!r},tau={tau!r}")


# -- values ----------------------------------------------------------------

@dataclass
class CachedArrays:
    """An array-valued artifact (the disk-tierable kind)."""

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any] = field(default_factory=dict)

    def nbytes(self) -> int:
        return sum(int(np.asarray(a).nbytes)
                   for a in self.arrays.values())


def _estimate_nbytes(value: Any) -> int:
    """Bytes a cache entry occupies (LRU budget accounting)."""
    if isinstance(value, CachedArrays):
        return value.nbytes()
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(_estimate_nbytes(v) for v in value.values())
    if isinstance(value, (tuple, list)):
        return sum(_estimate_nbytes(v) for v in value)
    nbytes = getattr(value, "nbytes", None)
    if callable(nbytes):
        return int(nbytes())
    return 64  # scalars / small metadata


@dataclass
class CacheStats:
    """Point-in-time snapshot of the cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    disk_skipped: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactCache:
    """Byte-budgeted LRU over fingerprint keys, with a disk tier.

    ``get``/``put`` are thread-safe; workers of one service share one
    instance.  Disk persistence applies to :class:`CachedArrays`
    values only (octrees stay memory-resident — they are cheap to
    rebuild relative to their serialized size).  A memory eviction
    does not touch the disk tier: disk is the slower, larger second
    level, bounded separately by ``disk_max_bytes`` (oldest files
    dropped first).
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES,
                 disk_dir: Union[str, Path, None] = None,
                 disk_max_bytes: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 fault_plan: Optional[ServeFaultPlan] = None,
                 name: str = "") -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        #: Optional instance label ("shard3"): metric names gain a
        #: ``.<name>`` suffix so each fleet shard's hit/miss/byte
        #: series stays distinguishable.  Empty (the default) keeps
        #: the original single-service metric names.
        self.name = str(name)
        self._suffix = f".{self.name}" if self.name else ""
        self.max_bytes = int(max_bytes)
        self.disk_max_bytes = disk_max_bytes
        #: Optional breaker around the disk tier: when open, loads and
        #: saves are skipped (counted in ``disk_skipped``) instead of
        #: charging an error and a filesystem round-trip per request.
        self.breaker = breaker
        self._fault_plan = fault_plan
        self._disk_seq = {"load": 0, "save": 0,
                          "delete": 0}              # guarded-by: _lock
        self._layer_hits: Dict[str, int] = {}       # guarded-by: _lock
        self._lru: "OrderedDict[str, Tuple[Any, int]]" = \
            OrderedDict()                      # guarded-by: _lock
        self._bytes = 0                        # guarded-by: _lock
        # Witness-aware: plain threading primitives unless a
        # LockWitness is installed (repro.obs.lockwitness).
        self._lock = obs.named_lock("serve.cache._lock")
        # Cold pure-serialization mutex: guards no fields, only keeps
        # concurrent disk trims from racing each other's unlinks — it
        # may legitimately be held across the I/O it serializes.
        self._disk_lock = obs.named_lock("serve.cache._disk_lock")
        self._stats = CacheStats()             # guarded-by: _lock
        self._disk: Optional[CheckpointStore] = None
        if disk_dir is not None:
            self._disk = CheckpointStore(disk_dir)

    # -- accounting --------------------------------------------------------

    def _count(self, what: str, key: str) -> None:
        setattr(self._stats, what, getattr(self._stats, what) + 1)
        if obs.is_enabled():
            obs.registry.counter(f"serve.cache.{what}{self._suffix}",
                                 "artifact-cache events by kind").inc()
            artifact = key.split("-", 1)[0]
            obs.registry.counter(
                f"serve.cache.{what}.{artifact}{self._suffix}",
                "artifact-cache events by artifact layer").inc()

    def _update_gauges(self) -> None:
        if obs.is_enabled():
            obs.registry.gauge(f"serve.cache.bytes{self._suffix}",
                               "memory-tier bytes held").set(self._bytes)
            obs.registry.gauge(f"serve.cache.entries{self._suffix}",
                               "memory-tier entry count").set(
                                   len(self._lru))

    def stats(self) -> CacheStats:
        with self._lock:
            snap = CacheStats(**vars(self._stats))
            snap.entries = len(self._lru)
            snap.bytes = self._bytes
            return snap

    # -- the two tiers -----------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Memory tier first, then disk (promoting on a disk hit)."""
        with self._lock:
            entry = self._lru.get(key)
            if entry is not None:
                self._lru.move_to_end(key)
                self._count("hits", key)
                hit = entry[0]
            else:
                hit = None
        if hit is not None:
            return self._maybe_poison(key, hit)
        value = self._disk_load(key)
        if value is not None:
            with self._lock:
                self._count("disk_hits", key)
                self._count("hits", key)
            self._insert(key, value)  # promote
            return self._maybe_poison(key, value)
        with self._lock:
            self._count("misses", key)
        return None

    def put(self, key: str, value: Any,
            nbytes: Optional[int] = None) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries past the
        byte budget and mirrors array artifacts to the disk tier."""
        self._insert(key, value, nbytes)
        if isinstance(value, CachedArrays):
            self._disk_save(key, value)

    def _insert(self, key: str, value: Any,
                nbytes: Optional[int] = None) -> None:
        size = int(nbytes) if nbytes is not None \
            else _estimate_nbytes(value)
        with self._lock:
            old = self._lru.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._lru[key] = (value, size)
            self._bytes += size
            while self._bytes > self.max_bytes and self._lru:
                evicted_key, (_, evicted_size) = \
                    self._lru.popitem(last=False)
                self._bytes -= evicted_size
                self._count("evictions", evicted_key)
            self._update_gauges()

    def clear(self) -> None:
        """Drop the memory tier (counters and disk files are kept)."""
        with self._lock:
            self._lru.clear()
            self._bytes = 0
            self._update_gauges()

    # -- fault injection ---------------------------------------------------

    def _inject_disk_fault(self, op: str) -> None:
        """Raise :class:`DiskFaultError` if the plan targets this op.

        The per-op sequence numbers advance only while a plan with
        disk faults is installed, so injection is a pure function of
        the op order the workload itself determines.
        """
        plan = self._fault_plan
        if plan is None or not plan.has_disk_faults:
            return
        with self._lock:
            seq = self._disk_seq[op]
            self._disk_seq[op] = seq + 1
        if plan.disk_fault(op, seq) is not None:
            obs.instant(f"cache.disk_fault[{op}#{seq}]", cat="fault")
            raise DiskFaultError(op, seq)

    def _maybe_poison(self, key: str, value: Any) -> Any:
        """Return a corrupted *copy* on a poisoned hit (the cached
        entry itself stays pristine — this models a read-path flip).

        Only float arrays of :class:`CachedArrays` are corrupted; the
        guard layer treats warm data as untrusted, so a poisoned hit
        degrades the ladder, never the returned energy bits.
        """
        plan = self._fault_plan
        if plan is None or not plan.has_poisons:
            return value
        layer = key.split("-", 1)[0]
        with self._lock:
            occ = self._layer_hits.get(layer, 0)
            self._layer_hits[layer] = occ + 1
        poison = plan.poison_for(layer, occ, key)
        if poison is None or not isinstance(value, CachedArrays):
            return value
        obs.instant(f"cache.poison[{layer}#{occ}]", cat="fault")
        if obs.is_enabled():
            obs.registry.counter(
                "serve.cache.poisoned",
                "cache hits served with injected corruption").inc()
        arrays: Dict[str, np.ndarray] = {}
        for name, arr in value.arrays.items():
            a = np.asarray(arr)
            arrays[name] = (plan.poison_array(poison, layer, a)
                            if np.issubdtype(a.dtype, np.floating)
                            else a)
        return CachedArrays(arrays=arrays, meta=dict(value.meta))

    # -- disk tier ---------------------------------------------------------

    @staticmethod
    def _kind(key: str) -> str:
        # REPRO-CKPT kinds forbid "/\\."; fingerprints are hex + "-".
        return key

    def _allow_disk(self, key: str) -> bool:
        """Breaker gate: False means skip the disk op entirely."""
        if self.breaker is None or self.breaker.allow():
            return True
        with self._lock:
            self._count("disk_skipped", key)
        return False

    def _note_disk(self, ok: bool) -> None:
        if self.breaker is None:
            return
        if ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def _disk_load(self, key: str) -> Optional[CachedArrays]:
        if self._disk is None:
            return None
        if not self._allow_disk(key):
            return None
        try:
            self._inject_disk_fault("load")
            ck = self._disk.try_load(self._kind(key))
        except (CheckpointError, OSError) as exc:
            # Torn/corrupt file: a counted miss, never wrong physics.
            with self._lock:
                self._count("disk_errors", key)
            self._note_disk(False)
            if isinstance(exc, CheckpointError):
                self._disk.delete(self._kind(key))
            return None
        self._note_disk(True)
        if ck is None:
            return None
        meta = dict(ck.meta)
        if meta.pop("key", key) != key:
            with self._lock:
                self._count("disk_errors", key)
            return None
        return CachedArrays(arrays=ck.arrays, meta=meta)

    def _disk_save(self, key: str, value: CachedArrays) -> None:
        if self._disk is None:
            return
        if not self._allow_disk(key):
            return
        meta = dict(value.meta)
        meta["key"] = key
        try:
            self._inject_disk_fault("save")
            self._disk.save(self._kind(key), value.arrays, meta)
        except (CheckpointError, OSError):
            # Disk-tier trouble (full disk, permissions, torn write)
            # must never fail a solve that already produced physics —
            # the artifact simply is not persisted this time.
            with self._lock:
                self._count("disk_errors", key)
            self._note_disk(False)
            return
        with self._lock:
            self._count("disk_writes", key)
        self._note_disk(True)
        self._trim_disk()

    def _trim_disk(self) -> None:
        if self._disk is None or self.disk_max_bytes is None:
            return
        # Serialized: concurrent trims from multiple workers would
        # race each other's unlinks; stat() is still guarded because
        # the service process is not the only possible writer.
        with self._disk_lock:
            entries = []
            for path in self._disk.directory.glob("*.ckpt"):
                try:
                    st = path.stat()
                except OSError:
                    continue  # unlinked underneath us
                entries.append((st.st_mtime, st.st_size, path))
            entries.sort(key=lambda e: e[0])
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.disk_max_bytes:
                    break
                total -= size
                path.unlink(missing_ok=True)
