"""repro.serve — batched multi-tenant solve service with artifact cache.

The ROADMAP's production framing made concrete: instead of one-shot
CLI runs that rebuild surfaces, octrees and Born radii from scratch,
a :class:`SolveService` admits :class:`SolveRequest`\\ s into a bounded
priority queue, coalesces duplicates in flight, executes through the
guard layer on a worker pool, and keys every phase artifact by content
fingerprint in a two-tier :class:`ArtifactCache` — so a warm repeat
solve skips straight to (or past) the energy pass and returns the
bitwise-identical energy.

Resilience (:mod:`repro.serve.resilience`) is opt-in and
pay-for-what-you-use: deterministic fault injection via
:class:`~repro.faults.plan.ServeFaultPlan`, worker supervision,
deadline-aware retry/hedging (:class:`RetryPolicy`), a disk-tier
:class:`CircuitBreaker` and admission-control load shedding
(:class:`AdmissionController`), exercised end-to-end by
``repro chaos --serve``.

See ``docs/SERVING.md`` for the architecture, cache-key layering,
backpressure semantics and the metrics reference; ``repro serve`` is
the CLI surface.
"""

from repro.serve.cache import (
    ArtifactCache,
    CachedArrays,
    CacheStats,
    DEFAULT_CACHE_BYTES,
    born_key,
    epol_key,
    surface_key,
    trees_key,
)
from repro.serve.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.queueing import BoundedPriorityQueue
from repro.serve.request import CACHE_LEVELS, STATUSES, SolveRequest, SolveResult
from repro.serve.resilience import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    DelayTimer,
    RetryPolicy,
)
from repro.serve.service import (
    LATENCY_BOUNDS_SECONDS,
    ServeStats,
    SolveService,
    Ticket,
)
from repro.serve.workload import load_workload, synthetic_workload

__all__ = [
    "ArtifactCache",
    "CachedArrays",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "surface_key",
    "trees_key",
    "born_key",
    "epol_key",
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "BoundedPriorityQueue",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "AdmissionPolicy",
    "AdmissionController",
    "DelayTimer",
    "SolveRequest",
    "SolveResult",
    "STATUSES",
    "CACHE_LEVELS",
    "SolveService",
    "ServeStats",
    "Ticket",
    "LATENCY_BOUNDS_SECONDS",
    "synthetic_workload",
    "load_workload",
]
