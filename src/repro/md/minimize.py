"""Backtracking steepest-descent minimisation.

The "minimal total free energy conformation" workflow from the paper's
introduction, reduced to its verifiable core: follow ``−∇E`` with a
backtracking (Armijo) line search, refreshing Born radii every
``refresh_every`` accepted steps.  Within a refresh window the energy
is *guaranteed* non-increasing (the line search enforces it); across a
refresh it may jump, because E_pol's definition changed — both are
asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.md.potential import ImplicitSolventPotential


@dataclass
class MinimizationResult:
    """Trajectory summary of one minimisation."""

    positions: np.ndarray
    energy: float
    energies: List[float] = field(default_factory=list)
    steps_taken: int = 0
    converged: bool = False
    refreshes: int = 0


def minimize(potential: ImplicitSolventPotential,
             positions: np.ndarray,
             max_steps: int = 50,
             step0: float = 0.3,
             force_tol: float = 1.0,
             refresh_every: int = 10,
             shrink: float = 0.5,
             armijo: float = 1e-4) -> MinimizationResult:
    """Minimise ``potential`` from ``positions``.

    Parameters
    ----------
    step0:
        Initial trial displacement of the largest-force atom (Å).
    force_tol:
        Convergence when the max per-atom force magnitude drops below
        this (kcal/mol/Å).
    refresh_every:
        Accepted steps between Born-radius refreshes.
    """
    x = np.array(positions, dtype=np.float64)
    energies: List[float] = []
    refreshes = 0
    e, f = potential.energy_and_forces(x)
    energies.append(e)
    step = step0

    for it in range(max_steps):
        fmax = float(np.max(np.linalg.norm(f, axis=1)))
        if fmax < force_tol:
            return MinimizationResult(positions=x, energy=e,
                                      energies=energies, steps_taken=it,
                                      converged=True,
                                      refreshes=refreshes)
        direction = f / fmax          # unit "time step" per Å of step
        # Backtracking line search on the fixed-R energy surface.
        accepted = False
        g_dot_d = float(np.sum(f * direction))
        while step > 1e-6:
            x_new = x + step * direction
            e_new = potential.energy(x_new)
            if e_new <= e - armijo * step * g_dot_d:
                accepted = True
                break
            step *= shrink
        if not accepted:
            break
        x, e = x_new, e_new
        energies.append(e)
        step = min(step / shrink, step0)   # gentle re-expansion
        if (it + 1) % refresh_every == 0:
            potential.refresh(x)
            refreshes += 1
            e = potential.energy(x)
        f = potential.forces(x)

    return MinimizationResult(positions=x, energy=e, energies=energies,
                              steps_taken=len(energies) - 1,
                              converged=False, refreshes=refreshes)
