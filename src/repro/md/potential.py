"""Implicit-solvent potential: GB polarization + soft-sphere repulsion.

``E(x) = E_pol(x; R) + k Σ_{r_ij < σ_ij} (σ_ij − r_ij)²``

with ``σ_ij = overlap_factor · (ρ_i + ρ_j)``.  Born radii ``R`` are
held fixed between explicit :meth:`ImplicitSolventPotential.refresh`
calls (the standard "update radii every N steps" MD practice), which
keeps the gradient exactly consistent with the energy in between —
the property the integrator and minimiser tests rely on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.config import ApproxParams
from repro.core.born_octree import born_radii_octree
from repro.core.energy_naive import epol_naive
from repro.core.energy_octree import epol_octree
from repro.core.forces import forces_naive, forces_octree
from repro.molecules.molecule import Molecule
from repro.molecules.surface import sample_surface


class ImplicitSolventPotential:
    """Energy/force provider over a molecule's coordinates.

    Parameters
    ----------
    molecule:
        Template molecule (charges/radii fixed; positions move).
    params:
        Octree approximation parameters.
    repulsion_k:
        Soft-sphere spring constant (kcal/mol/Å²).
    overlap_factor:
        Fraction of the intrinsic-radius sum below which repulsion
        engages.  Covalently bonded protein atoms sit far inside each
        other's van der Waals radii, so the floor must be well below
        1.0; 0.35 leaves the synthetic generator's native packing
        essentially relaxed while still punishing real clashes.
    use_octree:
        Route GB terms through the octree solvers (default) or the
        exact naive kernels (small systems / tests).
    """

    def __init__(self,
                 molecule: Molecule,
                 params: ApproxParams = ApproxParams(),
                 repulsion_k: float = 10.0,
                 overlap_factor: float = 0.35,
                 use_octree: bool = True) -> None:
        if repulsion_k < 0:
            raise ValueError("repulsion_k must be >= 0")
        self.template = molecule
        self.params = params
        self.repulsion_k = repulsion_k
        self.overlap_factor = overlap_factor
        self.use_octree = use_octree
        self._born: Optional[np.ndarray] = None
        self.refresh(molecule.positions)

    # -- Born radii lifecycle -------------------------------------------

    def refresh(self, positions: np.ndarray) -> None:
        """Recompute Born radii (and surface) for the given coordinates."""
        mol = Molecule(positions, self.template.charges,
                       self.template.radii, name=self.template.name)
        mol = sample_surface(mol)
        if self.use_octree:
            self._born = born_radii_octree(mol, self.params).radii
        else:
            from repro.core.born_naive import born_radii_naive_r6
            self._born = born_radii_naive_r6(mol)

    def restore_born_radii(self, radii: np.ndarray) -> None:
        """Adopt checkpointed Born radii instead of recomputing.

        Bitwise MD resume depends on this: radii refreshed mid-block
        are float64 state the restart cannot re-derive without replaying
        the trajectory, so :func:`repro.md.langevin.langevin` snapshots
        them and hands them back here.
        """
        radii = np.asarray(radii, dtype=np.float64)
        if radii.shape != (self.template.natoms,):
            raise ValueError(
                f"expected {self.template.natoms} Born radii, "
                f"got shape {radii.shape}")
        self._born = radii

    @property
    def born_radii(self) -> np.ndarray:
        assert self._born is not None
        return self._born

    # -- energy / forces at fixed Born radii -----------------------------

    def _repulsion(self, positions: np.ndarray
                   ) -> Tuple[float, np.ndarray]:
        rho = self.template.radii
        sigma_max = 2.0 * self.overlap_factor * float(rho.max())
        tree = cKDTree(positions)
        pairs = tree.query_pairs(sigma_max, output_type="ndarray")
        energy = 0.0
        grad = np.zeros_like(positions)
        if len(pairs):
            i, j = pairs[:, 0], pairs[:, 1]
            diff = positions[i] - positions[j]
            r = np.linalg.norm(diff, axis=1)
            sigma = self.overlap_factor * (rho[i] + rho[j])
            pen = sigma - r
            hit = pen > 0
            if hit.any():
                i, j = i[hit], j[hit]
                diff, r, pen = diff[hit], r[hit], pen[hit]
                energy = float(self.repulsion_k * np.sum(pen ** 2))
                # dE/dx_i = −2k·pen·(x_i−x_j)/r
                g = (-2.0 * self.repulsion_k * pen / np.maximum(r, 1e-9)
                     )[:, None] * diff
                np.add.at(grad, i, g)
                np.add.at(grad, j, -g)
        return energy, grad

    def energy(self, positions: np.ndarray) -> float:
        """Total energy (kcal/mol) at fixed Born radii."""
        mol = Molecule(positions, self.template.charges,
                       self.template.radii)
        if self.use_octree:
            e_pol = epol_octree(mol, self.born_radii, self.params).energy
        else:
            e_pol = epol_naive(mol, self.born_radii)
        e_rep, _ = self._repulsion(positions)
        return e_pol + e_rep

    def forces(self, positions: np.ndarray) -> np.ndarray:
        """−∇E (kcal/mol/Å) at fixed Born radii."""
        mol = Molecule(positions, self.template.charges,
                       self.template.radii)
        if self.use_octree:
            f_pol = forces_octree(mol, self.born_radii,
                                  self.params).forces
        else:
            f_pol = forces_naive(mol, self.born_radii)
        _, grad_rep = self._repulsion(positions)
        return f_pol - grad_rep

    def energy_and_forces(self, positions: np.ndarray
                          ) -> Tuple[float, np.ndarray]:
        return self.energy(positions), self.forces(positions)
