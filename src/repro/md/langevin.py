"""BAOAB Langevin dynamics over the implicit-solvent potential.

The minimal stochastic integrator (Leimkuhler–Matthews splitting):

    B: v += (dt/2)·F/m      A: x += (dt/2)·v
    O: v = c1·v + c2·ξ      A: x += (dt/2)·v      B: v += (dt/2)·F/m

with ``c1 = exp(−γ dt)`` and ``c2 = sqrt((1−c1²)·kT/m)``.  Units:
kcal/mol, Å, ps; masses in amu — the gas constant in these units is
``k_B = 0.0019872 kcal/(mol·K)`` and accelerations pick up the usual
418.4 conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.md.potential import ImplicitSolventPotential

#: Boltzmann constant in kcal/(mol·K).
KB = 0.0019872041
#: (kcal/mol/Å) / amu → Å/ps² conversion.
ACCEL = 418.4


@dataclass
class LangevinResult:
    """Trajectory summary of one Langevin run."""

    positions: np.ndarray
    velocities: np.ndarray
    energies: List[float] = field(default_factory=list)
    temperatures: List[float] = field(default_factory=list)

    def mean_temperature(self, skip: int = 0) -> float:
        return float(np.mean(self.temperatures[skip:]))


def instantaneous_temperature(velocities: np.ndarray,
                              masses: np.ndarray) -> float:
    """T = 2·KE / (3 N k_B), KE in kcal/mol."""
    ke = 0.5 * np.sum(masses[:, None] * velocities ** 2) / ACCEL
    n = len(velocities)
    return float(2.0 * ke / (3.0 * n * KB))


def _md_fingerprint(potential: ImplicitSolventPotential,
                    temperature: float, friction: float, dt: float,
                    refresh_every: int, seed: int) -> str:
    from repro.guard.checkpoint import molecule_fingerprint
    return molecule_fingerprint(
        potential.template, potential.params, "md",
        extra=f"T={temperature} gamma={friction} dt={dt} "
              f"refresh={refresh_every} seed={seed}")


def _save_md_block(store, step: int, x, v, f, energies, temps,
                   potential, rng) -> None:
    # The rng state and the mid-block Born radii are float64/integer
    # state a restart cannot re-derive without replaying the
    # trajectory — snapshotting both is what makes resume bitwise.
    import json

    store.save("md",
               {"x": x, "v": v, "f": f,
                "born": potential.born_radii,
                "energies": np.asarray(energies),
                "temperatures": np.asarray(temps)},
               {"step": step,
                "rng_state": json.dumps(rng.bit_generator.state)})


def langevin(potential: ImplicitSolventPotential,
             positions: np.ndarray,
             masses: Optional[np.ndarray] = None,
             temperature: float = 300.0,
             friction: float = 5.0,
             dt: float = 0.002,
             steps: int = 100,
             refresh_every: int = 25,
             seed: int = 0,
             checkpoint=None,
             checkpoint_every: Optional[int] = None,
             resume: bool = False) -> LangevinResult:
    """Integrate BAOAB for ``steps`` steps of ``dt`` picoseconds.

    ``checkpoint`` (a directory or
    :class:`~repro.guard.checkpoint.CheckpointStore`) snapshots the
    full integrator state — coordinates, velocities, forces, Born
    radii, accumulated observables and the generator's bit state —
    every ``checkpoint_every`` steps (default: ``refresh_every``).
    ``resume=True`` restarts from the newest snapshot and finishes with
    trajectories and energies bitwise identical to an uninterrupted
    run with the same seed.
    """
    if dt <= 0 or steps < 1:
        raise ValueError("dt must be positive and steps >= 1")
    x = np.array(positions, dtype=np.float64)
    n = len(x)
    m = (np.full(n, 12.0) if masses is None
         else np.asarray(masses, dtype=np.float64))
    rng = np.random.default_rng(seed)

    kT = KB * temperature
    c1 = np.exp(-friction * dt)
    c2 = np.sqrt((1.0 - c1 * c1) * kT / m) * np.sqrt(ACCEL)

    store = None
    if checkpoint is not None:
        from repro.guard.checkpoint import CheckpointStore
        store = (checkpoint if isinstance(checkpoint, CheckpointStore)
                 else CheckpointStore(checkpoint))
        if not store.fingerprint:
            store.fingerprint = _md_fingerprint(
                potential, temperature, friction, dt, refresh_every, seed)
    every = refresh_every if checkpoint_every is None else checkpoint_every
    if every < 1:
        raise ValueError("checkpoint_every must be >= 1")

    start = 0
    ck = store.try_load("md") if (store is not None and resume) else None
    if ck is not None:
        import json

        start = int(ck.meta["step"])
        x = np.array(ck.arrays["x"], dtype=np.float64)
        v = np.array(ck.arrays["v"], dtype=np.float64)
        f = np.array(ck.arrays["f"], dtype=np.float64)
        energies = [float(e) for e in ck.arrays["energies"]]
        temps = [float(t) for t in ck.arrays["temperatures"]]
        potential.restore_born_radii(ck.arrays["born"])
        rng.bit_generator.state = json.loads(ck.meta["rng_state"])
    else:
        v = (rng.normal(size=(n, 3))
             * np.sqrt(kT / m)[:, None] * np.sqrt(ACCEL))
        f = potential.forces(x)
        energies = []
        temps = []

    for step in range(start, steps):
        v += 0.5 * dt * ACCEL * f / m[:, None]           # B
        x += 0.5 * dt * v                                # A
        v = c1 * v + c2[:, None] * rng.normal(size=(n, 3))  # O
        x += 0.5 * dt * v                                # A
        if (step + 1) % refresh_every == 0:
            potential.refresh(x)
        f = potential.forces(x)
        v += 0.5 * dt * ACCEL * f / m[:, None]           # B
        energies.append(potential.energy(x))
        temps.append(instantaneous_temperature(v, m))
        if store is not None and (step + 1) % every == 0:
            _save_md_block(store, step + 1, x, v, f, energies, temps,
                           potential, rng)

    if store is not None:
        _save_md_block(store, steps, x, v, f, energies, temps,
                       potential, rng)
    return LangevinResult(positions=x, velocities=v, energies=energies,
                          temperatures=temps)
