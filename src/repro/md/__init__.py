"""Minimal implicit-solvent mechanics on top of the GB solver.

The paper motivates GB polarization energy with "molecular dynamics
simulations for determining the molecular conformation with minimal
total free energy" (§I).  This subpackage supplies the smallest honest
version of that pipeline over the library's energies and forces:

* :mod:`repro.md.potential` — an implicit-solvent potential combining
  the GB polarization term with a soft-sphere repulsion (the steric
  floor that keeps charges from collapsing onto each other);
* :mod:`repro.md.minimize` — backtracking steepest-descent minimisation;
* :mod:`repro.md.langevin` — a BAOAB Langevin integrator.

It is intentionally *not* a force field: no bonds, angles or LJ
attraction.  It exists to exercise energy/force consistency end-to-end
the way a consuming MD engine would.
"""

from repro.md.potential import ImplicitSolventPotential
from repro.md.minimize import MinimizationResult, minimize
from repro.md.langevin import LangevinResult, langevin

__all__ = [
    "ImplicitSolventPotential",
    "MinimizationResult",
    "minimize",
    "LangevinResult",
    "langevin",
]
