"""Command-line interface: ``python -m repro <command> …``.

Commands
--------
``solve``
    Compute Born radii and E_pol for a molecule (synthetic, capsid or a
    PQR/XYZQR file) with any solver method.  Runs guarded by default
    (preflight, NaN sentinels, accuracy watchdog, degradation ladder —
    see ``docs/ROBUSTNESS.md``); ``--checkpoint DIR`` / ``--resume``
    give durable restart with bitwise-identical energies.
``doctor``
    Validate a molecule/config without solving: report every format,
    geometry and parameter issue found (with fixability hints) and
    exit non-zero when the solve would fail.
``scale``
    Sweep the simulated cluster over core counts for one molecule and
    print the Fig. 5-style table.
``packages``
    Run the MD-package emulators on one molecule (Fig. 8-style row).
``info``
    Print machine model, package registry and version.
``lint``
    Run the project static analyzer (``repro.lint``) over source paths.
``trace``
    Inspect / validate a Chrome trace-event JSON file produced by
    ``solve --trace`` or ``scale --trace`` (loadable in Perfetto).
``chaos``
    Run the seeded fault-injection scenario matrix over the
    fault-tolerant Fig. 4 solver and print the pass table (see
    ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

import repro.obs as obs
from repro import ApproxParams, PolarizationSolver, __version__
from repro.analysis.tables import Table
from repro.baselines import PACKAGES, get_package
from repro.cluster.machine import lonestar4
from repro.molecules import pdbio, sample_surface, synthetic_protein, virus_capsid
from repro.molecules.molecule import Molecule
from repro.parallel import WorkProfile, simulate_fig4


def _load_molecule(args: argparse.Namespace,
                   surface: bool = True) -> Molecule:
    if args.file:
        if args.file.endswith(".pqr"):
            mol = pdbio.read_pqr(args.file, name=args.file)
        elif args.file.endswith(".pdb"):
            mol = pdbio.read_pdb(args.file, name=args.file)
        else:
            mol = pdbio.read_xyzqr(args.file, name=args.file)
        return sample_surface(mol) if surface else mol
    if args.capsid:
        return virus_capsid(args.atoms, seed=args.seed)
    return synthetic_protein(args.atoms, seed=args.seed)


def _add_molecule_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--atoms", type=int, default=2000,
                   help="synthetic molecule size (default 2000)")
    p.add_argument("--capsid", action="store_true",
                   help="generate a hollow virus-capsid shell instead "
                        "of a globular protein")
    p.add_argument("--file", type=str, default=None,
                   help="read a .pqr/.pdb/.xyzqr file instead")
    p.add_argument("--seed", type=int, default=0)


def _add_params_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--eps-born", type=float, default=0.9)
    p.add_argument("--eps-epol", type=float, default=0.9)
    p.add_argument("--approx-math", action="store_true")


def _params(args: argparse.Namespace) -> ApproxParams:
    return ApproxParams(eps_born=args.eps_born, eps_epol=args.eps_epol,
                        approx_math=args.approx_math)


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", type=str, default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON (open in "
                        "Perfetto / chrome://tracing)")
    p.add_argument("--metrics", action="store_true",
                   help="print the metrics registry (Prometheus text)")
    p.add_argument("--metrics-out", type=str, default=None, metavar="FILE",
                   help="write metrics to FILE (.json → JSON, else "
                        "Prometheus text)")


def _write_metrics(args: argparse.Namespace) -> None:
    if args.metrics:
        print(obs.metrics_to_prometheus(obs.registry), end="")
    if args.metrics_out:
        if args.metrics_out.endswith(".json"):
            text = obs.metrics_to_json(obs.registry)
        else:
            text = obs.metrics_to_prometheus(obs.registry)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote metrics to {args.metrics_out}")


def _root_span_seconds(name: str) -> float:
    for ev in obs.get_tracer().events():
        if ev.get("ph") == "X" and ev.get("name") == name:
            return ev["dur"] / 1e6
    return 0.0


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.guard import DiagnosticError, GuardedSolver
    if args.no_guard and (args.checkpoint or args.resume
                          or args.stop_after):
        print("error: --checkpoint/--resume/--stop-after need the "
              "guard layer (drop --no-guard)", file=sys.stderr)
        return 2
    if args.stop_after and not args.checkpoint:
        print("error: --stop-after only makes sense with --checkpoint",
              file=sys.stderr)
        return 2
    obs.enable(reset=True)
    report = None
    try:
        with obs.span("solve", method=args.method):
            mol = _load_molecule(args)
            print(f"molecule: {mol.name} — {mol.natoms} atoms, "
                  f"{mol.nqpoints} surface quadrature points")
            if args.no_guard:
                solver = PolarizationSolver(mol, _params(args),
                                            method=args.method)
                energy = solver.energy()
                radii = solver.born_radii()
            else:
                guarded = GuardedSolver(mol, _params(args),
                                        method=args.method,
                                        checkpoint=args.checkpoint,
                                        resume=args.resume)
                mol = guarded.molecule
                if args.stop_after == "born":
                    radii = guarded.born_phase_only()
                    print(f"stopped after the Born phase; snapshot in "
                          f"{args.checkpoint} (finish with --resume)")
                    print(f"Born radii: min {radii.min():.3f}  "
                          f"mean {radii.mean():.3f}  "
                          f"max {radii.max():.3f} Å")
                    obs.disable()
                    return 0
                report = guarded.report()
                energy, radii = report.energy, report.born_radii
                # The tracing/profile paths below want a solver whose
                # cached radii match what the guarded run settled on.
                solver = PolarizationSolver(mol, report.params,
                                            method=report.method)
                solver._born = report.born_radii
    except DiagnosticError as exc:
        print(f"error: {exc}", file=sys.stderr)
        obs.disable()
        return 1
    dt = _root_span_seconds("solve")
    if report is not None and report.events:
        print(f"guard: finished on rung {report.rung!r} after "
              f"{report.attempts} attempt(s), "
              f"{report.degradations} degradation(s)")
        for ev in report.events:
            print(f"  - {ev.action} [{ev.phase}] {ev.detail}")
    method = args.method if report is None else report.method
    print(f"E_pol = {energy:.4f} kcal/mol   ({method}, {dt:.2f} s)")
    print(f"Born radii: min {radii.min():.3f}  mean {radii.mean():.3f}  "
          f"max {radii.max():.3f} Å")
    print("phase breakdown (tracer):")
    print(obs.render_span_tree(obs.get_tracer()))
    if args.compare_naive:
        with obs.span("compare_naive"):
            ref = PolarizationSolver(mol, method="naive").energy()
        print(f"naive reference: {ref:.4f} kcal/mol "
              f"({100 * abs(energy - ref) / abs(ref):.4f} % difference)")
    if args.trace:
        runstats = None
        if args.method != "naive":
            profile = WorkProfile.from_solver(solver)
            runstats = simulate_fig4(profile, args.trace_procs,
                                     args.trace_threads, seed=args.seed)
            print(f"simulated schedule: {runstats.summary()}")
        obs.write_chrome_trace(args.trace, tracer=obs.get_tracer(),
                               runstats=runstats, metrics=obs.registry)
        print(f"wrote trace to {args.trace}")
    if args.json:
        import json
        doc = {"molecule": mol.name, "natoms": mol.natoms,
               "method": method, "energy": energy,
               "born_min": float(radii.min()),
               "born_mean": float(radii.mean()),
               "born_max": float(radii.max()),
               "guarded": report is not None}
        if report is not None:
            doc.update(rung=report.rung, attempts=report.attempts,
                       degradations=report.degradations,
                       events=[{"action": e.action, "phase": e.phase,
                                "detail": e.detail}
                               for e in report.events])
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote result to {args.json}")
    _write_metrics(args)
    obs.disable()
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.guard import DiagnosticError
    from repro.guard.checks import diagnose_molecule
    from repro.molecules.surface import sample_surface as _sample
    try:
        mol = _load_molecule(args, surface=False)
    except (DiagnosticError, ValueError) as exc:
        print(f"unreadable molecule: {exc}", file=sys.stderr)
        return 2
    findings = diagnose_molecule(mol, _params(args))
    # Surface checks only make sense once the raw arrays are sound.
    if mol.surface is None and not any(d.severity == "error"
                                       for d in findings):
        try:
            mol = _sample(mol)
            findings = diagnose_molecule(mol, _params(args))
        except ValueError as exc:
            print(f"note: surface sampling failed: {exc}")
    print(f"doctor: {mol.name} — {mol.natoms} atoms")
    for d in findings:
        print(d.render())
    errors = sum(1 for d in findings if d.severity == "error")
    fixable = sum(1 for d in findings if d.fixable)
    if not findings:
        print("no findings: molecule and parameters look healthy")
        return 0
    print(f"{len(findings)} finding(s): {errors} error(s), "
          f"{fixable} fixable")
    return 1 if errors else 0


def cmd_scale(args: argparse.Namespace) -> int:
    if args.trace:
        obs.enable(reset=True)
    mol = _load_molecule(args)
    machine = lonestar4(nodes=args.nodes)
    print(f"profiling {mol.name} ({mol.natoms} atoms) …")
    profile = WorkProfile.from_molecule(mol, _params(args))
    table = Table(["cores", "OCT_MPI (s)", "OCT_MPI+CILK (s)"],
                  title=f"simulated scaling on {machine.nodes} nodes")
    mpi = hyb = None
    for cores in (12, 24, 48, 96, 144, 192, 288, 480):
        if cores > machine.total_cores:
            break
        mpi = simulate_fig4(profile, cores, 1, machine=machine)
        hyb = simulate_fig4(profile, max(1, cores // 6), 6,
                            machine=machine)
        table.add_row(cores, mpi.wall_seconds, hyb.wall_seconds)
    print(table.render())
    if args.trace and mpi is not None:
        # Rank timelines of the largest configuration, both layouts.
        obs.write_chrome_trace(args.trace, tracer=obs.get_tracer(),
                               runstats=[mpi, hyb], metrics=obs.registry)
        print(f"wrote trace of the largest configuration to {args.trace}")
        obs.disable()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json
    try:
        doc = obs.load_trace(args.file)
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.file} is not JSON: {exc}", file=sys.stderr)
        return 2
    problems = obs.validate_chrome_trace(doc)
    if args.check:
        for p in problems:
            print(p)
        events = doc.get("traceEvents", doc if isinstance(doc, list)
                         else [])
        if problems:
            print(f"{args.file}: INVALID ({len(problems)} problem(s))")
            return 1
        print(f"{args.file}: OK ({len(events)} events)")
        return 0
    if problems:
        print(f"warning: {len(problems)} schema problem(s) — "
              f"run with --check for details")
    if args.extract_metrics:
        metrics = ((doc.get("otherData", {}) or {}).get("metrics", {})
                   if isinstance(doc, dict) else {})
        with open(args.extract_metrics, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
        print(f"wrote {len(metrics)} metrics to {args.extract_metrics}")
    print(obs.trace_summary(doc))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.serve and args.fleet:
        print("--serve and --fleet are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.trace:
        obs.enable(reset=True)
    witness = None
    if (args.serve or args.fleet) and args.lock_witness:
        from repro.obs import lockwitness

        # Installed before any service is built so every serve-stack
        # lock is wrapped (factories consult the active witness at
        # construction time).
        witness = lockwitness.install(lockwitness.LockWitness())
    if args.serve:
        from repro.faults import servechaos
        report = servechaos.run_serve_chaos(
            seed=args.seed, atoms=args.atoms, quick=args.quick,
            workers=args.workers)
    elif args.fleet:
        from repro.faults import fleetchaos
        report = fleetchaos.run_fleet_chaos(
            seed=args.seed, atoms=args.atoms, quick=args.quick)
    else:
        from repro.faults import chaos
        report = chaos.run_chaos(seed=args.seed,
                                 processes=args.processes,
                                 atoms=args.atoms, quick=args.quick,
                                 tolerance=args.tolerance)
    print(report.table())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote report to {args.json}")
    if args.trace:
        obs.write_chrome_trace(args.trace, tracer=obs.get_tracer(),
                               metrics=obs.registry)
        obs.disable()
        print(f"wrote trace to {args.trace}")
    cyclic = False
    if witness is not None:
        from repro.obs import lockwitness

        lockwitness.uninstall()
        print(witness.summary())
        found = witness.cycles()
        if found:
            cyclic = True
            for cycle in found:
                print("lock-order cycle: " + " -> ".join(cycle),
                      file=sys.stderr)
    if not report.all_passed:
        failed = [r.name for r in report.results if not r.passed]
        print(f"FAILED scenarios: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.serve:
        print(f"all {len(report.results)} serve scenarios passed: "
              f"zero stranded tickets, bitwise parity with the "
              f"fault-free twin, same-seed determinism")
    elif args.fleet:
        print(f"all {len(report.results)} fleet scenarios passed: "
              f"zero stranded tickets, bitwise parity with the "
              f"fault-free fleet twin AND the single-shard baseline, "
              f"same-seed determinism")
    else:
        print(f"all {len(report.results)} scenarios recovered within "
              f"{report.tolerance:g} of E_pol = {report.ref_energy:.6f}")
    return 1 if cyclic else 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """``repro serve --shards N`` — the workload through a
    :class:`~repro.fleet.fleet.ShardedFleet` front door instead of a
    single service: consistent-hash routing, per-shard breakers,
    fleet-level admission, heartbeat supervision."""
    from repro.fleet import ShardedFleet
    from repro.serve import (
        QueueFullError,
        ServiceOverloadedError,
        SolveResult,
        load_workload,
        synthetic_workload,
    )
    if args.workload:
        requests = load_workload(args.workload)
        source = args.workload
    else:
        requests = synthetic_workload(
            args.synthetic, seed=args.seed, molecules=args.molecules,
            atoms=args.atoms)
        source = f"synthetic (seed {args.seed})"
    obs.enable(reset=True)
    witness = None
    if args.lock_witness:
        from repro.obs import lockwitness

        # Installed before the fleet is built so every serve- and
        # fleet-stack lock is wrapped.
        witness = lockwitness.install(lockwitness.LockWitness())
    admission = None
    if (args.shed_queue_depth is not None
            or args.shed_wait_seconds is not None):
        from repro.serve import AdmissionPolicy
        admission = AdmissionPolicy(
            max_queue_depth=args.shed_queue_depth,
            max_wait_seconds=args.shed_wait_seconds)
    fleet = ShardedFleet(
        shards=args.shards, backend=args.shard_backend,
        workers_per_shard=args.workers,
        queue_capacity=args.queue_size, batch_size=args.batch_size,
        cache_dir=args.cache_dir,
        cache_bytes=args.cache_mb * 1024 * 1024,
        admission=admission, supervise=True)
    tickets = []
    t0 = time.perf_counter()
    with obs.span("serve.fleet", cat="serve", shards=args.shards,
                  requests=len(requests)):
        for req in requests:
            try:
                tickets.append(fleet.submit(req))
            except ServiceOverloadedError as exc:
                print(f"shed (overloaded): {exc}", file=sys.stderr)
            except QueueFullError as exc:
                print(f"rejected (queue full): {exc}", file=sys.stderr)
        fleet.drain(timeout=args.drain_timeout)
    wall = time.perf_counter() - t0
    collect_deadline = t0 + args.drain_timeout
    results = []
    for t in tickets:
        remaining = max(0.0, collect_deadline - time.perf_counter())
        try:
            results.append(t.result(timeout=remaining))
        except TimeoutError:
            results.append(SolveResult(
                key=t.key, status="failed",
                error=f"result not available within the "
                      f"{args.drain_timeout:g}s drain budget"))
    fstats = fleet.stats()
    shard_stats = fleet.shard_stats()
    fleet.close()

    ok = sum(1 for r in results if r.status == "ok")
    failed = sum(1 for r in results if r.status == "failed")
    table = Table(["requests", "ok", "failed", "coalesced", "shed",
                   "rerouted", "shards live"],
                  title=f"fleet: {len(requests)} requests from "
                        f"{source} — {args.shards} "
                        f"{args.shard_backend} shard(s), "
                        f"{args.workers} worker(s)/shard")
    table.add_row(fstats.submitted, ok, failed, fstats.coalesced,
                  fstats.shed, fstats.rerouted, fstats.shards_live)
    print(table.render())

    per = Table(["shard", "dispatched", "completed", "hit rate",
                 "cache entries"])
    for sid in sorted(shard_stats):
        st = shard_stats[sid]
        per.add_row(sid, fstats.dispatches.get(sid, 0), st.completed,
                    f"{st.hit_rate:.1%}", st.cache.entries)
    print(per.render())
    print(f"throughput: {len(results) / wall:.1f} req/s "
          f"({wall:.2f} s wall)")

    if args.json:
        import json
        doc = {"source": source, "shards": args.shards,
               "backend": args.shard_backend,
               "requests": fstats.submitted, "ok": ok,
               "failed": failed, "coalesced": fstats.coalesced,
               "shed": fstats.shed, "rerouted": fstats.rerouted,
               "dispatches": {str(k): v for k, v
                              in sorted(fstats.dispatches.items())},
               "throughput_rps": len(results) / wall,
               "wall_seconds": wall}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote summary to {args.json}")
    if args.trace:
        obs.write_chrome_trace(args.trace, tracer=obs.get_tracer(),
                               metrics=obs.registry)
        print(f"wrote trace to {args.trace}")
    _write_metrics(args)
    cyclic = False
    if witness is not None:
        from repro.obs import lockwitness

        lockwitness.uninstall()
        print(witness.summary())
        if args.lock_trace:
            witness.write_chrome_trace(args.lock_trace)
            print(f"wrote lock trace to {args.lock_trace}")
        found = witness.cycles()
        if found:
            cyclic = True
            for cycle in found:
                print("lock-order cycle: " + " -> ".join(cycle),
                      file=sys.stderr)
    obs.disable()
    if failed:
        print(f"{failed} failed", file=sys.stderr)
        return 1
    return 1 if cyclic else 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """``repro serve --http`` — the service (or ``--shards`` fleet)
    behind the :mod:`repro.edge` HTTP front-end instead of a scripted
    workload: bearer-token tenancy, per-tenant rate limits, typed JSON
    errors, redacted request logging (docs/HTTP.md)."""
    import threading

    from repro.edge import EdgeApp, EdgeServer, TenantRegistry
    from repro.serve import SolveService

    try:
        tenants = TenantRegistry.from_specs(
            args.http_token or ["demo:demo-token"],
            rate_per_s=args.http_rate, burst=args.http_burst,
            max_body_bytes=args.http_max_body_kb * 1024)
    except ValueError as exc:
        print(f"bad --http-token spec: {exc}", file=sys.stderr)
        return 2
    obs.enable(reset=True)
    admission = None
    if (args.shed_queue_depth is not None
            or args.shed_wait_seconds is not None):
        from repro.serve import AdmissionPolicy
        admission = AdmissionPolicy(
            max_queue_depth=args.shed_queue_depth,
            max_wait_seconds=args.shed_wait_seconds)
    if args.shards is not None:
        from repro.fleet import ShardedFleet
        backend = ShardedFleet(
            shards=args.shards, backend=args.shard_backend,
            workers_per_shard=args.workers,
            queue_capacity=args.queue_size, batch_size=args.batch_size,
            cache_dir=args.cache_dir,
            cache_bytes=args.cache_mb * 1024 * 1024,
            admission=admission, supervise=True)
        kind = f"{args.shards}-shard {args.shard_backend} fleet"
    else:
        retry = None
        if args.retries > 1 or args.hedge_after is not None:
            from repro.serve import RetryPolicy
            retry = RetryPolicy(max_attempts=max(2, args.retries),
                                seed=args.seed,
                                hedge_after_s=args.hedge_after)
        backend = SolveService(workers=args.workers,
                               queue_capacity=args.queue_size,
                               batch_size=args.batch_size,
                               cache_bytes=args.cache_mb * 1024 * 1024,
                               cache_dir=args.cache_dir,
                               retry=retry, admission=admission)
        kind = f"{args.workers}-worker service"
    log_stream = (open(args.request_log, "w", encoding="utf-8")
                  if args.request_log else None)
    app = EdgeApp(backend, tenants, seed=args.seed,
                  log_stream=log_stream,
                  sync_timeout_s=args.drain_timeout)
    try:
        with EdgeServer(app, host=args.host, port=args.port) as server:
            names = ", ".join(t.name for t in tenants.tenants)
            print(f"edge listening on {server.url} — {kind}, "
                  f"tenant(s): {names}", flush=True)
            try:
                # None → block until interrupted; a finite duration is
                # the CI-smoke entry point.
                threading.Event().wait(args.http_duration)
            except KeyboardInterrupt:
                print("interrupted; draining", file=sys.stderr)
    finally:
        backend.close()
        if log_stream is not None:
            log_stream.close()
    print(f"served {len(app.log)} request(s)")
    if args.request_log:
        print(f"wrote request log to {args.request_log}")
    _write_metrics(args)
    obs.disable()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.http:
        return _cmd_serve_http(args)
    if args.shards is not None:
        return _cmd_serve_fleet(args)
    from repro.serve import (
        QueueFullError,
        ServiceOverloadedError,
        SolveResult,
        SolveService,
        load_workload,
        synthetic_workload,
    )
    if args.workload:
        requests = load_workload(args.workload)
        source = args.workload
    else:
        requests = synthetic_workload(
            args.synthetic, seed=args.seed, molecules=args.molecules,
            atoms=args.atoms)
        source = f"synthetic (seed {args.seed})"
    obs.enable(reset=True)
    witness = None
    if args.lock_witness:
        from repro.obs import lockwitness

        # Installed before the service is built: the named_lock /
        # named_condition factories consult the active witness at
        # construction time, so every serve-stack lock is wrapped.
        witness = lockwitness.install(lockwitness.LockWitness())
    retry = None
    if args.retries > 1 or args.hedge_after is not None:
        from repro.serve import RetryPolicy
        retry = RetryPolicy(max_attempts=max(2, args.retries),
                            seed=args.seed,
                            hedge_after_s=args.hedge_after)
    admission = None
    if (args.shed_queue_depth is not None
            or args.shed_wait_seconds is not None):
        from repro.serve import AdmissionPolicy
        admission = AdmissionPolicy(
            max_queue_depth=args.shed_queue_depth,
            max_wait_seconds=args.shed_wait_seconds)
    service = SolveService(workers=args.workers,
                           queue_capacity=args.queue_size,
                           batch_size=args.batch_size,
                           cache_bytes=args.cache_mb * 1024 * 1024,
                           cache_dir=args.cache_dir,
                           retry=retry, admission=admission)
    tickets = []
    t0 = time.perf_counter()
    with obs.span("serve", cat="serve", workers=args.workers,
                  requests=len(requests)):
        for req in requests:
            try:
                tickets.append(
                    service.submit(req, wait_timeout=args.submit_timeout))
            except ServiceOverloadedError as exc:
                print(f"shed (overloaded): {exc}", file=sys.stderr)
            except QueueFullError as exc:
                print(f"rejected (queue full): {exc}", file=sys.stderr)
        service.drain(timeout=args.drain_timeout)
    wall = time.perf_counter() - t0
    # Collect against the *remaining* drain budget, not a hardcoded
    # per-ticket second: a slow straggler that drain() already waited
    # on must not get a fresh second per ticket, and a fast run should
    # not be capped below its budget.  A ticket that still misses the
    # deadline yields a typed timeout result instead of an exception.
    collect_deadline = t0 + args.drain_timeout
    results = []
    for t in tickets:
        remaining = max(0.0, collect_deadline - time.perf_counter())
        try:
            results.append(t.result(timeout=remaining))
        except TimeoutError:
            results.append(SolveResult(
                key=t.key, status="failed",
                error=f"result not available within the "
                      f"{args.drain_timeout:g}s drain budget"))
    stats = service.stats()
    service.close()

    table = Table(["requests", "ok", "degraded", "failed", "expired",
                   "coalesced", "rejected"],
                  title=f"serve: {len(requests)} requests from {source} — "
                        f"{args.workers} worker(s), queue "
                        f"{args.queue_size}, batch {args.batch_size}")
    ok = sum(1 for r in results if r.status == "ok")
    table.add_row(stats.submitted, ok, stats.degraded, stats.failed,
                  stats.expired, stats.coalesced, stats.rejected)
    print(table.render())

    lat = Table(["metric", "p50 (ms)", "p99 (ms)"])
    lat.add_row("queue wait", stats.wait_p50 * 1e3, stats.wait_p99 * 1e3)
    lat.add_row("service", stats.service_p50 * 1e3,
                stats.service_p99 * 1e3)
    print(lat.render())

    levels = ", ".join(f"{k}: {v}"
                       for k, v in sorted(stats.by_level.items()))
    print(f"cache: hit rate {stats.hit_rate:.1%} "
          f"({stats.cache.hits} hits / {stats.cache.misses} misses, "
          f"{stats.cache.evictions} evictions, "
          f"{stats.cache.entries} entries, "
          f"{stats.cache.bytes / 1e6:.1f} MB)")
    print(f"served from: {levels}")
    print(f"throughput: {len(results) / wall:.1f} req/s "
          f"({wall:.2f} s wall)")

    if args.json:
        import json
        doc = {"source": source, "workers": args.workers,
               "requests": stats.submitted, "ok": ok,
               "degraded": stats.degraded, "failed": stats.failed,
               "expired": stats.expired, "coalesced": stats.coalesced,
               "rejected": stats.rejected, "hit_rate": stats.hit_rate,
               "by_level": dict(stats.by_level),
               "wait_p50_ms": stats.wait_p50 * 1e3,
               "wait_p99_ms": stats.wait_p99 * 1e3,
               "service_p50_ms": stats.service_p50 * 1e3,
               "service_p99_ms": stats.service_p99 * 1e3,
               "throughput_rps": len(results) / wall,
               "wall_seconds": wall}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote summary to {args.json}")
    if args.trace:
        obs.write_chrome_trace(args.trace, tracer=obs.get_tracer(),
                               metrics=obs.registry)
        print(f"wrote trace to {args.trace}")
    _write_metrics(args)
    cyclic = False
    if witness is not None:
        from repro.obs import lockwitness

        lockwitness.uninstall()
        print(witness.summary())
        if args.lock_trace:
            witness.write_chrome_trace(args.lock_trace)
            print(f"wrote lock trace to {args.lock_trace}")
        found = witness.cycles()
        if found:
            cyclic = True
            for cycle in found:
                print("lock-order cycle: " + " -> ".join(cycle),
                      file=sys.stderr)
    obs.disable()
    if stats.failed or stats.expired:
        print(f"{stats.failed} failed, {stats.expired} expired",
              file=sys.stderr)
        return 1
    return 1 if cyclic else 0


def cmd_packages(args: argparse.Namespace) -> int:
    mol = _load_molecule(args)
    table = Table(["package", "GB model", "time (s)", "E (kcal/mol)",
                   "memory (MB)"],
                  title=f"{mol.name}: package emulators on 12 cores")
    for name in PACKAGES:
        res = get_package(name).run(mol, cores=12)
        if res.oom:
            table.add_row(name, res.gb_model, "OOM", "OOM",
                          res.memory_bytes / 1e6)
        else:
            table.add_row(name, res.gb_model, res.wall_seconds,
                          res.energy, res.memory_bytes / 1e6)
    print(table.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import suite_sizes
    from repro.analysis.export import generate_report
    sizes = suite_sizes(max_size=args.max_size)
    print(f"running the experiment sweep (suite sizes {sizes}, capsid "
          f"{args.capsid_atoms} atoms) …")
    report = generate_report(args.out, suite_sizes=sizes,
                             capsid_atoms=args.capsid_atoms)
    print(f"wrote {report} and per-figure CSVs to {args.out}/")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main
    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.statistics:
        argv.append("--statistics")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import table1_machine, table2_packages
    print(f"repro {__version__} — octree GB polarization energy "
          f"(Tithi & Chowdhury, SC 2012 reproduction)\n")
    print(table1_machine())
    print()
    print(table2_packages())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="compute Born radii and E_pol")
    _add_molecule_args(p)
    _add_params_args(p)
    _add_obs_args(p)
    p.add_argument("--method", choices=("octree", "dualtree", "naive"),
                   default="octree")
    p.add_argument("--compare-naive", action="store_true")
    p.add_argument("--trace-procs", type=int, default=4,
                   help="ranks of the simulated schedule attached to "
                        "--trace output (default 4)")
    p.add_argument("--trace-threads", type=int, default=6,
                   help="threads per rank of that schedule (default 6)")
    p.add_argument("--no-guard", action="store_true",
                   help="bypass the guard layer (no preflight, "
                        "sentinels, watchdog or degradation ladder)")
    p.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                   help="snapshot post-phase state into DIR "
                        "(versioned, checksummed, atomically written)")
    p.add_argument("--resume", action="store_true",
                   help="restart from the newest snapshot in "
                        "--checkpoint DIR (bitwise-identical energy)")
    p.add_argument("--stop-after", choices=("born",), default=None,
                   help="exit after this phase's snapshot lands — the "
                        "interruption half of a restart test")
    p.add_argument("--json", type=str, default=None, metavar="FILE",
                   help="write the result (energy, guard events) as "
                        "JSON")
    p.set_defaults(fn=cmd_solve)

    p = sub.add_parser("doctor", help="validate a molecule/config and "
                                      "report fixable issues")
    _add_molecule_args(p)
    _add_params_args(p)
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("scale", help="core-count sweep on the simulated "
                                     "cluster")
    _add_molecule_args(p)
    _add_params_args(p)
    _add_obs_args(p)
    p.add_argument("--nodes", type=int, default=40)
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser("trace", help="inspect / validate a Chrome "
                                     "trace-event JSON file")
    p.add_argument("file", help="trace file written by solve/scale "
                                "--trace")
    p.add_argument("--check", action="store_true",
                   help="validate against the trace-event schema; exit "
                        "1 on problems")
    p.add_argument("--extract-metrics", type=str, default=None,
                   metavar="FILE", help="convert: write the embedded "
                                        "metrics snapshot to FILE (JSON)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("chaos", help="fault-injection scenario matrix "
                                     "over the fault-tolerant solver "
                                     "(--serve: the solve service; "
                                     "--fleet: the sharded fleet)")
    p.add_argument("--seed", type=int, default=0,
                   help="derives every scenario's faults (default 0)")
    p.add_argument("--processes", type=int, default=4,
                   help="simulated MPI ranks (default 4, minimum 3)")
    p.add_argument("--atoms", type=int, default=400,
                   help="synthetic molecule size (default 400)")
    p.add_argument("--quick", action="store_true",
                   help="small molecule — the CI smoke configuration")
    p.add_argument("--tolerance", type=float, default=1e-9,
                   help="relative E_pol agreement required (default 1e-9)")
    p.add_argument("--serve", action="store_true",
                   help="run the serve-tier matrix instead (worker "
                        "crashes, stragglers+hedging, disk-error "
                        "storms, cache poison, overload shedding)")
    p.add_argument("--fleet", action="store_true",
                   help="run the fleet-tier matrix instead (shard "
                        "deaths mid-batch, stalled-shard quarantine, "
                        "live rebalancing, overload shedding — "
                        "parity vs fault-free fleet AND single-shard "
                        "baseline)")
    p.add_argument("--workers", type=int, default=2,
                   help="--serve: clean-baseline worker pool "
                        "(fault scenarios pin their own; default 2)")
    p.add_argument("--lock-witness", action="store_true",
                   help="--serve/--fleet: wrap serve-stack locks in "
                        "the runtime LockWitness and fail on an "
                        "acquisition-order cycle")
    p.add_argument("--json", type=str, default=None, metavar="FILE",
                   help="write the scenario report as JSON")
    p.add_argument("--trace", type=str, default=None, metavar="FILE",
                   help="write a Chrome trace with fault instants and "
                        "recovery spans")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("serve", help="run a workload through the "
                                     "batched solve service + artifact "
                                     "cache")
    _add_obs_args(p)
    src_group = p.add_mutually_exclusive_group()
    src_group.add_argument("--synthetic", type=int, default=20,
                           metavar="N",
                           help="generate N mixed synthetic requests "
                                "(default 20)")
    src_group.add_argument("--workload", type=str, default=None,
                           metavar="FILE",
                           help="JSON workload file (see repro.serve."
                                "workload.load_workload)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker threads (default 2; per shard with "
                        "--shards)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="serve through an N-shard fleet (consistent-"
                        "hash router, per-shard breakers, heartbeat "
                        "supervision) instead of one service")
    p.add_argument("--shard-backend", type=str, default="thread",
                   choices=("thread", "process"),
                   help="--shards: in-thread shards (deterministic) "
                        "or one OS process per shard (default thread)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="admission queue capacity; a full queue "
                        "rejects with QueueFullError (default 64)")
    p.add_argument("--batch-size", type=int, default=4,
                   help="max requests a worker takes per pass "
                        "(default 4)")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="memory-tier artifact cache budget in MB "
                        "(default 256)")
    p.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                   help="disk tier: persist array artifacts as "
                        "REPRO-CKPT files under DIR")
    p.add_argument("--seed", type=int, default=0,
                   help="synthetic workload seed (default 0)")
    p.add_argument("--atoms", type=int, default=300,
                   help="smallest synthetic molecule (default 300)")
    p.add_argument("--molecules", type=int, default=3,
                   help="synthetic molecule pool size (default 3)")
    p.add_argument("--submit-timeout", type=float, default=30.0,
                   help="seconds to wait for queue space before "
                        "rejecting (default 30)")
    p.add_argument("--drain-timeout", type=float, default=600.0,
                   help="seconds to wait for the queue to drain; also "
                        "bounds result collection (default 600)")
    p.add_argument("--retries", type=int, default=1,
                   help="max delivery attempts per request; >1 "
                        "enables bounded retry with seeded "
                        "exponential backoff (default 1 = off)")
    p.add_argument("--hedge-after", type=float, default=None,
                   metavar="SECONDS",
                   help="hedge a straggling attempt after this many "
                        "seconds; first completed result wins "
                        "(default off)")
    p.add_argument("--shed-queue-depth", type=int, default=None,
                   metavar="N", help="shed submissions (typed "
                        "ServiceOverloadedError with a retry-after "
                        "hint) once the queue is deeper than N")
    p.add_argument("--shed-wait-seconds", type=float, default=None,
                   metavar="SLO", help="shed once the projected queue "
                        "wait (EMA service time x depth / workers) "
                        "exceeds SLO seconds")
    p.add_argument("--json", type=str, default=None, metavar="FILE",
                   help="write the latency/hit-rate summary as JSON")
    p.add_argument("--lock-witness", action="store_true",
                   help="wrap the serve-stack locks in the runtime "
                        "LockWitness: record the acquisition-order "
                        "graph, assert it is acyclic at exit (exit 1 "
                        "on a cycle) and export lock.held_seconds / "
                        "lock.contention metrics")
    p.add_argument("--lock-trace", type=str, default=None,
                   metavar="FILE",
                   help="with --lock-witness: dump held-lock spans + "
                        "the witnessed graph as Chrome trace JSON")
    p.add_argument("--http", action="store_true",
                   help="serve the multi-tenant HTTP API (repro.edge) "
                        "in front of the service/fleet instead of "
                        "running a scripted workload (docs/HTTP.md)")
    p.add_argument("--host", type=str, default="127.0.0.1",
                   help="--http: bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="--http: bind port; 0 picks a free one and "
                        "prints the bound URL (default 0)")
    p.add_argument("--http-token", action="append", default=None,
                   metavar="NAME:TOKEN[:RATE[:BURST]]",
                   help="--http: register a tenant (repeatable); "
                        "default demo:demo-token")
    p.add_argument("--http-rate", type=float, default=50.0,
                   help="--http: default per-tenant sustained "
                        "requests/s (default 50)")
    p.add_argument("--http-burst", type=int, default=20,
                   help="--http: default per-tenant burst allowance "
                        "(default 20)")
    p.add_argument("--http-max-body-kb", type=int, default=64,
                   help="--http: per-request body cap in KiB; larger "
                        "bodies get a typed 413 (default 64)")
    p.add_argument("--request-log", type=str, default=None,
                   metavar="FILE",
                   help="--http: append one redacted JSON line per "
                        "request (no bodies, no tokens)")
    p.add_argument("--http-duration", type=float, default=None,
                   metavar="SECONDS",
                   help="--http: serve for this long then exit 0 "
                        "(default: until Ctrl-C)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("packages", help="run the MD-package emulators")
    _add_molecule_args(p)
    p.set_defaults(fn=cmd_packages)

    p = sub.add_parser("report", help="run a small pass over every "
                                      "experiment and write CSVs + "
                                      "report.md")
    p.add_argument("--out", type=str, default="repro-report")
    p.add_argument("--max-size", type=int, default=1500,
                   help="largest suite molecule (default 1500)")
    p.add_argument("--capsid-atoms", type=int, default=4000)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("info", help="print machine/package inventory")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("lint", help="run the project static analyzer "
                                    "(rules RPR001-RPR205)")
    p.add_argument("paths", nargs="*", default=["src"])
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("--select", type=str, default=None)
    p.add_argument("--ignore", type=str, default=None)
    p.add_argument("--statistics", action="store_true")
    p.add_argument("--list-rules", action="store_true")
    p.set_defaults(fn=cmd_lint)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
