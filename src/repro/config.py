"""Run-level configuration objects shared across the library.

The paper's algorithms are tuned by two independent approximation
parameters (Section II and V): one for the Born-radius traversal and one
for the energy traversal, both called ε.  The experiments in Section V
fix ``ε_born = 0.9`` and vary ``ε_epol`` in ``[0.1, 0.9]``, with an
optional "approximate math" mode (lower-precision ``sqrt``/``exp``) that
trades another 4–5 % of accuracy for a ~1.42× speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ApproxParams:
    """Approximation knobs for the octree solvers.

    Parameters
    ----------
    eps_born:
        Multiplicative error target ε for the Born-radius near–far
        decomposition (paper Fig. 2).  A node pair is *far* when
        ``r_AQ > (r_A + r_Q) · (β+1)/(β−1)`` with ``β = (1+ε)^(1/6)``,
        which bounds the spread of ``|r_q − x_a|⁶`` within the pair by
        ``1+ε``.
    eps_epol:
        ε for the energy traversal (paper Fig. 3): far when
        ``r_UV > (r_U + r_V)(1 + 2/ε)``; Born radii are bucketed on a
        ``(1+ε)``-geometric grid.
    approx_math:
        When true, the pair kernels use fast low-precision ``sqrt`` and
        ``exp`` approximations (paper §V-C/E: error shifts by 4–5 %,
        time drops ~1.42×).
    born_mac:
        Which multipole-acceptance criterion the Born traversal uses.
        ``"distance"`` (default): far when ``r_AQ > (r_A+r_Q)(1+2/ε)``
        — the same (1+ε) *distance*-ratio bound the paper's Fig. 3
        energy traversal uses (note ``1+2/ε = ((1+ε)+1)/((1+ε)−1)``),
        and the only reading consistent with the paper's reported
        running times.  ``"strict"``: far when the distance ratio is
        below ``(1+ε)^(1/6)`` — §II's prose bound, which guarantees
        per-term ``1+ε`` error on the r⁶ integrand but accepts almost
        nothing at protein scales.  See DESIGN.md §1 and the
        ``bench_ablation_mac`` benchmark.
    leaf_size:
        Maximum number of points stored in an octree leaf.
    max_depth:
        Hard cap on octree depth (21 levels is the Morton-code limit).
    """

    eps_born: float = 0.9
    eps_epol: float = 0.9
    approx_math: bool = False
    born_mac: str = "distance"
    leaf_size: int = 32
    max_depth: int = 21

    def __post_init__(self) -> None:
        if self.eps_born <= 0.0:
            raise ValueError("eps_born must be > 0")
        if self.eps_epol <= 0.0:
            raise ValueError("eps_epol must be > 0")
        if self.born_mac not in ("distance", "strict"):
            raise ValueError("born_mac must be 'distance' or 'strict'")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if not 1 <= self.max_depth <= 21:
            raise ValueError("max_depth must be in [1, 21]")

    def with_(self, **kw) -> "ApproxParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class ParallelConfig:
    """How a solver run is laid out on the (simulated) cluster.

    ``processes`` MPI ranks, each running ``threads`` worker threads.
    ``threads == 1`` is the paper's pure distributed ``OCT_MPI``;
    ``threads > 1`` is the hybrid ``OCT_MPI+CILK``.  ``processes == 1``
    with ``threads > 1`` is the shared-memory ``OCT_CILK`` setting.
    """

    processes: int = 1
    threads: int = 1
    #: Work division for the Born/energy phases: ``"node"`` (leaf
    #: segments, the paper's best) or ``"atom"`` (atom segments).
    work_division: str = "node"
    #: Seed for the work-stealing victim RNG (runs are deterministic).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.processes < 1 or self.threads < 1:
            raise ValueError("processes and threads must be >= 1")
        if self.work_division not in ("node", "atom"):
            raise ValueError("work_division must be 'node' or 'atom'")

    @property
    def total_cores(self) -> int:
        """Total hardware contexts the run occupies."""
        return self.processes * self.threads
