"""Named drivers matching the paper's program list (Table II).

* ``run_oct_cilk``  — shared-memory, dual-tree algorithm of [6,7], one
  process with p cilk workers (the paper's ``OCT_CILK``).
* ``run_oct_mpi``   — pure distributed single-tree algorithm, P ranks ×
  1 thread (``OCT_MPI``).
* ``run_oct_hybrid``— distributed-shared single-tree algorithm, P ranks
  × p threads (``OCT_MPI+CILK``).

Each returns a :class:`DriverResult` with the real energy/radii and the
virtual wall time on the modelled machine.  Profiles are cached per
(molecule, params, method) so parameter sweeps pay one traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec
from repro.cluster.trace import RunStats
from repro.config import ApproxParams
from repro.molecules.molecule import Molecule
from repro.faults.plan import FaultPlan
from repro.obs import span
from repro.parallel.distributed import run_fig4_ft, simulate_fig4
from repro.parallel.profile import WorkProfile


@dataclass
class DriverResult:
    """One named-driver run."""

    name: str
    energy: float
    born_radii: np.ndarray
    wall_seconds: float
    stats: RunStats
    profile: WorkProfile

    @property
    def memory_per_process(self) -> int:
        return self.stats.memory_per_process()


class _ProfileCache:
    """Per-(molecule id, params, method) WorkProfile cache."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, ApproxParams, str], WorkProfile] = {}

    def get(self, molecule: Molecule, params: ApproxParams,
            method: str) -> WorkProfile:
        key = (id(molecule), params, method)
        if key not in self._cache:
            self._cache[key] = WorkProfile.from_molecule(molecule, params,
                                                         method=method)
        return self._cache[key]


_profiles = _ProfileCache()


def clear_profile_cache() -> None:
    """Drop cached work profiles (used between benchmark groups)."""
    _profiles._cache.clear()


def _run(name: str, molecule: Molecule, params: ApproxParams,
         method: str, processes: int, threads: int,
         machine: Optional[MachineSpec], cost: Optional[CostModel],
         seed: int) -> DriverResult:
    profile = _profiles.get(molecule, params, method)
    with span("driver.simulate", driver=name, processes=processes,
              threads=threads):
        stats = simulate_fig4(profile, processes, threads,
                              machine=machine, cost=cost, seed=seed)
    return DriverResult(name=name, energy=profile.energy,
                        born_radii=profile.born_radii,
                        wall_seconds=stats.wall_seconds, stats=stats,
                        profile=profile)


def run_oct_cilk(molecule: Molecule,
                 params: ApproxParams = ApproxParams(),
                 threads: int = 12,
                 machine: Optional[MachineSpec] = None,
                 cost: Optional[CostModel] = None,
                 seed: int = 0) -> DriverResult:
    """Shared-memory OCT_CILK (dual-tree algorithm, 1 process)."""
    return _run("OCT_CILK", molecule, params, "dualtree", 1, threads,
                machine, cost, seed)


def run_oct_mpi(molecule: Molecule,
                params: ApproxParams = ApproxParams(),
                processes: int = 12,
                machine: Optional[MachineSpec] = None,
                cost: Optional[CostModel] = None,
                seed: int = 0) -> DriverResult:
    """Pure distributed OCT_MPI (single-tree, P ranks × 1 thread)."""
    return _run("OCT_MPI", molecule, params, "octree", processes, 1,
                machine, cost, seed)


def run_oct_hybrid(molecule: Molecule,
                   params: ApproxParams = ApproxParams(),
                   processes: int = 2,
                   threads: int = 6,
                   machine: Optional[MachineSpec] = None,
                   cost: Optional[CostModel] = None,
                   seed: int = 0) -> DriverResult:
    """Hybrid OCT_MPI+CILK (single-tree, P ranks × p threads)."""
    return _run("OCT_MPI+CILK", molecule, params, "octree", processes,
                threads, machine, cost, seed)


def run_oct_mpi_ft(molecule: Molecule,
                   params: ApproxParams = ApproxParams(),
                   processes: int = 4,
                   machine: Optional[MachineSpec] = None,
                   cost: Optional[CostModel] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   timeout: Optional[float] = None) -> DriverResult:
    """Fault-tolerant OCT_MPI: the real solve under an (optional) plan.

    Unlike the profiled drivers above this executes the full Fig. 4
    program on the simulated runtime (no WorkProfile cache), so the
    returned energy/radii come from the surviving ranks themselves.
    """
    with span("driver.ft", driver="OCT_MPI_FT", processes=processes,
              faults=fault_plan is not None):
        outcome = run_fig4_ft(molecule, params, processes=processes,
                              machine=machine, cost=cost,
                              fault_plan=fault_plan, timeout=timeout)
    profile = _profiles.get(molecule, params, "octree")
    return DriverResult(name="OCT_MPI_FT", energy=outcome.energy,
                        born_radii=outcome.born_radii,
                        wall_seconds=outcome.stats.wall_seconds,
                        stats=outcome.stats, profile=profile)
