"""Distributed sample sort over the simulated MPI runtime.

Step 1 of the paper's Fig. 4 has every rank build the octrees — cheap
because data is replicated.  The data-distributed extension
(:mod:`repro.parallel.datadist`) instead needs a *global Morton order
without any rank holding all points*: the textbook answer is parallel
sample sort (Grama et al., the paper's ref [12], §9.5):

1. each rank sorts its local keys;
2. each rank picks ``P − 1`` evenly spaced local samples; the samples
   are allgathered and every rank deterministically selects global
   splitters from the combined sorted sample;
3. each rank partitions its local keys by splitter and sends bucket
   *j* to rank *j* (point-to-point exchange);
4. each rank merges what it received — rank *j* now owns the *j*-th
   contiguous slab of the global order.

The implementation moves real numpy payloads through
:class:`~repro.cluster.simmpi.SimComm` and charges sorting flops plus
all-to-all communication to the virtual clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, lonestar4
from repro.cluster.simmpi import SimCluster
from repro.cluster.trace import RunStats

#: Modelled flops per key per comparison level of a local sort.
FLOPS_PER_KEY_SORT = 4.0


@dataclass
class SampleSortOutcome:
    """Result of a distributed sort."""

    #: Per-rank sorted key slabs (concatenation = globally sorted keys).
    slabs: List[np.ndarray]
    #: Per-rank payload slabs aligned with ``slabs`` (or None).
    payload_slabs: Optional[List[np.ndarray]]
    stats: RunStats

    def gathered(self) -> np.ndarray:
        return np.concatenate(self.slabs)


def sample_sort(keys: np.ndarray,
                processes: int,
                payload: Optional[np.ndarray] = None,
                machine: Optional[MachineSpec] = None,
                cost: Optional[CostModel] = None) -> SampleSortOutcome:
    """Sort ``keys`` (uint64/anything numpy-sortable) across ``processes``
    simulated ranks, optionally carrying a row-aligned ``payload``.

    Input is dealt to ranks in contiguous blocks (as if each rank had
    loaded its own shard); output slab *j* holds the *j*-th contiguous
    range of the global sorted order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if payload is not None and len(payload) != len(keys):
        raise ValueError("payload must align with keys")
    machine = machine or lonestar4(nodes=max(1, -(-processes // 12)))
    cost = cost or CostModel(machine=machine)
    P = processes
    n = len(keys)
    bounds = np.linspace(0, n, P + 1).astype(np.int64)

    def rankfn(comm):
        r = comm.rank
        local = keys[bounds[r]:bounds[r + 1]]
        local_payload = (payload[bounds[r]:bounds[r + 1]]
                         if payload is not None else None)

        # (1) local sort
        order = np.argsort(local, kind="stable")
        local = local[order]
        if local_payload is not None:
            local_payload = local_payload[order]
        m = len(local)
        comm.compute(FLOPS_PER_KEY_SORT * m * max(1.0, np.log2(max(m, 2)))
                     * cost.seconds_per_flop())

        # (2) splitter selection (deterministic given the data)
        if m >= P and P > 1:
            idx = (np.arange(1, P) * m) // P
            samples = local[idx]
        else:
            samples = local[: max(0, min(m, P - 1))]
        all_samples = np.sort(np.concatenate(comm.allgather(samples)))
        if len(all_samples) >= P - 1 and P > 1:
            sel = (np.arange(1, P) * len(all_samples)) // P
            splitters = all_samples[sel]
        else:
            splitters = all_samples

        # (3) bucket exchange — exactly P buckets even if the sample
        # produced fewer than P − 1 splitters (tiny/empty inputs):
        # missing splitters close empty trailing buckets.
        cut_positions = np.searchsorted(local, splitters, side="left")
        cuts = np.full(P + 1, m, dtype=np.int64)
        cuts[0] = 0
        cuts[1:1 + len(cut_positions)] = cut_positions
        cuts = np.maximum.accumulate(cuts)
        for dest in range(P):
            if dest == r:
                continue
            chunk = local[cuts[dest]:cuts[dest + 1]]
            pchunk = (local_payload[cuts[dest]:cuts[dest + 1]]
                      if local_payload is not None else None)
            comm.send((chunk, pchunk), dest=dest, tag=7)
        pieces = [local[cuts[r]:cuts[r + 1]]]
        ppieces = ([local_payload[cuts[r]:cuts[r + 1]]]
                   if local_payload is not None else None)
        for src in range(P):
            if src == r:
                continue
            chunk, pchunk = comm.recv(source=src, tag=7)
            pieces.append(chunk)
            if ppieces is not None:
                ppieces.append(pchunk)

        # (4) local merge
        mine = np.concatenate(pieces) if pieces else local[:0]
        order = np.argsort(mine, kind="stable")
        mine = mine[order]
        out_payload = None
        if ppieces is not None:
            out_payload = np.concatenate(ppieces)[order]
        k = len(mine)
        comm.compute(FLOPS_PER_KEY_SORT * k * max(1.0, np.log2(max(k, 2)))
                     * cost.seconds_per_flop())
        return mine, out_payload

    cluster = SimCluster(P, machine=machine, cost=cost)
    results, stats = cluster.run(rankfn)
    slabs = [r[0] for r in results]
    payload_slabs = ([r[1] for r in results]
                     if payload is not None else None)
    return SampleSortOutcome(slabs=slabs, payload_slabs=payload_slabs,
                             stats=stats)
