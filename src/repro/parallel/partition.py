"""Static work division across MPI ranks (paper §IV-A).

The paper's best scheme — and the one Fig. 4 uses — is *node-based*
division: the octree's leaves (in Morton order) are cut into P equal
segments, and rank *i* works on the *i*-th segment.  Atom-based
division (cutting the sorted atom range) is also implemented, both for
the push phase (where the paper itself divides atoms) and for the
ablation showing why node-based division keeps the error independent
of P.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.octree.build import Octree


def segment_bounds(n_items: int, parts: int) -> np.ndarray:
    """Boundaries of an even split of ``n_items`` into ``parts`` segments.

    Returns ``parts + 1`` increasing offsets; segment *i* is
    ``[bounds[i], bounds[i+1])``.  Extra items go to the earliest
    segments, matching the usual block distribution.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    base, extra = divmod(n_items, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def leaf_segments(tree: Octree, parts: int) -> List[np.ndarray]:
    """Node-based division: positions into ``tree.leaves`` per rank."""
    bounds = segment_bounds(len(tree.leaves), parts)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(parts)]


def atom_segments(natoms: int, parts: int) -> List[Tuple[int, int]]:
    """Atom-based division: ``(start, end)`` sorted-atom ranges per rank."""
    bounds = segment_bounds(natoms, parts)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


def weighted_leaf_segments(tree: Octree, parts: int,
                           leaf_weights: np.ndarray) -> List[np.ndarray]:
    """Cost-aware node division (ablation): contiguous leaf segments with
    near-equal *weight* rather than equal *count*.

    A greedy sweep closes a segment once it reaches the average target
    weight; this is the "explicit" static balancing the paper's
    conclusion lists as future work.
    """
    n = len(tree.leaves)
    w = np.asarray(leaf_weights, dtype=np.float64)
    if len(w) != n:
        raise ValueError("need one weight per leaf")
    if parts >= n:
        return [np.array([i]) if i < n else np.empty(0, dtype=np.int64)
                for i in range(parts)]
    target = w.sum() / parts
    cuts = [0]
    acc = 0.0
    for i in range(n):
        acc += w[i]
        if acc >= target * len(cuts) and len(cuts) < parts:
            cuts.append(i + 1)
    while len(cuts) < parts:
        cuts.append(n)
    cuts.append(n)
    return [np.arange(cuts[i], cuts[i + 1]) for i in range(parts)]
