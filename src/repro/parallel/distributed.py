"""The paper's Fig. 4 distributed program, two ways.

:func:`run_fig4_simmpi` *executes* the seven steps on the simulated MPI
runtime: every rank is a thread, partial integrals really travel
through ``Allreduce``, Born-radius segments through ``Allgather`` and
partial energies through ``Reduce``.  Use it for correctness runs and
moderate rank counts.

:func:`simulate_fig4` *replays* a recorded :class:`WorkProfile` under a
given (P, p) layout: per-leaf task costs are partitioned node-wise,
each rank's parallel phase goes through the work-stealing simulator,
and communication is priced by the collective cost formulas.  Use it
for the core-count sweeps (Figs. 5, 6, 11) where the numerics are
provably layout-independent.

:func:`run_fig4_ft` is the fault-tolerant variant of the simulated-MPI
execution: phase checkpoints, shrink-based recovery after rank deaths,
and deterministic redistribution of the dead rank's work — see
``docs/ROBUSTNESS.md`` and the ``repro chaos`` harness.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.hybrid import run_intra_rank
from repro.cluster.machine import MachineSpec, lonestar4
from repro.cluster.simmpi import SimCluster
from repro.cluster.trace import PhaseSlice, RankStats, RunStats
from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.born_octree import (
    approx_integrals,
    push_integrals_to_atoms,
)
from repro.core.energy_octree import (
    approx_epol_for_leaves,
    build_charge_buckets,
)
from repro.core.gb import energy_prefactor
from repro.faults.errors import FaultError, RankCrashedError
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    MessageDelay,
    Straggler,
)
from repro.molecules.molecule import Molecule
from repro.octree.build import build_octree
from repro.parallel.partition import atom_segments, leaf_segments, segment_bounds
from repro.parallel.profile import WorkProfile


@dataclass
class DistributedOutcome:
    """Result of a real simulated-MPI execution of Fig. 4."""

    energy: float
    born_radii: np.ndarray            # original atom order
    stats: RunStats


def run_fig4_simmpi(molecule: Molecule,
                    params: ApproxParams = ApproxParams(),
                    processes: int = 4,
                    threads: int = 1,
                    machine: Optional[MachineSpec] = None,
                    cost: Optional[CostModel] = None,
                    work_division: str = "node",
                    tau: float = TAU_WATER) -> DistributedOutcome:
    """Execute the seven steps of Fig. 4 on the simulated MPI runtime.

    ``work_division`` selects the Born-phase scheme: ``"node"`` divides
    the Q-leaves (the paper's choice), ``"atom"`` divides the sorted
    atoms (each rank traverses everything but only deposits for its
    range — the ablation whose error varies with P).  The energy phase
    always uses node division, as in the paper.
    """
    if work_division not in ("node", "atom"):
        raise ValueError("work_division must be 'node' or 'atom'")
    machine = machine or lonestar4()
    cost = cost or CostModel(machine=machine)

    surf = molecule.require_surface()
    atoms_tree = build_octree(molecule.positions, params.leaf_size,
                              params.max_depth)
    q_tree = build_octree(surf.points, params.leaf_size, params.max_depth)
    wn_sorted = surf.weighted_normals[q_tree.perm]
    q_sorted = molecule.charges[atoms_tree.perm]
    intrinsic_sorted = molecule.radii[atoms_tree.perm]
    natoms = molecule.natoms

    q_segs = leaf_segments(q_tree, processes)
    a_leaf_segs = leaf_segments(atoms_tree, processes)
    a_atom_segs = atom_segments(natoms, processes)
    data_bytes = (molecule.nbytes() + atoms_tree.nbytes() + q_tree.nbytes()
                  + 8 * (atoms_tree.nnodes + 2 * natoms))

    def rankfn(comm):
        # Step 1 — octrees are built (locally, identical) as
        # preprocessing; excluded from timing as in §IV-C.
        comm.charge_memory(data_bytes)

        # Step 2 — APPROX-INTEGRALS over this rank's share.
        if work_division == "node":
            s_node, s_atom, cnt, _ = approx_integrals(
                atoms_tree, q_tree, wn_sorted, params,
                q_leaf_subset=q_segs[comm.rank])
        else:
            s_node, s_atom, cnt, _ = approx_integrals(
                atoms_tree, q_tree, wn_sorted, params,
                atom_range=a_atom_segs[comm.rank])
        comm.compute(cost.born_compute_seconds(
            cnt.frontier_visits, cnt.far_evaluations,
            cnt.exact_interactions, params.approx_math), label="born")

        # Step 3 — gather everyone's partial integrals.
        packed = comm.allreduce(np.concatenate([s_node, s_atom]))
        s_node_t, s_atom_t = packed[:atoms_tree.nnodes], \
            packed[atoms_tree.nnodes:]

        # Step 4 — PUSH-INTEGRALS-TO-ATOMS for this rank's atom segment.
        seg = a_atom_segs[comm.rank]
        radii_sorted = push_integrals_to_atoms(
            atoms_tree, s_node_t, s_atom_t, intrinsic_sorted,
            atom_range=seg)
        comm.compute(cost.push_compute_seconds(
            seg[1] - seg[0], atoms_tree.nnodes / comm.size), label="push")

        # Step 5 — share Born radii segments.
        parts = comm.allgather(radii_sorted[seg[0]:seg[1]])
        radii_full = np.concatenate(parts)

        # Step 6 — partial energy over this rank's atoms-leaf segment.
        buckets = build_charge_buckets(atoms_tree, q_sorted, radii_full,
                                       params.eps_epol)
        raw, cnt2, _ = approx_epol_for_leaves(
            atoms_tree, q_sorted, radii_full, buckets, params,
            v_leaf_subset=a_leaf_segs[comm.rank])
        comm.compute(cost.epol_compute_seconds(
            cnt2.frontier_visits, cnt2.far_evaluations,
            cnt2.exact_interactions, buckets.nbuckets, params.approx_math),
            label="epol")

        # Step 7 — master accumulates the energy.
        total_raw = comm.reduce(raw, root=0)
        energy = (energy_prefactor(tau) * total_raw
                  if comm.rank == 0 else None)
        return energy, radii_full

    cluster = SimCluster(processes, threads_per_rank=threads,
                         machine=machine, cost=cost)
    results, stats = cluster.run(rankfn)
    energy = results[0][0]
    radii_sorted = results[0][1]
    radii = atoms_tree.scatter_to_original(radii_sorted)
    return DistributedOutcome(energy=energy, born_radii=radii, stats=stats)


# ---------------------------------------------------------------------------
# Fault-tolerant Fig. 4: checkpointed phases + shrink recovery
# ---------------------------------------------------------------------------


class _Checkpoint:
    """Replicated in-memory phase-checkpoint store for one FT run.

    Models a replicated checkpoint service: the ranks publish each
    completed phase's collective result under a name (idempotent —
    every rank publishes the identical value, the first write wins),
    and a recovering rank reads the checkpoint instead of recomputing
    the phase.  Values are copied on both ``put`` and ``get`` so rank
    threads never share mutable arrays through the store.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._store: Dict[str, Any] = {}             # guarded-by: _lock

    def put(self, name: str, value: Any) -> None:
        with self._lock:
            if name not in self._store:
                self._store[name] = _ckpt_copy(value)

    def get(self, name: str) -> Any:
        with self._lock:
            value = self._store.get(name)
        return _ckpt_copy(value) if value is not None else None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._store)


def _ckpt_copy(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    return copy.deepcopy(value)


def _owners_from_leaf_segments(segments: List[np.ndarray],
                               n_leaves: int) -> np.ndarray:
    owner = np.empty(n_leaves, dtype=np.int64)
    for r, idx in enumerate(segments):
        owner[idx] = r
    return owner


def _owners_from_atom_segments(segments: List[Tuple[int, int]],
                               natoms: int) -> np.ndarray:
    owner = np.empty(natoms, dtype=np.int64)
    for r, (s, e) in enumerate(segments):
        owner[s:e] = r
    return owner


def _reassign_lost(owner: np.ndarray, newly_dead: Tuple[int, ...],
                   alive: Tuple[int, ...]) -> None:
    """Recovery policy: redistribute a dead rank's blocks.

    Every index owned by a newly-dead rank is split contiguously and
    evenly among the survivors — the same static-partition arithmetic
    (:func:`segment_bounds`) that cut the original segments, so every
    rank derives the identical reassignment independently, with no
    extra communication.
    """
    lost = np.flatnonzero(np.isin(owner, newly_dead))
    if lost.size == 0:
        return
    bounds = segment_bounds(int(lost.size), len(alive))
    for i, r in enumerate(alive):
        owner[lost[bounds[i]:bounds[i + 1]]] = r


def _contiguous_runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """``(start, end)`` half-open runs of True in a boolean mask."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([idx[0]], idx[breaks + 1]))
    ends = np.concatenate((idx[breaks], [idx[-1]])) + 1
    return list(zip(starts.tolist(), ends.tolist()))


def run_fig4_ft(molecule: Molecule,
                params: ApproxParams = ApproxParams(),
                processes: int = 4,
                threads: int = 1,
                machine: Optional[MachineSpec] = None,
                cost: Optional[CostModel] = None,
                fault_plan: Optional[FaultPlan] = None,
                timeout: Optional[float] = None,
                tau: float = TAU_WATER) -> DistributedOutcome:
    """Fault-tolerant Fig. 4: same numerics, survives rank crashes.

    Each of the three compute phases (integrals, push, energy) runs
    under a recovery loop:

    * every rank works through the blocks it *owns* (Q-leaves, atom
      ranges, atoms-tree leaves — the static partition of
      :mod:`repro.parallel.partition`), folding results into local
      accumulators and marking blocks *folded* so a retry never
      double-counts;
    * when a peer dies, the in-flight collective aborts with a typed
      :class:`~repro.faults.errors.CollectiveAbortedError` naming the
      dead; survivors :meth:`~repro.cluster.simmpi.SimComm.shrink` to
      a new communicator epoch and apply :func:`_reassign_lost` to
      take over the dead rank's unfolded blocks — recomputing *only*
      the lost work, charged as recovery time in the virtual cost
      model;
    * each phase's collective result is published to a replicated
      :class:`_Checkpoint` store ("integrals" after the Allreduce,
      "radii" after the Allgather), so a phase whose collective
      completed is never re-entered.

    The recovered energy matches the fault-free run to floating-point
    reordering (the chaos harness asserts 1e-9 relative agreement).
    A rank crashed by the plan returns ``None``; the cluster tolerates
    injected deaths as long as one rank survives.
    """
    machine = machine or lonestar4()
    cost = cost or CostModel(machine=machine)

    surf = molecule.require_surface()
    atoms_tree = build_octree(molecule.positions, params.leaf_size,
                              params.max_depth)
    q_tree = build_octree(surf.points, params.leaf_size, params.max_depth)
    wn_sorted = surf.weighted_normals[q_tree.perm]
    q_sorted = molecule.charges[atoms_tree.perm]
    intrinsic_sorted = molecule.radii[atoms_tree.perm]
    natoms = molecule.natoms
    nnodes = atoms_tree.nnodes
    n_qleaves = len(q_tree.leaves)
    n_vleaves = len(atoms_tree.leaves)

    # Static partition metadata, reused verbatim by the recovery policy.
    q_owner0 = _owners_from_leaf_segments(
        leaf_segments(q_tree, processes), n_qleaves)
    atom_owner0 = _owners_from_atom_segments(
        atom_segments(natoms, processes), natoms)
    v_owner0 = _owners_from_leaf_segments(
        leaf_segments(atoms_tree, processes), n_vleaves)
    data_bytes = (molecule.nbytes() + atoms_tree.nbytes() + q_tree.nbytes()
                  + 8 * (nnodes + 2 * natoms))

    ckpt = _Checkpoint()

    def rankfn(comm):
        comm.charge_memory(data_bytes)
        q_owner = q_owner0.copy()
        atom_owner = atom_owner0.copy()
        v_owner = v_owner0.copy()
        owners = (q_owner, atom_owner, v_owner)

        def on_fault(exc: FaultError) -> None:
            """Shrink to the survivors and take over the dead's blocks."""
            if isinstance(exc, RankCrashedError) and exc.rank == comm.rank:
                raise exc          # this rank *is* the casualty
            info = comm.shrink()
            if not info.newly_dead:
                raise exc          # timeout/divergence, not a death
            for owner in owners:
                _reassign_lost(owner, info.newly_dead, info.alive)

        # -- Phase 1: APPROX-INTEGRALS + Allreduce (ckpt "integrals") --
        s_node_acc = np.zeros(nnodes, dtype=np.float64)
        s_atom_acc = np.zeros(natoms, dtype=np.float64)
        q_folded = np.zeros(n_qleaves, dtype=bool)
        # ``attempt`` counts per-phase retries: attempt 0 is primary
        # work (even on a shrunken communicator — redistribution is
        # just the static partition over fewer ranks); attempt > 0
        # re-executes work a dead rank lost, and only that is labelled
        # and charged as recovery.
        attempt = 0
        while True:
            packed = ckpt.get("integrals")
            if packed is not None:
                break
            try:
                mine = np.flatnonzero((q_owner == comm.rank) & ~q_folded)
                if mine.size:
                    s_node, s_atom, cnt, _ = approx_integrals(
                        atoms_tree, q_tree, wn_sorted, params,
                        q_leaf_subset=mine)
                    comm.compute(
                        cost.born_compute_seconds(
                            cnt.frontier_visits, cnt.far_evaluations,
                            cnt.exact_interactions, params.approx_math),
                        label="born" if attempt == 0 else "born.recovery",
                        recovery=attempt > 0)
                    s_node_acc += s_node
                    s_atom_acc += s_atom
                    q_folded[mine] = True
                packed = comm.allreduce(
                    np.concatenate([s_node_acc, s_atom_acc]))
                ckpt.put("integrals", packed)
                break
            except FaultError as exc:
                on_fault(exc)
                attempt += 1
        s_node_t, s_atom_t = packed[:nnodes], packed[nnodes:]

        # -- Phase 2: PUSH-INTEGRALS + Allgather (ckpt "radii") --------
        radii_acc = np.full(natoms, np.nan, dtype=np.float64)
        atom_folded = np.zeros(natoms, dtype=bool)
        attempt = 0
        while True:
            radii_full = ckpt.get("radii")
            if radii_full is not None:
                break
            try:
                todo = (atom_owner == comm.rank) & ~atom_folded
                for s, e in _contiguous_runs(todo):
                    vals = push_integrals_to_atoms(
                        atoms_tree, s_node_t, s_atom_t, intrinsic_sorted,
                        atom_range=(s, e))
                    comm.compute(
                        cost.push_compute_seconds(
                            e - s, nnodes / len(comm.alive)),
                        label="push" if attempt == 0 else "push.recovery",
                        recovery=attempt > 0)
                    radii_acc[s:e] = vals[s:e]
                    atom_folded[s:e] = True
                chunks = [(int(s), radii_acc[s:e].copy())
                          for s, e in _contiguous_runs(atom_folded)]
                parts = comm.allgather(chunks)
                flat = sorted((c for part in parts for c in part),
                              key=lambda c: c[0])
                radii_full = np.concatenate([v for _, v in flat])
                ckpt.put("radii", radii_full)
                break
            except FaultError as exc:
                on_fault(exc)
                attempt += 1

        # -- Phase 3: partial energies + Reduce + result Bcast ---------
        buckets = build_charge_buckets(atoms_tree, q_sorted, radii_full,
                                       params.eps_epol)
        raw_acc = 0.0
        v_folded = np.zeros(n_vleaves, dtype=bool)
        attempt = 0
        while True:
            try:
                mine = np.flatnonzero((v_owner == comm.rank) & ~v_folded)
                if mine.size:
                    raw, cnt2, _ = approx_epol_for_leaves(
                        atoms_tree, q_sorted, radii_full, buckets, params,
                        v_leaf_subset=mine)
                    comm.compute(
                        cost.epol_compute_seconds(
                            cnt2.frontier_visits, cnt2.far_evaluations,
                            cnt2.exact_interactions, buckets.nbuckets,
                            params.approx_math),
                        label="epol" if attempt == 0 else "epol.recovery",
                        recovery=attempt > 0)
                    raw_acc += raw
                    v_folded[mine] = True
                total_raw = comm.reduce(raw_acc, root=0)
                energy = (energy_prefactor(tau) * total_raw
                          if total_raw is not None else None)
                # Master may have died: reduce/bcast fail over to the
                # lowest survivor, and every rank returns the energy.
                energy = comm.bcast(energy, root=0)
                break
            except FaultError as exc:
                on_fault(exc)
                attempt += 1
        return energy, radii_full

    cluster = SimCluster(processes, threads_per_rank=threads,
                         machine=machine, cost=cost, timeout=timeout,
                         fault_plan=fault_plan)
    results, stats = cluster.run(rankfn)
    energy, radii_sorted = next(r for r in results if r is not None)
    radii = atoms_tree.scatter_to_original(radii_sorted)
    return DistributedOutcome(energy=energy, born_radii=radii, stats=stats)


# ---------------------------------------------------------------------------
# Fast schedule replay over a WorkProfile
# ---------------------------------------------------------------------------


def _working_set_per_core(profile: WorkProfile, cores: int) -> float:
    """Heuristic per-core working set during a traversal phase.

    Each core touches its proportional slice of the point data plus the
    upper levels of both trees; the factor 3 absorbs the re-touched
    shared structure.  Feeds the cache-tier factor only.
    """
    return 3.0 * profile.data_bytes / max(1, cores)


def simulate_fig4(profile: WorkProfile,
                  processes: int,
                  threads: int = 1,
                  machine: Optional[MachineSpec] = None,
                  cost: Optional[CostModel] = None,
                  seed: int = 0,
                  noise_sigma: float = 0.02,
                  segmenting: str = "count",
                  fault_plan: Optional[FaultPlan] = None) -> RunStats:
    """Replay one (P, p) layout over a recorded :class:`WorkProfile`.

    Returns a :class:`RunStats` whose ``phases`` dictionary holds the
    virtual seconds of each Fig. 4 step; ``wall_seconds`` is the rank
    maximum.  ``seed`` drives both the work-stealing victim RNG and the
    per-rank OS-noise factors, so repeated calls model repeated cluster
    runs (the paper's 20-run min/max envelopes in Fig. 6).

    ``segmenting`` selects how leaf work is balanced across ranks:
    ``"count"`` — equal leaf counts, the paper's scheme; ``"weighted"``
    — equal modelled *cost* per contiguous segment; ``"stealing"`` —
    cross-rank work stealing on top of the count segments (both
    "explicit load balancing" variants the paper's conclusion proposes
    as future work).

    ``fault_plan`` injects the *performance* fault classes into the
    replay — :class:`Straggler` slowdowns and collective
    :class:`MessageDelay` late entries (crashes and drops need real
    message passing; use :func:`run_fig4_ft` for those).
    """
    if segmenting not in ("count", "weighted", "stealing"):
        raise ValueError(
            "segmenting must be 'count', 'weighted' or 'stealing'")
    if fault_plan is not None:
        unsupported = [
            f for f in fault_plan.faults
            if not (isinstance(f, Straggler)
                    or (isinstance(f, MessageDelay) and f.op is not None))]
        if unsupported:
            raise ValueError(
                "simulate_fig4 replays support only Straggler and "
                "collective MessageDelay faults; use run_fig4_ft for "
                f"crashes and drops (got {unsupported[0]!r})")
    machine = machine or lonestar4()
    cost = cost or CostModel(machine=machine)
    P, p = processes, threads
    machine.placement(P, p)  # validates fit
    rpn = machine.ranks_per_node(P, p)
    rng = np.random.default_rng(seed)

    node_spec = machine.node
    cores_busy_per_node = min(rpn * p, node_spec.cores)
    per_socket = -(-cores_busy_per_node // node_spec.sockets)
    cf = cost.cache_factor(_working_set_per_core(profile, P * p),
                           cores_sharing_socket=per_socket)
    proc_bytes = profile.data_bytes
    mem_factor = cost.memory_pressure_factor(proc_bytes * rpn)
    if P == 1 and p > node_spec.cores_per_socket:
        # A lone process spanning sockets with no thread affinity
        # (cilk++ has no affinity manager — paper §V-A).
        mem_factor *= cost.numa_no_affinity_factor

    def noise() -> np.ndarray:
        return np.exp(rng.normal(0.0, noise_sigma, size=P))

    bps = profile.born_per_source
    born_leaf_sec = cost.born_compute_seconds(
        bps.visits.astype(np.float64), bps.far.astype(np.float64),
        bps.exact_interactions.astype(np.float64),
        profile.params.approx_math, cf)
    eps_src = profile.epol_per_source
    epol_leaf_sec = cost.epol_compute_seconds(
        eps_src.visits.astype(np.float64), eps_src.far.astype(np.float64),
        eps_src.exact_interactions.astype(np.float64),
        profile.nbuckets, profile.params.approx_math, cf)

    def _segment_bounds_for(leaf_sec: np.ndarray) -> np.ndarray:
        if segmenting == "count" or len(leaf_sec) <= P:
            return segment_bounds(len(leaf_sec), P)
        # Cost-aware cuts: close a segment once it reaches its share of
        # the total modelled cost (greedy sweep, contiguous segments).
        total = leaf_sec.sum()
        cuts = [0]
        acc = 0.0
        for i, c in enumerate(leaf_sec):
            acc += c
            if acc >= total * len(cuts) / P and len(cuts) < P:
                cuts.append(i + 1)
        while len(cuts) < P:
            cuts.append(len(leaf_sec))
        cuts.append(len(leaf_sec))
        return np.asarray(cuts)

    def phase_over_ranks(leaf_sec: np.ndarray, phase_seed: int
                         ) -> Tuple[np.ndarray, np.ndarray]:
        if segmenting == "stealing":
            from repro.cluster.cross_rank import CrossRankStealingSim
            sim = CrossRankStealingSim(
                ranks=P, threads_per_rank=p,
                task_overhead=cost.cilk_task_overhead,
                intra_steal_overhead=cost.cilk_steal_overhead,
                inter_steal_overhead=(
                    cost.point_to_point_seconds(8.0, same_node=False)
                    * 2.0),
                seed=phase_seed)
            st = sim.run(leaf_sec, segment_bounds(len(leaf_sec), P))
            extra = (cost.hybrid_interface_overhead
                     if (p > 1 and P > 1) else 0.0)
            jitter = float(np.exp(rng.normal(0.0, noise_sigma)))
            t = (st.makespan + extra) * mem_factor * jitter
            # The cross-rank simulator reports one pooled count; spread
            # it so per-rank accounting still sums to the total.
            spread = np.full(P, st.steals // P, dtype=np.int64)
            spread[:st.steals % P] += 1
            return np.full(P, t, dtype=np.float64), spread
        bounds = _segment_bounds_for(leaf_sec)
        times = np.empty(P, dtype=np.float64)
        steals = np.zeros(P, dtype=np.int64)
        jitter = noise()
        for r in range(P):
            seg = leaf_sec[bounds[r]:bounds[r + 1]]
            out = run_intra_rank(seg, p, cost, seed=phase_seed * 131 + r,
                                 mpi_interface=(P > 1))
            times[r] = out.seconds * mem_factor * jitter[r]
            steals[r] = out.steals
        return times, steals

    born_times, born_steals = phase_over_ranks(born_leaf_sec, seed * 7 + 1)
    epol_times, epol_steals = phase_over_ranks(epol_leaf_sec, seed * 7 + 2)

    push_each = cost.push_compute_seconds(
        profile.natoms / P, profile.atoms_nodes / P)
    if p > 1:
        push_each /= 0.9 * p
        if P > 1:
            push_each += cost.hybrid_interface_overhead
    push_times = push_each * mem_factor * noise()

    fault_events: List[FaultEvent] = []
    delay_by_op = {"allreduce": 0.0, "allgather": 0.0, "reduce": 0.0}
    delayed_srcs = {op: [] for op in delay_by_op}
    if fault_plan is not None and not fault_plan.is_empty:
        slow = np.array([fault_plan.slowdown(r) for r in range(P)],
                        dtype=np.float64)
        for r in np.flatnonzero(slow != 1.0):
            fault_events.append(FaultEvent("straggler", int(r), 0.0,
                                           f"slowdown x{slow[r]:g}"))
        born_times = born_times * slow
        push_times = push_times * slow
        epol_times = epol_times * slow
        # Fig. 4 runs each collective once, so only index-0 delays
        # apply; the latest-entering rank sets the stall everyone pays.
        for op in delay_by_op:
            for r in range(P):
                d = fault_plan.collective_delay(r, op, 0)
                if d > 0.0:
                    delayed_srcs[op].append((r, d))
            delay_by_op[op] = max(
                (d for _, d in delayed_srcs[op]), default=0.0)

    sync = cost.collective_sync_seconds(P)
    comm_allreduce = (cost.allreduce_seconds(
        profile.atoms_nodes + profile.natoms, P, p) + sync
        + delay_by_op["allreduce"])
    comm_allgather = (cost.allgather_seconds(profile.natoms / P, P, p)
                      + sync + delay_by_op["allgather"])
    comm_reduce = (cost.reduce_seconds(1.0, P, p) + sync
                   + delay_by_op["reduce"])
    comm_total = comm_allreduce + comm_allgather + comm_reduce

    phases = {
        "born": float(born_times.max()),
        "allreduce": comm_allreduce,
        "push": float(push_times.max()),
        "allgather": comm_allgather,
        "epol": float(epol_times.max()),
        "reduce": comm_reduce,
    }

    # Per-rank virtual timeline: each Fig. 4 step is one comp slice per
    # rank padded with idle to the step barrier, or one comm slice
    # (collectives synchronise, so all ranks share those intervals).
    comm_payloads = {
        "allreduce": 8 * (profile.atoms_nodes + profile.natoms),
        "allgather": int(8 * profile.natoms / P),
        "reduce": 8,
    }
    steps = (("born", born_times), ("allreduce", comm_allreduce),
             ("push", push_times), ("allgather", comm_allgather),
             ("epol", epol_times), ("reduce", comm_reduce))
    timeline: List[PhaseSlice] = []
    t_base = 0.0
    for name, dur in steps:
        if isinstance(dur, np.ndarray):
            t_end = t_base + float(dur.max())
            for r in range(P):
                t_r = t_base + float(dur[r])
                timeline.append(PhaseSlice(r, name, "comp", t_base, t_r))
                if t_end > t_r:
                    timeline.append(PhaseSlice(r, f"{name}.wait", "idle",
                                               t_r, t_end))
        else:
            t_end = t_base + float(dur)
            nbytes = comm_payloads.get(name, 0)
            for r, d in delayed_srcs.get(name, ()):
                fault_events.append(FaultEvent("delay", r, t_base,
                                               f"{name}[0] +{d:g}s"))
            for r in range(P):
                timeline.append(PhaseSlice(r, name, "comm", t_base, t_end,
                                           payload_bytes=nbytes))
        t_base = t_end

    ranks: List[RankStats] = []
    for r in range(P):
        comp = float(born_times[r] + push_times[r] + epol_times[r])
        idle = float((born_times.max() - born_times[r])
                     + (push_times.max() - push_times[r])
                     + (epol_times.max() - epol_times[r]))
        ranks.append(RankStats(rank=r, comp_seconds=comp,
                               comm_seconds=comm_total, idle_seconds=idle,
                               steals=int(born_steals[r]
                                          + epol_steals[r]),
                               memory_bytes=proc_bytes))
    fault_events.sort(key=lambda e: (e.t, e.rank, e.kind))
    return RunStats(processes=P, threads=p, ranks=ranks, phases=phases,
                    timeline=timeline, faults=len(fault_events),
                    fault_events=fault_events)
