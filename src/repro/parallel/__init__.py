"""Distributed / hybrid drivers implementing the paper's Fig. 4 program."""

from repro.parallel.partition import (
    segment_bounds,
    leaf_segments,
    atom_segments,
    weighted_leaf_segments,
)
from repro.parallel.profile import WorkProfile
from repro.parallel.distributed import (
    run_fig4_ft,
    run_fig4_simmpi,
    simulate_fig4,
)
from repro.parallel.drivers import (
    run_oct_cilk,
    run_oct_mpi,
    run_oct_hybrid,
    run_oct_mpi_ft,
    DriverResult,
)

__all__ = [
    "segment_bounds",
    "leaf_segments",
    "atom_segments",
    "weighted_leaf_segments",
    "WorkProfile",
    "run_fig4_ft",
    "run_fig4_simmpi",
    "simulate_fig4",
    "run_oct_cilk",
    "run_oct_mpi",
    "run_oct_hybrid",
    "run_oct_mpi_ft",
    "DriverResult",
]
