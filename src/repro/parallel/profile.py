"""Work profiles: one real traversal, many simulated schedules.

Scalability experiments sweep dozens of (P, p, seed) configurations
over the *same* molecule.  The numerics are identical across the sweep
— node-based division composes the same partial sums in every layout —
so the expensive traversal runs once, captured in a
:class:`WorkProfile`, and each configuration replays scheduling and
communication over the recorded per-leaf costs.  This mirrors how the
paper treats octree construction (a reusable preprocessing artefact),
extended one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ApproxParams
from repro.core.born_octree import (
    BornResult,
    PerSourceCounts,
    born_radii_octree,
)
from repro.core.dualtree import born_radii_dualtree, epol_dualtree
from repro.core.energy_octree import EpolResult, epol_octree
from repro.molecules.molecule import Molecule
from repro.octree.build import Octree


@dataclass
class WorkProfile:
    """Everything a scheduling simulation needs about one solve."""

    name: str
    natoms: int
    nqpoints: int
    params: ApproxParams
    method: str
    #: Per-source-leaf counts for the Born pass (Q-leaves for the
    #: single-tree method, atoms leaves for the dual-tree method).
    born_per_source: PerSourceCounts
    #: Per-V-leaf counts for the energy pass.
    epol_per_source: PerSourceCounts
    #: Bucket count M_ε of the energy far-field kernel.
    nbuckets: int
    #: Total nodes of the atoms / q-points octrees.
    atoms_nodes: int
    qpoints_nodes: int
    #: Replicated per-process data footprint in bytes (molecule + both
    #: octrees + working arrays) — the paper's memory argument input.
    data_bytes: int
    #: Ground-truth results of the (serial) run this profile recorded.
    energy: float
    born_radii: np.ndarray

    @classmethod
    def from_molecule(cls, molecule: Molecule,
                      params: ApproxParams = ApproxParams(),
                      method: str = "octree") -> "WorkProfile":
        """Run the solver once and capture per-leaf work. ``method`` is
        ``"octree"`` (single-tree, Figs. 2–3) or ``"dualtree"``
        (prior-work OCT_CILK algorithm)."""
        if method == "octree":
            born: BornResult = born_radii_octree(molecule, params)
            epol: EpolResult = epol_octree(molecule, born.radii, params,
                                           atoms_tree=born.atoms_tree)
        elif method == "dualtree":
            born = born_radii_dualtree(molecule, params)
            epol = epol_dualtree(molecule, born.radii, params,
                                 atoms_tree=born.atoms_tree)
        else:
            raise ValueError("method must be 'octree' or 'dualtree'")

        atoms_tree: Octree = born.atoms_tree
        q_tree: Octree = born.qpoints_tree
        working = 8 * (atoms_tree.nnodes + 2 * atoms_tree.npoints)
        data_bytes = (molecule.nbytes() + atoms_tree.nbytes()
                      + q_tree.nbytes() + working)
        return cls(
            name=molecule.name,
            natoms=molecule.natoms,
            nqpoints=molecule.nqpoints,
            params=params,
            method=method,
            born_per_source=born.per_source,
            epol_per_source=epol.per_source,
            nbuckets=epol.buckets.nbuckets,
            atoms_nodes=atoms_tree.nnodes,
            qpoints_nodes=q_tree.nnodes,
            data_bytes=int(data_bytes),
            energy=epol.energy,
            born_radii=born.radii,
        )

    @property
    def born_leaf_count(self) -> int:
        return len(self.born_per_source.visits)

    @property
    def epol_leaf_count(self) -> int:
        return len(self.epol_per_source.visits)
