"""Work profiles: one real traversal, many simulated schedules.

Scalability experiments sweep dozens of (P, p, seed) configurations
over the *same* molecule.  The numerics are identical across the sweep
— node-based division composes the same partial sums in every layout —
so the expensive traversal runs once, captured in a
:class:`WorkProfile`, and each configuration replays scheduling and
communication over the recorded per-leaf costs.  This mirrors how the
paper treats octree construction (a reusable preprocessing artefact),
extended one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ApproxParams
from repro.core.born_octree import (
    BornResult,
    PerSourceCounts,
    born_radii_octree,
)
from repro.core.dualtree import born_radii_dualtree, epol_dualtree
from repro.core.energy_octree import EpolResult, epol_octree
from repro.molecules.molecule import Molecule
from repro.obs import span
from repro.octree.build import Octree


@dataclass
class WorkProfile:
    """Everything a scheduling simulation needs about one solve."""

    name: str
    natoms: int
    nqpoints: int
    params: ApproxParams
    method: str
    #: Per-source-leaf counts for the Born pass (Q-leaves for the
    #: single-tree method, atoms leaves for the dual-tree method).
    born_per_source: PerSourceCounts
    #: Per-V-leaf counts for the energy pass.
    epol_per_source: PerSourceCounts
    #: Bucket count M_ε of the energy far-field kernel.
    nbuckets: int
    #: Total nodes of the atoms / q-points octrees.
    atoms_nodes: int
    qpoints_nodes: int
    #: Replicated per-process data footprint in bytes (molecule + both
    #: octrees + working arrays) — the paper's memory argument input.
    data_bytes: int
    #: Ground-truth results of the (serial) run this profile recorded.
    energy: float
    born_radii: np.ndarray

    @classmethod
    def from_molecule(cls, molecule: Molecule,
                      params: ApproxParams = ApproxParams(),
                      method: str = "octree") -> "WorkProfile":
        """Run the solver once and capture per-leaf work. ``method`` is
        ``"octree"`` (single-tree, Figs. 2–3) or ``"dualtree"``
        (prior-work OCT_CILK algorithm)."""
        with span("profile.from_molecule", method=method,
                  natoms=molecule.natoms):
            return cls._from_molecule(molecule, params, method)

    @classmethod
    def _from_molecule(cls, molecule: Molecule, params: ApproxParams,
                       method: str) -> "WorkProfile":
        if method == "octree":
            born: BornResult = born_radii_octree(molecule, params)
            epol: EpolResult = epol_octree(molecule, born.radii, params,
                                           atoms_tree=born.atoms_tree)
        elif method == "dualtree":
            born = born_radii_dualtree(molecule, params)
            epol = epol_dualtree(molecule, born.radii, params,
                                 atoms_tree=born.atoms_tree)
        else:
            raise ValueError("method must be 'octree' or 'dualtree'")

        atoms_tree: Octree = born.atoms_tree
        q_tree: Octree = born.qpoints_tree
        working = 8 * (atoms_tree.nnodes + 2 * atoms_tree.npoints)
        data_bytes = (molecule.nbytes() + atoms_tree.nbytes()
                      + q_tree.nbytes() + working)
        return cls(
            name=molecule.name,
            natoms=molecule.natoms,
            nqpoints=molecule.nqpoints,
            params=params,
            method=method,
            born_per_source=born.per_source,
            epol_per_source=epol.per_source,
            nbuckets=epol.buckets.nbuckets,
            atoms_nodes=atoms_tree.nnodes,
            qpoints_nodes=q_tree.nnodes,
            data_bytes=int(data_bytes),
            energy=epol.energy,
            born_radii=born.radii,
        )

    @classmethod
    def from_solver(cls, solver) -> "WorkProfile":
        """Capture a profile from an already-run PolarizationSolver.

        Reuses the solver's cached traversal results instead of paying
        a second traversal (``repro solve --trace`` uses this to attach
        a simulated schedule to a solve it just traced).  Requires an
        octree/dualtree solver; the naive method records no per-leaf
        counts.
        """
        if solver.method not in ("octree", "dualtree"):
            raise ValueError("naive solves record no per-leaf work")
        energy = solver.energy()   # ensures both passes have run
        born = solver.born_result
        epol = solver.epol_result
        atoms_tree = solver.atoms_tree
        q_tree = solver.qpoints_tree
        molecule = solver.molecule
        working = 8 * (atoms_tree.nnodes + 2 * atoms_tree.npoints)
        data_bytes = (molecule.nbytes() + atoms_tree.nbytes()
                      + q_tree.nbytes() + working)
        return cls(
            name=molecule.name,
            natoms=molecule.natoms,
            nqpoints=molecule.nqpoints,
            params=solver.params,
            method=solver.method,
            born_per_source=born.per_source,
            epol_per_source=epol.per_source,
            nbuckets=epol.buckets.nbuckets,
            atoms_nodes=atoms_tree.nnodes,
            qpoints_nodes=q_tree.nnodes,
            data_bytes=int(data_bytes),
            energy=energy,
            born_radii=solver.born_radii(),
        )

    @property
    def born_leaf_count(self) -> int:
        return len(self.born_per_source.visits)

    @property
    def epol_leaf_count(self) -> int:
        return len(self.epol_per_source.visits)
