"""Data-distributed GB solver — the paper's stated future work.

The paper only implements *work* division ("each process has a complete
set of data", §IV-A) and closes with "distributing data as well as
computation is also an interesting approach to explore".  This module
explores it, in the classic locally-essential-tree style:

1. Atoms and quadrature points are Morton-sorted once and cut into P
   contiguous blocks; rank *r* stores **only** its blocks (memory per
   rank ∝ M/P instead of M).
2. Each rank builds *local* octrees over its blocks.
3. **Summary exchange** (small): every rank allgathers
   (a) its Q-leaf pseudo-q-points — centre, radius, Σ w·n — and
   (b) its atoms-tree skeleton with per-node charge-bucket tables.
4. **Born phase**: a rank accumulates the full r⁶ integral for *its*
   atoms: local q-points via the ordinary traversal; remote Q-leaves
   via their pseudo-q-point when far; when a remote Q-leaf is too close
   for the MAC, its actual points are fetched once as *ghosts* (real
   point-to-point traffic on the simulated MPI).
5. **Energy phase**: a rank computes the energy rows of its atoms:
   local tree as usual; remote ranks through their summary skeletons —
   bucket kernels when far, descending when near, fetching ghost atoms
   (positions, charges, Born radii) at near remote leaves.
6. A scalar ``Reduce`` finishes E_pol.  No O(M) collective ever runs.

Every ordered atom pair is covered exactly once (rows are owned by the
rank holding the row atom), so the result lands within the same ε
envelope as the work-division algorithm — verified in
``tests/parallel/test_datadist.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, lonestar4
from repro.cluster.simmpi import SimCluster
from repro.cluster.trace import RunStats
from repro.config import ApproxParams
from repro.constants import TAU_WATER
from repro.core.born_octree import (
    _born_far_mask,
    _inv_r6,
    approx_integrals,
    push_integrals_to_atoms,
    qleaf_aggregates,
)
from repro.core.energy_octree import approx_epol_for_leaves
from repro.core.gb import energy_prefactor, inv_fgb_still
from repro.molecules.molecule import Molecule
from repro.octree import morton
from repro.octree.build import NO_CHILD, Octree, build_octree
from repro.parallel.partition import segment_bounds


@dataclass
class QLeafSummaries:
    """Pseudo-q-point summary of one rank's Q-tree leaves."""

    center: np.ndarray      # (L, 3)
    radius: np.ndarray      # (L,)
    wn: np.ndarray          # (L, 3) Σ w·n per leaf
    start: np.ndarray       # (L,) local sorted-point offsets
    end: np.ndarray

    @classmethod
    def from_tree(cls, q_tree: Octree,
                  wn_sorted: np.ndarray) -> "QLeafSummaries":
        leaves = q_tree.leaves
        return cls(center=q_tree.center[leaves],
                   radius=q_tree.radius[leaves],
                   wn=qleaf_aggregates(q_tree, wn_sorted),
                   start=q_tree.start[leaves],
                   end=q_tree.end[leaves])

    def __len__(self) -> int:
        return len(self.radius)

    def nbytes(self) -> int:
        return (self.center.nbytes + self.radius.nbytes + self.wn.nbytes
                + self.start.nbytes + self.end.nbytes)


@dataclass
class AtomTreeSummary:
    """Skeleton of one rank's atoms octree + charge buckets (no points)."""

    center: np.ndarray      # (n, 3)
    radius: np.ndarray
    children: np.ndarray    # (n, 8)
    is_leaf: np.ndarray
    start: np.ndarray
    end: np.ndarray
    buckets: np.ndarray     # (n, M_ε)

    @classmethod
    def from_tree(cls, tree: Octree, buckets: np.ndarray
                  ) -> "AtomTreeSummary":
        return cls(center=tree.center, radius=tree.radius,
                   children=tree.children, is_leaf=tree.is_leaf,
                   start=tree.start, end=tree.end, buckets=buckets)

    def nbytes(self) -> int:
        return sum(a.nbytes for a in (self.center, self.radius,
                                      self.children, self.is_leaf,
                                      self.start, self.end, self.buckets))


@dataclass
class DataDistOutcome:
    """Result of a data-distributed run."""

    energy: float
    born_radii: np.ndarray            # original atom order, full
    stats: RunStats
    #: Per-rank resident bytes (block + summaries + ghosts).
    rank_bytes: List[int]
    #: Total ghost points/atoms fetched across all ranks.
    ghost_qpoints: int
    ghost_atoms: int


def _classify_remote_qleaves(atoms_tree: Octree,
                             summaries: QLeafSummaries,
                             params: ApproxParams
                             ) -> Tuple[np.ndarray, int, List, List]:
    """Traverse the local atoms tree against remote Q-leaf summaries.

    Returns far-field deposits (s_node), the visit count, and the lists
    of (local atoms leaf, remote Q-leaf row) pairs that need the remote
    leaf's actual points.
    """
    nq = len(summaries)
    s_node = np.zeros(atoms_tree.nnodes, dtype=np.float64)
    need_a: List[np.ndarray] = []
    need_q: List[np.ndarray] = []
    visits = 0
    if nq == 0:
        return s_node, 0, [], []

    a_front = np.zeros(nq, dtype=np.int64)
    q_front = np.arange(nq, dtype=np.int64)
    while len(a_front):
        visits += len(a_front)
        dv = summaries.center[q_front] - atoms_tree.center[a_front]
        r2 = np.einsum("ij,ij->i", dv, dv)
        r = np.sqrt(r2)
        rsum = atoms_tree.radius[a_front] + summaries.radius[q_front]
        far = _born_far_mask(r, rsum, params)
        if far.any():
            fa, fq = a_front[far], q_front[far]
            numer = np.einsum("ij,ij->i", summaries.wn[fq], dv[far])
            s_node += np.bincount(fa,
                                  weights=numer * _inv_r6(
                                      r2[far], params.approx_math),
                                  minlength=atoms_tree.nnodes)
        rest = ~far
        ra, rq = a_front[rest], q_front[rest]
        leafmask = atoms_tree.is_leaf[ra]
        if leafmask.any():
            need_a.append(ra[leafmask])
            need_q.append(rq[leafmask])
        ia, iq = ra[~leafmask], rq[~leafmask]
        if len(ia):
            ch = atoms_tree.children[ia]
            valid = ch != NO_CHILD
            a_front = ch[valid]
            q_front = np.repeat(iq, valid.sum(axis=1))
        else:
            a_front = np.empty(0, dtype=np.int64)
            q_front = np.empty(0, dtype=np.int64)
    return s_node, visits, need_a, need_q


def _exact_remote_born(atoms_tree: Octree, s_atom: np.ndarray,
                       need_a: np.ndarray, need_q: np.ndarray,
                       ghost_pts: Dict[int, np.ndarray],
                       ghost_wn: Dict[int, np.ndarray],
                       params: ApproxParams) -> int:
    """Exact near contributions from fetched remote Q-leaf points."""
    interactions = 0
    order = np.argsort(need_a, kind="stable")
    need_a, need_q = need_a[order], need_q[order]
    uniq, first = np.unique(need_a, return_index=True)
    bounds = np.append(first, len(need_a))
    for u, lo, hi in zip(uniq, bounds[:-1], bounds[1:]):
        rows = need_q[lo:hi]
        pts = np.vstack([ghost_pts[int(rw)] for rw in rows])
        wn = np.vstack([ghost_wn[int(rw)] for rw in rows])
        sl = atoms_tree.slice_of(int(u))
        apts = atoms_tree.points[sl]
        diff = pts[None, :, :] - apts[:, None, :]
        r2 = np.einsum("aqk,aqk->aq", diff, diff)
        numer = np.einsum("aqk,qk->aq", diff, wn)
        s_atom[sl] += np.sum(numer * _inv_r6(r2, params.approx_math),
                             axis=1)
        interactions += diff.shape[0] * diff.shape[1]
    return interactions


def _energy_vs_remote_tree(atoms_tree: Octree,
                           local_buckets: np.ndarray,
                           remote: AtomTreeSummary,
                           products: np.ndarray,
                           params: ApproxParams
                           ) -> Tuple[float, List[Tuple[int, int]]]:
    """Energy of local V-leaves against one remote summary tree.

    Returns the far-field partial sum plus the (local leaf, remote
    leaf) pairs that need remote ghost atoms for exact evaluation.
    """
    mac = 1.0 + 2.0 / params.eps_epol
    leaves = atoms_tree.leaves
    v_center = atoms_tree.center[leaves]
    v_radius = atoms_tree.radius[leaves]

    nv = len(leaves)
    u_front = np.zeros(nv, dtype=np.int64)   # remote node ids
    v_front = np.arange(nv, dtype=np.int64)  # local leaf rows
    total = 0.0
    need: List[Tuple[int, int]] = []

    while len(u_front):
        dv = v_center[v_front] - remote.center[u_front]
        r = np.sqrt(np.einsum("ij,ij->i", dv, dv))
        far = r > (remote.radius[u_front] + v_radius[v_front]) * mac
        if far.any():
            fu, fv = u_front[far], v_front[far]
            fr2 = (r[far]) ** 2
            k = inv_fgb_still(fr2[:, None, None], products[None, :, :],
                              approx_math=params.approx_math)
            qu = remote.buckets[fu]
            qv = local_buckets[leaves[fv]]
            total += float(np.einsum("ki,kij,kj->", qu, k, qv))
        rest = ~far
        ru, rv = u_front[rest], v_front[rest]
        leafmask = remote.is_leaf[ru]
        for u, v in zip(ru[leafmask], rv[leafmask]):
            need.append((int(v), int(u)))
        iu, iv = ru[~leafmask], rv[~leafmask]
        if len(iu):
            ch = remote.children[iu]
            valid = ch != NO_CHILD
            u_front = ch[valid]
            v_front = np.repeat(iv, valid.sum(axis=1))
        else:
            u_front = np.empty(0, dtype=np.int64)
            v_front = np.empty(0, dtype=np.int64)
    return total, need


def _morton_codes(points: np.ndarray) -> np.ndarray:
    origin, edge = morton.bounding_cube(points)
    return morton.morton_encode(morton.quantize(points, origin, edge))


def _make_blocks(molecule: Molecule, surf, P: int,
                 presort: str, machine, cost) -> list:
    """Deal Morton-contiguous (atoms, q-points) blocks to P ranks.

    ``presort="central"`` sorts in one place (cheap stand-in);
    ``presort="sample"`` runs the real distributed sample sort of
    :mod:`repro.parallel.sample_sort` over the simulated cluster, so no
    rank ever holds the full sorted arrays.
    """
    a_codes = _morton_codes(molecule.positions)
    q_codes = _morton_codes(surf.points)

    if presort == "sample":
        from repro.parallel.sample_sort import sample_sort
        a_payload = np.column_stack([
            molecule.positions, molecule.charges, molecule.radii,
            np.arange(molecule.natoms, dtype=np.float64)])
        a_out = sample_sort(a_codes, P, payload=a_payload,
                            machine=machine, cost=cost)
        q_payload = np.hstack([surf.points, surf.weighted_normals])
        q_out = sample_sort(q_codes, P, payload=q_payload,
                            machine=machine, cost=cost)
        blocks = []
        for r in range(P):
            a = a_out.payload_slabs[r]
            qp = q_out.payload_slabs[r]
            blocks.append({
                "pos": a[:, 0:3].copy(),
                "q": a[:, 3].copy(),
                "rad": a[:, 4].copy(),
                "atom_ids": a[:, 5].astype(np.int64),
                "qpts": qp[:, 0:3].copy(),
                "qwn": qp[:, 3:6].copy(),
            })
        return blocks

    a_order = np.argsort(a_codes, kind="stable")
    q_order = np.argsort(q_codes, kind="stable")
    a_bounds = segment_bounds(molecule.natoms, P)
    q_bounds = segment_bounds(len(surf.points), P)
    blocks = []
    for r in range(P):
        ai = a_order[a_bounds[r]:a_bounds[r + 1]]
        qi = q_order[q_bounds[r]:q_bounds[r + 1]]
        blocks.append({
            "pos": molecule.positions[ai],
            "q": molecule.charges[ai],
            "rad": molecule.radii[ai],
            "atom_ids": ai,
            "qpts": surf.points[qi],
            "qwn": surf.weighted_normals[qi],
        })
    return blocks


def run_data_distributed(molecule: Molecule,
                         params: ApproxParams = ApproxParams(),
                         processes: int = 4,
                         threads: int = 1,
                         machine: Optional[MachineSpec] = None,
                         cost: Optional[CostModel] = None,
                         tau: float = TAU_WATER,
                         presort: str = "central") -> DataDistOutcome:
    """Run the data-distributed algorithm on the simulated cluster.

    ``presort`` selects the Morton-ordering preprocessing: ``"central"``
    (default, one-place argsort) or ``"sample"`` (genuine distributed
    sample sort — see :mod:`repro.parallel.sample_sort`).
    """
    if presort not in ("central", "sample"):
        raise ValueError("presort must be 'central' or 'sample'")
    machine = machine or lonestar4()
    cost = cost or CostModel(machine=machine)
    surf = molecule.require_surface()
    P = processes

    blocks = _make_blocks(molecule, surf, P, presort, machine, cost)

    def rankfn(comm):
        blk = blocks[comm.rank]
        local = Molecule(blk["pos"], blk["q"], blk["rad"],
                         name=f"block{comm.rank}")
        atoms_tree = build_octree(local.positions, params.leaf_size,
                                  params.max_depth)
        q_tree = build_octree(blk["qpts"], params.leaf_size,
                              params.max_depth)
        wn_sorted = blk["qwn"][q_tree.perm]
        block_bytes = (local.nbytes() + blk["qpts"].nbytes
                       + blk["qwn"].nbytes + atoms_tree.nbytes()
                       + q_tree.nbytes())

        # ---- summary exchange (Born) ----------------------------------
        my_qsum = QLeafSummaries.from_tree(q_tree, wn_sorted)
        all_qsum: List[QLeafSummaries] = comm.allgather(my_qsum)
        summary_bytes = sum(s.nbytes() for s in all_qsum)

        # ---- Born phase ------------------------------------------------
        # Local block: the ordinary single-tree traversal.
        s_node, s_atom, cnt, _ = approx_integrals(
            atoms_tree, q_tree, wn_sorted, params)
        comm.compute(cost.born_compute_seconds(
            cnt.frontier_visits, cnt.far_evaluations,
            cnt.exact_interactions, params.approx_math))

        # Remote blocks: far via summaries, near via ghost fetches.
        wanted: Dict[int, set] = {s: set() for s in range(comm.size)}
        pending = {}
        for s in range(comm.size):
            if s == comm.rank:
                continue
            sn, visits, need_a, need_q = _classify_remote_qleaves(
                atoms_tree, all_qsum[s], params)
            s_node += sn
            comm.compute(cost.born_compute_seconds(visits, visits, 0,
                                                   params.approx_math))
            if need_a:
                na = np.concatenate(need_a)
                nq = np.concatenate(need_q)
            else:
                na = np.empty(0, dtype=np.int64)
                nq = np.empty(0, dtype=np.int64)
            pending[s] = (na, nq)
            wanted[s].update(int(x) for x in np.unique(nq))

        # Ghost request exchange: who needs which of my Q-leaves.
        requests = comm.allgather({s: sorted(w)
                                   for s, w in wanted.items()})
        ghost_q_sent = 0
        for s in range(comm.size):
            if s == comm.rank:
                continue
            rows = requests[s].get(comm.rank, [])
            payload = {}
            for row in rows:
                sl = slice(int(my_qsum.start[row]),
                           int(my_qsum.end[row]))
                payload[row] = (q_tree.points[sl], wn_sorted[sl])
                ghost_q_sent += sl.stop - sl.start
            comm.send(payload, dest=s, tag=1)
        ghost_qpoints = 0
        ghost_bytes = 0
        for s in range(comm.size):
            if s == comm.rank:
                continue
            payload = comm.recv(source=s, tag=1)
            gpts = {row: p for row, (p, w) in payload.items()}
            gwn = {row: w for row, (p, w) in payload.items()}
            ghost_qpoints += sum(len(p) for p in gpts.values())
            ghost_bytes += (sum(p.nbytes for p in gpts.values())
                            + sum(w.nbytes for w in gwn.values()))
            na, nq = pending[s]
            if len(na):
                inter = _exact_remote_born(atoms_tree, s_atom, na, nq,
                                           gpts, gwn, params)
                comm.compute(cost.born_compute_seconds(0, 0, inter,
                                                       params.approx_math))

        intrinsic_sorted = local.radii[atoms_tree.perm]
        radii_sorted = push_integrals_to_atoms(atoms_tree, s_node, s_atom,
                                               intrinsic_sorted)
        comm.compute(cost.push_compute_seconds(local.natoms,
                                               atoms_tree.nnodes))
        R_local = atoms_tree.scatter_to_original(radii_sorted)

        # ---- energy phase ---------------------------------------------
        # Global bucket geometry needs global R_min/R_max.
        r_min = comm.allreduce(float(R_local.min()), op="min")
        r_max = comm.allreduce(float(R_local.max()), op="max")
        base = 1.0 + params.eps_epol
        if r_max > r_min:
            m_eps = int(np.floor(np.log(r_max / r_min)
                                 / np.log(base))) + 1
        else:
            m_eps = 1
        powers = r_min * base ** np.arange(m_eps)
        products = np.outer(powers, powers)

        q_sorted = local.charges[atoms_tree.perm]
        R_sorted = R_local[atoms_tree.perm]
        bucket_idx = np.zeros(local.natoms, dtype=np.int64)
        if m_eps > 1:
            bucket_idx = np.clip(
                (np.log(R_sorted / r_min) / np.log(base)).astype(np.int64),
                0, m_eps - 1)
        cum = np.zeros((local.natoms + 1, m_eps), dtype=np.float64)
        np.add.at(cum, (np.arange(local.natoms) + 1, bucket_idx), q_sorted)
        cum = np.cumsum(cum, axis=0)
        table = cum[atoms_tree.end] - cum[atoms_tree.start]

        # Local rows vs local tree: reuse the work-division kernel with
        # a locally-built ChargeBuckets on the *global* grid.
        from repro.core.energy_octree import ChargeBuckets
        buckets = ChargeBuckets(table=table, r_min=r_min, r_max=r_max,
                                base=base, products=products)
        raw, cnt2, _ = approx_epol_for_leaves(
            atoms_tree, q_sorted, R_sorted, buckets, params)
        comm.compute(cost.epol_compute_seconds(
            cnt2.frontier_visits, cnt2.far_evaluations,
            cnt2.exact_interactions, m_eps, params.approx_math))

        # Summary skeleton exchange for remote energy.
        my_asum = AtomTreeSummary.from_tree(atoms_tree, table)
        all_asum: List[AtomTreeSummary] = comm.allgather(my_asum)
        summary_bytes += sum(s.nbytes() for s in all_asum)

        need_atoms: Dict[int, List[Tuple[int, int]]] = {}
        for s in range(comm.size):
            if s == comm.rank:
                continue
            part, need = _energy_vs_remote_tree(
                atoms_tree, table, all_asum[s], products, params)
            raw += part
            need_atoms[s] = need

        # Ghost atom exchange (positions + charges + Born radii).
        reqs = comm.allgather({s: sorted({u for _, u in need})
                               for s, need in need_atoms.items()})
        for s in range(comm.size):
            if s == comm.rank:
                continue
            rows = reqs[s].get(comm.rank, [])
            payload = {}
            for node in rows:
                sl = slice(int(atoms_tree.start[node]),
                           int(atoms_tree.end[node]))
                payload[node] = (atoms_tree.points[sl], q_sorted[sl],
                                 R_sorted[sl])
            comm.send(payload, dest=s, tag=2)
        ghost_atoms = 0
        for s in range(comm.size):
            if s == comm.rank:
                continue
            payload = comm.recv(source=s, tag=2)
            ghost_atoms += sum(len(p) for p, _, _ in payload.values())
            ghost_bytes += sum(p.nbytes + qq.nbytes + rr.nbytes
                               for p, qq, rr in payload.values())
            inter = 0
            for vleaf_row, unode in need_atoms[s]:
                gp, gq, gR = payload[unode]
                vsl = atoms_tree.slice_of(int(atoms_tree.leaves[vleaf_row]))
                diff = atoms_tree.points[vsl][:, None, :] - gp[None, :, :]
                r2 = np.einsum("vuk,vuk->vu", diff, diff)
                RiRj = R_sorted[vsl][:, None] * gR[None, :]
                inv = inv_fgb_still(r2, RiRj,
                                    approx_math=params.approx_math)
                raw += float(np.einsum("v,vu,u->", q_sorted[vsl], inv, gq))
                inter += diff.shape[0] * diff.shape[1]
            comm.compute(cost.epol_compute_seconds(0, 0, inter, m_eps,
                                                   params.approx_math))

        comm.charge_memory(block_bytes + summary_bytes + ghost_bytes)
        total_raw = comm.reduce(raw, root=0)
        energy = (energy_prefactor(tau) * total_raw
                  if comm.rank == 0 else None)
        return (energy, blk["atom_ids"], R_local,
                ghost_qpoints, ghost_atoms)

    cluster = SimCluster(P, threads_per_rank=threads, machine=machine,
                         cost=cost)
    results, stats = cluster.run(rankfn)

    radii = np.empty(molecule.natoms, dtype=np.float64)
    ghost_q = 0
    ghost_a = 0
    for energy_r, ids, R_local, gq, ga in results:
        radii[ids] = R_local
        ghost_q += gq
        ghost_a += ga
    return DataDistOutcome(
        energy=results[0][0],
        born_radii=radii,
        stats=stats,
        rank_bytes=[r.memory_bytes for r in stats.ranks],
        ghost_qpoints=ghost_q,
        ghost_atoms=ghost_a,
    )
