"""Chaos harness: a seeded fault-scenario matrix over the FT solver.

Runs :func:`repro.parallel.distributed.run_fig4_ft` under every fault
class the runtime injects — clean baseline, a rank crash in each of
the three Fig. 4 compute phases (integrals, push, energy), a double
crash, a lost collective fragment, a late collective entry and a
straggler — plus two :class:`~repro.faults.plan.DataCorruption`
scenarios routed through :class:`~repro.guard.solver.GuardedSolver`
(NaN bit-rot caught by the sentinels, finite-but-wrong radii caught by
the accuracy watchdog).  Two properties are asserted per scenario:

* **agreement** — the recovered E_pol matches the fault-free run to a
  relative tolerance (1e-9 by default; the only difference permitted
  is floating-point reordering from the redistributed partial sums);
* **determinism** — two runs with the same seed produce bit-identical
  energies and the same fault/recovery counts.

``repro chaos`` exposes this as a CLI with a pass table and a JSON
report; CI runs ``repro chaos --seed 0 --quick`` as a smoke check.
Everything is derived from the scenario seed, so a failing row can be
replayed exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np

from repro.config import ApproxParams
from repro.faults.plan import (
    DataCorruption,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RankCrash,
    Straggler,
)
from repro.molecules import synthetic_protein
from repro.molecules.molecule import Molecule
from repro.parallel.distributed import DistributedOutcome, run_fig4_ft

__all__ = ["Scenario", "ScenarioResult", "ChaosReport", "scenario_matrix",
           "run_chaos", "DEFAULT_TOLERANCE"]

#: Relative E_pol agreement every scenario must reach vs fault-free.
DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Scenario:
    """One named cell of the chaos matrix."""

    name: str
    description: str
    plan: FaultPlan


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario (two same-seed runs)."""

    name: str
    description: str
    energy: float
    rel_err: float
    deterministic: bool
    faults: int
    recoveries: int
    recovery_seconds: float
    wall_seconds: float
    passed: bool


def scenario_matrix(seed: int, processes: int = 4) -> List[Scenario]:
    """The seeded scenario matrix (11 scenarios, every fault class).

    All randomness — which rank crashes, where in the phase, delay
    magnitudes, straggler factors — derives from ``seed``, so the
    matrix is a pure function of ``(seed, processes)``.
    """
    if processes < 3:
        raise ValueError("the chaos matrix needs at least 3 ranks")
    rng = np.random.default_rng(seed)

    def victim() -> int:
        # Any rank may die — including rank 0 (master failover).
        return int(rng.integers(0, processes))

    def frac() -> float:
        return float(rng.uniform(0.1, 0.9))

    crash_born = RankCrash(victim(), phase="born", after_fraction=frac())
    crash_push = RankCrash(victim(), phase="push", after_fraction=frac())
    crash_epol = RankCrash(victim(), phase="epol", after_fraction=frac())
    first = int(rng.integers(0, processes))
    second = (first + 1 + int(rng.integers(0, processes - 1))) % processes
    delay_s = float(rng.uniform(1e-3, 5e-2))
    factor = float(rng.uniform(1.5, 4.0))
    return [
        Scenario("clean", "no faults (baseline)", FaultPlan(seed=seed)),
        Scenario("crash-born", "rank crash during the integral phase",
                 FaultPlan([crash_born], seed=seed)),
        Scenario("crash-push", "rank crash during the Born-radii push",
                 FaultPlan([crash_push], seed=seed)),
        Scenario("crash-epol", "rank crash during the energy phase",
                 FaultPlan([crash_epol], seed=seed)),
        Scenario("crash-double", "two ranks die in different phases",
                 FaultPlan([RankCrash(first, phase="born",
                                      after_fraction=frac()),
                            RankCrash(second, phase="epol",
                                      after_fraction=frac())], seed=seed)),
        Scenario("drop-collective", "lost Allreduce fragment "
                                    "(retransmitted)",
                 FaultPlan([MessageDrop(src=victim(), op="allreduce")],
                           seed=seed)),
        Scenario("delay-collective", "late entry into the Allgather",
                 FaultPlan([MessageDelay(src=victim(), seconds=delay_s,
                                         op="allgather")], seed=seed)),
        Scenario("straggler", "one rank computes slower by a factor",
                 FaultPlan([Straggler(victim(), factor=factor)],
                           seed=seed)),
        Scenario("crash+straggler", "combined: crash under a straggler",
                 FaultPlan([RankCrash(victim(), phase="born",
                                      after_fraction=frac()),
                            Straggler(victim(), factor=factor)],
                           seed=seed)),
        # Data-corruption rows run through GuardedSolver, not the
        # cluster runtime: transient faults the degradation ladder's
        # retry rung must clear bitwise.
        Scenario("corrupt-nan", "NaN bit-rot in the Born radii "
                                "(sentinel catches, retry clears)",
                 FaultPlan([DataCorruption("born.radii", kind="nan",
                                           fraction=0.1)], seed=seed)),
        Scenario("corrupt-scale", "finite-but-wrong Born radii "
                                  "(watchdog catches, retry clears)",
                 FaultPlan([DataCorruption("born.radii", kind="scale",
                                           fraction=0.25, factor=8.0)],
                           seed=seed)),
    ]


@dataclass
class ChaosReport:
    """Matrix results plus everything needed to reproduce them."""

    seed: int
    processes: int
    natoms: int
    tolerance: float
    ref_energy: float
    results: List[ScenarioResult]

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def table(self) -> str:
        from repro.analysis.tables import Table
        t = Table(["scenario", "faults", "recoveries", "recovery (s)",
                   "rel. error", "determ.", "status"],
                  title=f"chaos matrix seed={self.seed} "
                        f"P={self.processes} ({self.natoms} atoms, "
                        f"tol {self.tolerance:g})")
        for r in self.results:
            t.add_row(r.name, r.faults, r.recoveries,
                      f"{r.recovery_seconds:.4f}",
                      f"{r.rel_err:.2e}",
                      "yes" if r.deterministic else "NO",
                      "PASS" if r.passed else "FAIL")
        return t.render()

    def to_json(self, indent: int = 2) -> str:
        doc = {"seed": self.seed, "processes": self.processes,
               "natoms": self.natoms, "tolerance": self.tolerance,
               "ref_energy": self.ref_energy,
               "all_passed": self.all_passed,
               "scenarios": [asdict(r) for r in self.results]}
        return json.dumps(doc, indent=indent, sort_keys=True)


def _run_corruption_scenario(scenario: Scenario, molecule: Molecule,
                             params: ApproxParams, tolerance: float
                             ) -> ScenarioResult:
    """Corruption rows: GuardedSolver must detect, degrade and land on
    the clean answer (transient faults → the retry rung is bitwise)."""
    import time

    from repro.guard.solver import GuardedSolver

    ref = GuardedSolver(molecule, params).report()

    def once() -> GuardedSolver:
        g = GuardedSolver(molecule, params, fault_plan=scenario.plan)
        g.report()
        return g

    t0 = time.perf_counter()
    g1 = once()
    wall = time.perf_counter() - t0
    g2 = once()
    r1, r2 = g1.report(), g2.report()
    deterministic = (r1.energy == r2.energy and r1.rung == r2.rung
                     and [e.action for e in g1.events]
                     == [e.action for e in g2.events])
    rel_err = abs(r1.energy - ref.energy) / abs(ref.energy)
    radii_ok = bool(np.allclose(r1.born_radii, ref.born_radii,
                                rtol=tolerance, atol=0.0))
    detected = g1.degradations > 0  # a silent pass-through is a FAIL
    return ScenarioResult(
        name=scenario.name, description=scenario.description,
        energy=r1.energy, rel_err=rel_err, deterministic=deterministic,
        faults=g1.injected_faults, recoveries=g1.degradations,
        recovery_seconds=0.0, wall_seconds=wall,
        passed=(rel_err <= tolerance and radii_ok and deterministic
                and detected))


def _run_scenario(scenario: Scenario, molecule: Molecule,
                  params: ApproxParams, processes: int,
                  ref: DistributedOutcome, tolerance: float
                  ) -> ScenarioResult:
    if scenario.plan.has_corruptions:
        return _run_corruption_scenario(scenario, molecule, params,
                                        tolerance)

    def once() -> DistributedOutcome:
        return run_fig4_ft(molecule, params, processes=processes,
                           fault_plan=scenario.plan)

    first, second = once(), once()
    deterministic = (first.energy == second.energy
                     and first.stats.faults == second.stats.faults
                     and first.stats.recoveries == second.stats.recoveries)
    rel_err = abs(first.energy - ref.energy) / abs(ref.energy)
    radii_ok = bool(np.allclose(first.born_radii, ref.born_radii,
                                rtol=tolerance, atol=0.0))
    return ScenarioResult(
        name=scenario.name, description=scenario.description,
        energy=first.energy, rel_err=rel_err,
        deterministic=deterministic,
        faults=first.stats.faults, recoveries=first.stats.recoveries,
        recovery_seconds=first.stats.recovery_seconds(),
        wall_seconds=first.stats.wall_seconds,
        passed=(rel_err <= tolerance and radii_ok and deterministic))


def run_chaos(seed: int = 0,
              processes: int = 4,
              atoms: int = 400,
              quick: bool = False,
              params: Optional[ApproxParams] = None,
              molecule: Optional[Molecule] = None,
              tolerance: float = DEFAULT_TOLERANCE) -> ChaosReport:
    """Run the full scenario matrix; returns the report (never raises
    on scenario failure — check ``report.all_passed``)."""
    params = params or ApproxParams()
    if molecule is None:
        molecule = synthetic_protein(120 if quick else atoms, seed=seed)
    ref = run_fig4_ft(molecule, params, processes=processes)
    results = [_run_scenario(sc, molecule, params, processes, ref,
                             tolerance)
               for sc in scenario_matrix(seed, processes)]
    return ChaosReport(seed=seed, processes=processes,
                       natoms=molecule.natoms, tolerance=tolerance,
                       ref_energy=ref.energy, results=results)
