"""Fleet-scale chaos: a seeded fault matrix over the sharded fleet.

:mod:`repro.faults.servechaos` proves one :class:`SolveService`
survives its own failure modes; this module proves the *fleet* layer
above it — consistent-hash routing, shard supervision and failover
re-routing — holds the same three invariants under shard-scale
faults:

* **zero stranded tickets** — every accepted fleet ticket resolves
  terminally and the router's outstanding count is zero after drain;
* **parity** — every energy produced under faults is bitwise equal
  (``float.hex``) to BOTH a fault-free fleet twin and a single-shard
  baseline run: re-routing work across shards never changes a bit;
* **determinism** — two same-seed runs produce identical JSON
  summaries (statuses, energies, placements, re-route counters).

Choreography: faults are :class:`~repro.faults.plan.FleetFaultPlan`
specs keyed on per-shard *dispatch sequence numbers* — never wall
clock.  Scenarios that depend on which requests are outstanding when
a shard dies first freeze every shard with a *hold*: a request
steered (by content-hash search) onto each shard whose
:class:`~repro.faults.plan.ShardStall` at dispatch seq 0 parks the
shard's single worker on an interruptible event.  With all workers
held, the outstanding set at any dispatch count is a pure function of
the workload, and a revocation (fleet cancel) wakes the held worker
instantly — large hold margins cost nothing.

``repro chaos --fleet`` exposes the matrix; CI runs it twice with the
same seed and diffs the JSON reports byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FleetFaultPlan, ShardCrash, ShardStall
from repro.fleet.fleet import ShardedFleet
from repro.fleet.ring import HashRing
from repro.molecules import synthetic_protein
from repro.serve.errors import ServiceOverloadedError
from repro.serve.request import SolveRequest
from repro.serve.resilience import AdmissionPolicy, BreakerPolicy
from repro.serve.service import SolveService, Ticket

__all__ = ["FleetScenarioResult", "FleetChaosReport",
           "FLEET_SCENARIOS", "run_fleet_chaos"]

#: Hold stall (seconds) freezing a shard's worker while a scenario is
#: choreographed.  Interruptible (a fleet cancel wakes it), and far
#: longer than the milliseconds the submissions take.
HOLD_SECONDS = 1.0

#: Straggler stall for the supervisor scenario — alarm-grade (above
#: :data:`repro.fleet.shard.STALL_ALARM_SECONDS`), interruptible.
STALL_SECONDS = 30.0

#: Names of the scenario matrix, in run order.
FLEET_SCENARIOS = ("clean", "kill-shard-mid-batch", "kill-two",
                   "stall-failover", "rebalance-under-load",
                   "overload-shed")


@dataclass(frozen=True)
class FleetScenarioResult:
    """Outcome of one fleet scenario (two same-seed runs + twins)."""

    name: str
    description: str
    stranded: int
    pending: int
    parity: bool
    deterministic: bool
    summary: Dict[str, Any]
    notes: str
    passed: bool


@dataclass
class FleetChaosReport:
    """Matrix results plus everything needed to reproduce them.

    ``to_json`` is wall-clock-free by construction: two same-seed
    runs must serialize byte-identically.
    """

    seed: int
    natoms: int
    results: List[FleetScenarioResult]

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def table(self) -> str:
        from repro.analysis.tables import Table
        t = Table(["scenario", "stranded", "parity", "determ.",
                   "notes", "status"],
                  title=f"fleet chaos matrix seed={self.seed} "
                        f"({self.natoms} atoms/request)")
        for r in self.results:
            t.add_row(r.name, r.stranded,
                      "yes" if r.parity else "NO",
                      "yes" if r.deterministic else "NO",
                      r.notes, "PASS" if r.passed else "FAIL")
        return t.render()

    def to_json(self, indent: int = 2) -> str:
        doc = {"seed": self.seed, "natoms": self.natoms,
               "backend": "thread",
               "all_passed": self.all_passed,
               "scenarios": [{
                   "name": r.name, "description": r.description,
                   "stranded": r.stranded, "pending": r.pending,
                   "parity": r.parity,
                   "deterministic": r.deterministic,
                   "summary": r.summary, "notes": r.notes,
                   "passed": r.passed,
               } for r in self.results]}
        return json.dumps(doc, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# workload helpers
# ---------------------------------------------------------------------------


def _requests(prefix: str, count: int, seed: int,
              natoms: int) -> List[SolveRequest]:
    """``count`` distinct-molecule requests with deterministic keys."""
    return [SolveRequest(molecule=synthetic_protein(natoms,
                                                    seed=seed + 101 * i),
                         idempotency_key=f"{prefix}-{i}")
            for i in range(count)]


def _holds(shard_ids: Sequence[int], seed: int,
           natoms: int) -> Dict[int, SolveRequest]:
    """One hold request *per shard*, steered by content-hash search.

    Routing hashes the molecule fingerprint, so steering a request
    onto shard ``s`` means searching molecule seeds until one lands
    there — a pure, deterministic search (a handful of candidates per
    shard on average).
    """
    ring = HashRing(shard_ids)
    out: Dict[int, SolveRequest] = {}
    j = 0
    while len(out) < len(shard_ids):
        req = SolveRequest(
            molecule=synthetic_protein(natoms, seed=seed + 7919 + j),
            idempotency_key=f"hold-{j}")
        sid = ring.route(req.route_key())
        if sid not in out:
            out[sid] = req
        j += 1
    return out


def _route_counts(shard_ids: Sequence[int],
                  ordered: Sequence[SolveRequest]) -> Dict[int, int]:
    """Fault-free dispatch counts per shard for an ordered workload —
    the pure precomputation crash sequence numbers are chosen from."""
    ring = HashRing(shard_ids)
    counts = {sid: 0 for sid in shard_ids}
    for req in ordered:
        counts[ring.route(req.route_key())] += 1
    return counts


def _collect(fleet: ShardedFleet,
             tickets: Sequence[Ticket]) -> Dict[str, Any]:
    """Drain + close, then summarize — deterministic fields only."""
    drained = fleet.drain(timeout=120.0)
    stats = fleet.stats()
    stranded = sum(0 if t.done() else 1 for t in tickets)
    pending = fleet.router.outstanding
    fleet.close()
    by_key: Dict[str, Dict[str, Any]] = {}
    for t in tickets:
        if not t.done():
            continue
        r = t.result(timeout=0.0)
        by_key[t.key] = {
            "status": r.status,
            "shard": r.shard,
            "energy_hex": (float(r.energy).hex()
                           if r.energy is not None else None),
        }
    return {"drained": drained, "stranded": stranded,
            "pending": pending, "results": by_key,
            "fleet": {"submitted": stats.submitted,
                      "rerouted": stats.rerouted,
                      "rebalance_moves": stats.rebalance_moves,
                      "shed": stats.shed,
                      "dead": stats.dead,
                      "degraded": stats.degraded,
                      "shards_live": stats.shards_live,
                      "dispatches": {str(k): v for k, v
                                     in sorted(stats.dispatches.items())}}}


def _single_shard_ref(requests: Sequence[SolveRequest]
                      ) -> Dict[str, str]:
    """Single-shard baseline: the bitwise reference energy per key."""
    svc = SolveService(workers=1, batch_size=4,
                       queue_capacity=max(8, 2 * len(requests)))
    tickets = [svc.submit(r) for r in requests]
    svc.drain(timeout=120.0)
    svc.close()
    out: Dict[str, str] = {}
    for t in tickets:
        r = t.result(timeout=0.0)
        if r.energy is not None:
            out[t.key] = float(r.energy).hex()
    return out


def _fleet_ref(requests: Sequence[SolveRequest],
               shards: int) -> Dict[str, str]:
    """Fault-free fleet twin: same shard count, empty fault plan."""
    fleet = ShardedFleet(shards=shards, queue_capacity=max(
        16, 2 * len(requests)))
    tickets = [fleet.submit(r) for r in requests]
    fleet.drain(timeout=120.0)
    fleet.close()
    out: Dict[str, str] = {}
    for t in tickets:
        r = t.result(timeout=0.0)
        if r.energy is not None:
            out[t.key] = float(r.energy).hex()
    return out


def _parity(summary: Dict[str, Any], *refs: Dict[str, str]
            ) -> Tuple[bool, str]:
    """Every faulted-run energy must bitwise match every reference."""
    for key, row in summary["results"].items():
        e = row["energy_hex"]
        if e is None:
            continue
        for i, ref in enumerate(refs):
            if key in ref and ref[key] != e:
                which = "fleet twin" if i == 0 else "single-shard"
                return False, f"energy mismatch vs {which} for {key}"
    return True, ""


def _result(name: str, description: str, summary: Dict[str, Any],
            summary2: Dict[str, Any], refs: Sequence[Dict[str, str]],
            extra_ok: bool, notes: str) -> FleetScenarioResult:
    parity, why = _parity(summary, *refs)
    deterministic = summary == summary2
    stranded = int(summary["stranded"])
    pending = int(summary["pending"])
    passed = (bool(summary["drained"]) and stranded == 0
              and pending == 0 and parity and deterministic
              and extra_ok)
    if why:
        notes = f"{notes}; {why}" if notes else why
    return FleetScenarioResult(
        name=name, description=description, stranded=stranded,
        pending=pending, parity=parity, deterministic=deterministic,
        summary=summary, notes=notes, passed=passed)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def _run_clean(seed: int, natoms: int, tmpdir: str
               ) -> Tuple[Dict[str, Any], Dict[str, Any],
                          List[Dict[str, str]], bool, str]:
    """Baseline — breakers and an (ample) admission limit armed, empty
    fault plan: the fleet machinery must not perturb a healthy run."""
    reqs = _requests("clean", 6, seed, natoms)

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(
            shards=2, cache_dir=f"{tmpdir}/clean{run}",
            fault_plan=FleetFaultPlan(seed=seed),
            breaker_policy=BreakerPolicy(),
            admission=AdmissionPolicy(max_queue_depth=1000))
        tickets = [fleet.submit(r) for r in reqs]
        return _collect(fleet, tickets)

    s1, s2 = once(1), once(2)
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["fleet"]["rerouted"] == 0
          and s1["fleet"]["dead"] == []
          and s1["fleet"]["shed"] == 0)
    refs = [_fleet_ref(reqs, shards=2), _single_shard_ref(reqs)]
    return s1, s2, refs, ok, "no-op machinery"


def _run_kill(seed: int, natoms: int, tmpdir: str
              ) -> Tuple[Dict[str, Any], Dict[str, Any],
                         List[Dict[str, str]], bool, str]:
    """Kill the busiest shard just before its last dispatch: every
    outstanding request re-routes exactly once and lands bitwise."""
    reqs = _requests("kill", 8, seed, natoms)
    holds = _holds([0, 1], seed, natoms)
    ordered = [holds[0], holds[1]] + reqs
    counts = _route_counts([0, 1], ordered)
    victim = max(counts, key=lambda s: (counts[s], -s))
    # Fires just before the victim's final dispatch: outstanding =
    # everything dispatched to it so far (all frozen by the holds).
    plan = FleetFaultPlan(
        [ShardStall(0, HOLD_SECONDS, 0), ShardStall(1, HOLD_SECONDS, 0),
         ShardCrash(victim, counts[victim] - 1)], seed=seed)
    expected_moves = counts[victim] - 1

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(shards=2, fault_plan=plan,
                             cache_dir=f"{tmpdir}/kill{run}")
        tickets = [fleet.submit(r) for r in ordered]
        return _collect(fleet, tickets)

    s1, s2 = once(1), once(2)
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["fleet"]["dead"] == [victim]
          and s1["fleet"]["rerouted"] == expected_moves
          and all(r["shard"] != victim
                  for r in s1["results"].values()))
    refs = [_fleet_ref(ordered, shards=2), _single_shard_ref(ordered)]
    notes = (f"shard {victim} killed; {expected_moves} re-routed "
             f"exactly once")
    return s1, s2, refs, ok, notes


def _run_kill_two(seed: int, natoms: int, tmpdir: str
                  ) -> Tuple[Dict[str, Any], Dict[str, Any],
                             List[Dict[str, str]], bool, str]:
    """Two of four shards die; work re-routes across both deaths
    (some requests move twice) and still lands bitwise."""
    shard_ids = [0, 1, 2, 3]
    reqs = _requests("kill2", 12, seed, natoms)
    holds = _holds(shard_ids, seed, natoms)
    ordered = [holds[s] for s in shard_ids] + reqs
    counts = _route_counts(shard_ids, ordered)
    by_load = sorted(shard_ids, key=lambda s: (-counts[s], s))
    a, b = by_load[0], by_load[1]
    # Consistent hashing keeps b's fault-free traffic on b after a
    # dies, so b's dispatch counter still passes counts[b]-1 and the
    # second crash is guaranteed to fire.
    plan = FleetFaultPlan(
        [ShardStall(s, HOLD_SECONDS, 0) for s in shard_ids]
        + [ShardCrash(a, counts[a] - 1), ShardCrash(b, counts[b] - 1)],
        seed=seed)

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(shards=4, fault_plan=plan,
                             cache_dir=f"{tmpdir}/kill2{run}")
        tickets = [fleet.submit(r) for r in ordered]
        return _collect(fleet, tickets)

    s1, s2 = once(1), once(2)
    survivors = [s for s in shard_ids if s not in (a, b)]
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["fleet"]["dead"] == sorted((a, b))
          and s1["fleet"]["rerouted"] >= counts[a] + counts[b] - 2
          and all(r["shard"] in survivors
                  for r in s1["results"].values()))
    refs = [_fleet_ref(ordered, shards=4), _single_shard_ref(ordered)]
    notes = (f"shards {sorted((a, b))} killed; "
             f"{s1['fleet']['rerouted']} re-routes incl. double moves")
    return s1, s2, refs, ok, notes


def _run_stall_failover(seed: int, natoms: int, tmpdir: str
                        ) -> Tuple[Dict[str, Any], Dict[str, Any],
                                   List[Dict[str, str]], bool, str]:
    """An alarm-grade straggler parks one shard; a supervisor probe
    marks it degraded and quarantines it — the cancel wakes the
    stalled worker, the work re-routes, the shard stays alive."""
    reqs = _requests("stall", 8, seed, natoms)
    stalled = HashRing([0, 1]).route(reqs[0].route_key())
    healthy = 1 - stalled
    counts = _route_counts([0, 1], reqs)
    plan = FleetFaultPlan([ShardStall(stalled, STALL_SECONDS, 0)],
                          seed=seed)

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(shards=2, fault_plan=plan,
                             cache_dir=f"{tmpdir}/stall{run}")
        tickets = [fleet.submit(r) for r in reqs]
        verdicts = fleet.supervisor.probe()
        summary = _collect(fleet, tickets)
        summary["verdicts"] = {str(k): v
                               for k, v in sorted(verdicts.items())}
        summary["stalled_alive"] = fleet.shards[stalled].ping()
        return summary

    s1, s2 = once(1), once(2)
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["verdicts"][str(stalled)] == "degraded"
          and s1["fleet"]["degraded"] == [stalled]
          and s1["fleet"]["dead"] == []
          and s1["fleet"]["rerouted"] == counts[stalled]
          and s1["stalled_alive"]
          and all(r["shard"] == healthy
                  for r in s1["results"].values()))
    refs = [_fleet_ref(reqs, shards=2), _single_shard_ref(reqs)]
    notes = (f"shard {stalled} quarantined; {counts[stalled]} "
             f"re-routed; shard stayed alive")
    return s1, s2, refs, ok, notes


def _run_rebalance(seed: int, natoms: int, tmpdir: str
                   ) -> Tuple[Dict[str, Any], Dict[str, Any],
                              List[Dict[str, str]], bool, str]:
    """A shard joins mid-load: only keys the new ring assigns to the
    newcomer move (consistent-hashing minimality), revoked from their
    old shard and re-dispatched without losing a ticket."""
    first = _requests("reb", 6, seed, natoms)
    second = _requests("reb2", 6, seed, natoms)
    holds = _holds([0, 1], seed, natoms)
    ordered = [holds[0], holds[1]] + first
    # Minimality, precomputed: of the entries in flight at join time,
    # exactly those whose 3-ring owner is the newcomer move.
    ring2, ring3 = HashRing([0, 1]), HashRing([0, 1, 2])
    expected_moved = sorted(
        r.key() for r in ordered
        if ring2.route(r.route_key()) != ring3.route(r.route_key()))
    assert all(ring3.route(r.route_key()) == 2 for r in ordered
               if r.key() in expected_moved)
    plan = FleetFaultPlan(
        [ShardStall(0, HOLD_SECONDS, 0), ShardStall(1, HOLD_SECONDS, 0)],
        seed=seed)

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(shards=2, fault_plan=plan,
                             cache_dir=f"{tmpdir}/reb{run}")
        tickets = [fleet.submit(r) for r in ordered]
        moves = fleet.spawn_shard(2)
        tickets += [fleet.submit(r) for r in second]
        summary = _collect(fleet, tickets)
        summary["moves"] = moves
        return summary

    s1, s2 = once(1), once(2)
    in_flight_keys = {r.key() for r in ordered}
    moved_rows = sorted(k for k, r in s1["results"].items()
                        if r["shard"] == 2 and k in in_flight_keys)
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["moves"] == len(expected_moved)
          and s1["fleet"]["rebalance_moves"] == len(expected_moved)
          and moved_rows == expected_moved)
    refs = [_fleet_ref(ordered + second, shards=2),
            _single_shard_ref(ordered + second)]
    notes = (f"{len(expected_moved)} of {len(ordered)} in-flight keys "
             f"moved, all to the new shard")
    return s1, s2, refs, ok, notes


def _run_shed(seed: int, natoms: int, tmpdir: str
              ) -> Tuple[Dict[str, Any], Dict[str, Any],
                         List[Dict[str, str]], bool, str]:
    """Fleet-level admission sheds the overload with typed retry-after
    errors while both shards are frozen; admitted work still lands
    bitwise once the holds lift."""
    reqs = _requests("shed", 12, seed, natoms)
    holds = _holds([0, 1], seed, natoms)
    plan = FleetFaultPlan(
        [ShardStall(0, HOLD_SECONDS, 0), ShardStall(1, HOLD_SECONDS, 0)],
        seed=seed)
    limit = 6

    def once(run: int) -> Dict[str, Any]:
        fleet = ShardedFleet(
            shards=2, fault_plan=plan,
            cache_dir=f"{tmpdir}/shed{run}",
            admission=AdmissionPolicy(max_queue_depth=limit))
        tickets = [fleet.submit(holds[0]), fleet.submit(holds[1])]
        shed = 0
        hints_ok = True
        for r in reqs:
            try:
                tickets.append(fleet.submit(r))
            except ServiceOverloadedError as exc:
                shed += 1
                hints_ok = hints_ok and exc.retry_after_s > 0 \
                    and exc.depth >= exc.limit
        summary = _collect(fleet, tickets)
        summary["shed_seen"] = shed
        summary["hints_ok"] = hints_ok
        return summary

    s1, s2 = once(1), once(2)
    # Outstanding entries at the i-th request submit (0-based) is
    # 2 + i with both shards frozen: 0..3 admit, 4..11 shed — 8.
    expected_shed = len(reqs) - (limit - len(holds))
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["shed_seen"] == expected_shed
          and s1["fleet"]["shed"] == expected_shed
          and s1["hints_ok"])
    admitted = [holds[0], holds[1]] + reqs[:limit - len(holds)]
    refs = [_fleet_ref(admitted, shards=2),
            _single_shard_ref(admitted)]
    notes = (f"{expected_shed} of {len(reqs)} shed with retry-after "
             f"hints")
    return s1, s2, refs, ok, notes


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------


def run_fleet_chaos(seed: int = 0, atoms: int = 160,
                    quick: bool = False,
                    tmpdir: Optional[str] = None) -> FleetChaosReport:
    """Run the full fleet scenario matrix; returns the report (never
    raises on scenario failure — check ``report.all_passed``).

    ``tmpdir`` hosts the per-run shared disk tiers (a temporary
    directory is created when omitted).
    """
    natoms = 60 if quick else atoms
    if tmpdir is None:
        import tempfile
        with tempfile.TemporaryDirectory(prefix="fleetchaos-") as td:
            return run_fleet_chaos(seed=seed, atoms=atoms, quick=quick,
                                   tmpdir=td)

    results: List[FleetScenarioResult] = []

    s1, s2, refs, ok, notes = _run_clean(seed, natoms, tmpdir)
    results.append(_result(
        "clean", "no faults; breakers + admission armed but idle",
        s1, s2, refs, ok, notes))

    s1, s2, refs, ok, notes = _run_kill(seed, natoms, tmpdir)
    results.append(_result(
        "kill-shard-mid-batch", "busiest shard dies mid-batch; "
        "outstanding work re-routes exactly once, energies bitwise",
        s1, s2, refs, ok, notes))

    s1, s2, refs, ok, notes = _run_kill_two(seed, natoms, tmpdir)
    results.append(_result(
        "kill-two", "two of four shards die; double-moved requests "
        "still land bitwise on the survivors",
        s1, s2, refs, ok, notes))

    s1, s2, refs, ok, notes = _run_stall_failover(seed, natoms, tmpdir)
    results.append(_result(
        "stall-failover", "supervisor probe quarantines a stalled "
        "shard; cancel wakes it; work re-routes, shard stays alive",
        s1, s2, refs, ok, notes))

    s1, s2, refs, ok, notes = _run_rebalance(seed, natoms, tmpdir)
    results.append(_result(
        "rebalance-under-load", "a shard joins mid-load; only the "
        "minimal key range moves, all of it to the newcomer",
        s1, s2, refs, ok, notes))

    s1, s2, refs, ok, notes = _run_shed(seed, natoms, tmpdir)
    results.append(_result(
        "overload-shed", "fleet admission sheds load with typed "
        "retry-after errors while every shard is busy",
        s1, s2, refs, ok, notes))

    return FleetChaosReport(seed=seed, natoms=natoms, results=results)
