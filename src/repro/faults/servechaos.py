"""Serve-tier chaos harness: a seeded fault matrix over SolveService.

The cluster chaos matrix (:mod:`repro.faults.chaos`) proves the
simulated MPI runtime recovers bitwise; this module proves the same
discipline for the serve stack.  Each scenario builds a
:class:`~repro.serve.service.SolveService` wired with a
:class:`~repro.faults.plan.ServeFaultPlan` and asserts three
properties:

* **zero stranded tickets** — every submitted ticket resolves and the
  service's pending count is zero after drain + close;
* **parity** — every energy produced under faults is *bitwise* equal
  to the same request solved by a fault-free twin service;
* **determinism** — two same-seed runs of the scenario produce
  identical JSON summaries (statuses, attempts, energies as
  ``float.hex()``, fault/recovery counters — never wall-clock times).

Scenario shapes that depend on queue composition (which jobs share the
crashed batch) first stall the single worker on a *hold* request via
an injected :class:`~repro.faults.plan.SlowWorker` delay, so the whole
workload is queued before the worker pops its next batch — making
batch composition a pure function of the workload, not of submission
timing.  The hold delay is generous relative to the microseconds the
submissions take; the stall on the hedge scenario is interruptible
(first-completed-wins wakes the loser), so large margins cost nothing.

``repro chaos --serve`` exposes this as a CLI with a pass table and a
JSON report; CI runs it bare and under ``--lock-witness`` and diffs
two same-seed JSON reports byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import ApproxParams
from repro.faults.plan import (
    CachePoison,
    DiskIOFault,
    ServeFaultPlan,
    SlowWorker,
    WorkerCrash,
)
from repro.molecules import synthetic_protein
from repro.serve.cache import ArtifactCache
from repro.serve.errors import ServiceOverloadedError
from repro.serve.request import SolveRequest
from repro.serve.resilience import (
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.service import SolveService, Ticket

__all__ = ["ServeScenarioResult", "ServeChaosReport", "SERVE_SCENARIOS",
           "run_serve_chaos"]

#: Worker stall (seconds) used to freeze queue composition.  Must
#: comfortably exceed the wall time of submitting a handful of
#: requests (microseconds–milliseconds); it is fully paid once per
#: faulted run, so it is kept modest.
HOLD_SECONDS = 1.0

#: Straggler stall for the hedge scenario.  Interruptible — the loser
#: wakes the moment the hedge wins — so a huge margin is free.
STALL_SECONDS = 30.0

#: Names of the scenario matrix, in run order.
SERVE_SCENARIOS = ("clean", "crash-mid-batch", "crash-double",
                   "straggler-hedge", "disk-storm", "cache-poison",
                   "overload-shed")


@dataclass(frozen=True)
class ServeScenarioResult:
    """Outcome of one serve scenario (two same-seed runs + twin)."""

    name: str
    description: str
    stranded: int
    pending: int
    parity: bool
    deterministic: bool
    summary: Dict[str, Any]
    notes: str
    passed: bool


@dataclass
class ServeChaosReport:
    """Matrix results plus everything needed to reproduce them.

    ``to_json`` is wall-clock-free by construction: two same-seed runs
    of the matrix must serialize byte-identically.
    """

    seed: int
    natoms: int
    workers: int
    results: List[ServeScenarioResult]

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def table(self) -> str:
        from repro.analysis.tables import Table
        t = Table(["scenario", "stranded", "parity", "determ.",
                   "notes", "status"],
                  title=f"serve chaos matrix seed={self.seed} "
                        f"({self.natoms} atoms/request)")
        for r in self.results:
            t.add_row(r.name, r.stranded,
                      "yes" if r.parity else "NO",
                      "yes" if r.deterministic else "NO",
                      r.notes, "PASS" if r.passed else "FAIL")
        return t.render()

    def to_json(self, indent: int = 2) -> str:
        doc = {"seed": self.seed, "natoms": self.natoms,
               "workers": self.workers,
               "all_passed": self.all_passed,
               "scenarios": [{
                   "name": r.name, "description": r.description,
                   "stranded": r.stranded, "pending": r.pending,
                   "parity": r.parity,
                   "deterministic": r.deterministic,
                   "summary": r.summary, "notes": r.notes,
                   "passed": r.passed,
               } for r in self.results]}
        return json.dumps(doc, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# workload + twin helpers
# ---------------------------------------------------------------------------


def _requests(prefix: str, count: int, seed: int, natoms: int,
              params: Optional[ApproxParams] = None
              ) -> List[SolveRequest]:
    """``count`` distinct-molecule requests with deterministic keys."""
    params = params or ApproxParams()
    return [SolveRequest(molecule=synthetic_protein(natoms,
                                                    seed=seed + 101 * i),
                         params=params,
                         idempotency_key=f"{prefix}-{i}")
            for i in range(count)]


def _collect(svc: SolveService,
             tickets: Sequence[Ticket]) -> Dict[str, Any]:
    """Drain + close, then summarize — deterministic fields only."""
    drained = svc.drain(timeout=120.0)
    svc.close()
    stranded = sum(0 if t.done() else 1 for t in tickets)
    pending = svc.pending
    by_key: Dict[str, Dict[str, Any]] = {}
    for t in tickets:
        if not t.done():
            continue
        r = t.result(timeout=0.0)
        by_key[t.key] = {
            "status": r.status,
            "attempt": r.attempt,
            "energy_hex": (float(r.energy).hex()
                           if r.energy is not None else None),
            "degraded": r.degradations > 0,
        }
    return {"drained": drained, "stranded": stranded,
            "pending": pending, "results": by_key}


def _clean_energies(requests: Sequence[SolveRequest],
                    natoms: int) -> Dict[str, str]:
    """Fault-free twin: the bitwise reference energy per key."""
    svc = SolveService(workers=1, batch_size=4,
                       queue_capacity=max(8, 2 * len(requests)))
    tickets = [svc.submit(r) for r in requests]
    svc.drain(timeout=120.0)
    svc.close()
    out: Dict[str, str] = {}
    for t in tickets:
        r = t.result(timeout=0.0)
        if r.energy is not None:
            out[t.key] = float(r.energy).hex()
    return out


def _parity(summary: Dict[str, Any],
            ref: Dict[str, str]) -> Tuple[bool, str]:
    """Every faulted-run energy must bitwise match the clean twin."""
    for key, row in summary["results"].items():
        e = row["energy_hex"]
        if e is None:
            continue
        if ref.get(key) != e:
            return False, f"energy mismatch for {key}"
    return True, ""


def _result(name: str, description: str, summary: Dict[str, Any],
            summary2: Dict[str, Any], ref: Dict[str, str],
            extra_ok: bool, notes: str) -> ServeScenarioResult:
    parity, why = _parity(summary, ref)
    deterministic = summary == summary2
    stranded = int(summary["stranded"])
    pending = int(summary["pending"])
    passed = (bool(summary["drained"]) and stranded == 0
              and pending == 0 and parity and deterministic
              and extra_ok)
    if why:
        notes = f"{notes}; {why}" if notes else why
    return ServeScenarioResult(
        name=name, description=description, stranded=stranded,
        pending=pending, parity=parity, deterministic=deterministic,
        summary=summary, notes=notes, passed=passed)


def _hold_request(seed: int, natoms: int) -> SolveRequest:
    """The request a SlowWorker stalls on to freeze the queue."""
    return SolveRequest(molecule=synthetic_protein(natoms,
                                                   seed=seed + 7919),
                        idempotency_key="hold-0")


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def _run_clean(seed: int, natoms: int, workers: int
               ) -> Tuple[Dict[str, Any], Dict[str, Any],
                          Dict[str, str], bool, str]:
    """Baseline — every resilience knob armed, empty fault plan: the
    machinery must not perturb a healthy run."""
    reqs = _requests("clean", 4, seed, natoms)

    def once() -> Dict[str, Any]:
        svc = SolveService(
            workers=workers, batch_size=2, queue_capacity=16,
            fault_plan=ServeFaultPlan(seed=seed),
            retry=RetryPolicy(seed=seed),
            admission=AdmissionPolicy(max_queue_depth=1000),
            breaker=CircuitBreaker(BreakerPolicy()))
        tickets = [svc.submit(r) for r in reqs]
        summary = _collect(svc, tickets)
        st = svc.stats()
        summary["counters"] = {"worker_crashes": st.worker_crashes,
                               "retries": st.retries,
                               "hedges": st.hedges, "shed": st.shed}
        return summary

    s1, s2 = once(), once()
    ok = (all(r["status"] == "ok" for r in s1["results"].values())
          and s1["counters"] == {"worker_crashes": 0, "retries": 0,
                                 "hedges": 0, "shed": 0})
    return s1, s2, _clean_energies(reqs, natoms), ok, "no-op machinery"


def _run_crash(seed: int, natoms: int, double: bool
               ) -> Tuple[Dict[str, Any], Dict[str, Any],
                          Dict[str, str], bool, str]:
    """Worker crash mid-batch (and optionally a second crash on the
    replacement): in-flight jobs requeued exactly once, all ok."""
    prefix = "crash2" if double else "crash"
    reqs = _requests(prefix, 4, seed, natoms)
    hold = _hold_request(seed, natoms)
    faults: List[object] = [
        SlowWorker(seconds=HOLD_SECONDS, key_prefix="hold-"),
        # Batch 0 is the hold request alone; the crash takes batch 1
        # after its first job completes.
        WorkerCrash(worker=0, batch_seq=1, after_jobs=1),
    ]
    if double:
        # The replacement (worker id 1) dies on *its* first batch too.
        faults.append(WorkerCrash(worker=1, batch_seq=0, after_jobs=1))
    plan = ServeFaultPlan(faults, seed=seed)

    def once() -> Dict[str, Any]:
        svc = SolveService(workers=1, batch_size=2, queue_capacity=16,
                           fault_plan=plan)
        t0 = svc.submit(hold)
        # The worker has popped the hold batch once the heap is empty;
        # it now stalls HOLD_SECONDS while the real workload queues.
        svc._queue.wait_empty(timeout=30.0)
        tickets = [t0] + [svc.submit(r) for r in reqs]
        summary = _collect(svc, tickets)
        st = svc.stats()
        summary["counters"] = {"worker_crashes": st.worker_crashes,
                               "worker_restarts": st.worker_restarts,
                               "requeued": st.requeued,
                               "failed": st.failed}
        return summary

    s1, s2 = once(), once()
    crashes = 2 if double else 1
    ok = (s1["counters"] == {"worker_crashes": crashes,
                             "worker_restarts": crashes,
                             "requeued": crashes, "failed": 0}
          and all(r["status"] == "ok"
                  for r in s1["results"].values()))
    ref = _clean_energies([hold] + reqs, natoms)
    notes = (f"{crashes} crash(es), {s1['counters']['requeued']} "
             f"requeued once")
    return s1, s2, ref, ok, notes


def _run_hedge(seed: int, natoms: int
               ) -> Tuple[Dict[str, Any], Dict[str, Any],
                          Dict[str, str], bool, str]:
    """A straggling first attempt is hedged; the hedge wins bitwise
    and the straggler is cancelled at its next checkpoint."""
    reqs = _requests("hedge-slow", 1, seed, natoms)
    plan = ServeFaultPlan(
        [SlowWorker(seconds=STALL_SECONDS, key_prefix="hedge-slow",
                    attempt=1)], seed=seed)

    def once() -> Dict[str, Any]:
        svc = SolveService(
            workers=2, batch_size=1, queue_capacity=8,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, seed=seed,
                              hedge_after_s=0.25))
        tickets = [svc.submit(r) for r in reqs]
        summary = _collect(svc, tickets)
        st = svc.stats()
        summary["counters"] = {"hedges": st.hedges,
                               "hedge_wins": st.hedge_wins,
                               "hedge_cancelled": st.hedge_cancelled}
        return summary

    s1, s2 = once(), once()
    row = s1["results"].get("hedge-slow-0", {})
    ok = (s1["counters"] == {"hedges": 1, "hedge_wins": 1,
                             "hedge_cancelled": 1}
          and row.get("status") == "ok" and row.get("attempt") == 2)
    ref = _clean_energies(reqs, natoms)
    return s1, s2, ref, ok, "hedge won on attempt 2"


def _run_disk_storm(seed: int, natoms: int, tmpdir: str
                    ) -> Tuple[Dict[str, Any], Dict[str, Any],
                               Dict[str, str], bool, str]:
    """Every disk op fails: the breaker opens after ``min_samples``
    errors and the service degrades to memory-only caching."""
    reqs = _requests("disk", 5, seed, natoms)
    plan = ServeFaultPlan([DiskIOFault(op="*", index=0, count=None)],
                          seed=seed)
    pol = BreakerPolicy(window=4, failure_threshold=1.0, min_samples=4,
                        open_seconds=600.0, half_open_probes=1)

    def once(run: int) -> Dict[str, Any]:
        breaker = CircuitBreaker(pol)
        cache = ArtifactCache(disk_dir=f"{tmpdir}/run{run}",
                              breaker=breaker, fault_plan=plan)
        svc = SolveService(workers=1, batch_size=2, queue_capacity=16,
                           cache=cache, fault_plan=plan)
        tickets = [svc.submit(r) for r in reqs]
        summary = _collect(svc, tickets)
        cs = cache.stats()
        summary["counters"] = {"disk_errors": cs.disk_errors,
                               "disk_writes": cs.disk_writes,
                               "breaker_opens": breaker.open_count,
                               "breaker_state": breaker.state,
                               "shorted": breaker.short_circuited > 0}
        return summary

    s1, s2 = once(1), once(2)
    ok = (s1["counters"]["disk_errors"] == pol.min_samples
          and s1["counters"]["disk_writes"] == 0
          and s1["counters"]["breaker_opens"] == 1
          and s1["counters"]["breaker_state"] == "open"
          and s1["counters"]["shorted"]
          and all(r["status"] == "ok"
                  for r in s1["results"].values()))
    ref = _clean_energies(reqs, natoms)
    return s1, s2, ref, ok, (f"breaker open after "
                             f"{pol.min_samples} errors")


def _run_poison(seed: int, natoms: int
                ) -> Tuple[Dict[str, Any], Dict[str, Any],
                           Dict[str, str], bool, str]:
    """A poisoned warm Born-radii hit: the guard watchdog catches the
    corruption, degrades, and recomputes the clean energy bitwise."""
    mol = synthetic_protein(natoms, seed=seed + 31)
    cold = SolveRequest(molecule=mol, idempotency_key="poison-a")
    # Same geometry, different eps_epol: the born layer stays warm (it
    # excludes eps_epol), the epol layer misses — the classic
    # warm-start path the poison targets.
    warm = SolveRequest(molecule=mol,
                        params=ApproxParams(eps_epol=1e-7),
                        idempotency_key="poison-b")
    plan = ServeFaultPlan(
        [CachePoison(layer="born", kind="scale", fraction=0.25,
                     factor=8.0, occurrence=0)], seed=seed)

    def once() -> Dict[str, Any]:
        svc = SolveService(workers=1, batch_size=1, queue_capacity=8,
                           fault_plan=plan)
        t_cold = svc.submit(cold)
        t_cold.result(timeout=60.0)  # fills the born layer first
        t_warm = svc.submit(warm)
        return _collect(svc, [t_cold, t_warm])

    s1, s2 = once(), once()
    row = s1["results"].get("poison-b", {})
    ok = (row.get("status") == "degraded" and row.get("degraded")
          and s1["results"].get("poison-a", {}).get("status") == "ok")
    ref = _clean_energies([cold, warm], natoms)
    return s1, s2, ref, ok, "watchdog caught poisoned warm radii"


def _run_shed(seed: int, natoms: int
              ) -> Tuple[Dict[str, Any], Dict[str, Any],
                         Dict[str, str], bool, str]:
    """Admission control sheds the overload with typed errors carrying
    a retry-after hint, ahead of hard queue backpressure."""
    reqs = _requests("shed", 8, seed, natoms)
    hold = _hold_request(seed, natoms)
    plan = ServeFaultPlan(
        [SlowWorker(seconds=HOLD_SECONDS, key_prefix="hold-")],
        seed=seed)

    def once() -> Dict[str, Any]:
        svc = SolveService(workers=1, batch_size=2, queue_capacity=32,
                           fault_plan=plan,
                           admission=AdmissionPolicy(max_queue_depth=3))
        t0 = svc.submit(hold)
        svc._queue.wait_empty(timeout=30.0)
        tickets = [t0]
        shed = 0
        hints_ok = True
        for r in reqs:
            try:
                tickets.append(svc.submit(r))
            except ServiceOverloadedError as exc:
                shed += 1
                hints_ok = hints_ok and exc.retry_after_s > 0 \
                    and exc.depth >= exc.limit
        summary = _collect(svc, tickets)
        summary["counters"] = {"shed": shed,
                               "stats_shed": svc.stats().shed,
                               "hints_ok": hints_ok}
        return summary

    s1, s2 = once(), once()
    # Depth seen by request i is i (single held worker): 0,1,2 admit,
    # 3..7 shed — deterministically 5.
    ok = (s1["counters"]["shed"] == 5
          and s1["counters"]["stats_shed"] == 5
          and s1["counters"]["hints_ok"]
          and all(r["status"] == "ok"
                  for r in s1["results"].values()))
    ref = _clean_energies([hold] + reqs, natoms)
    return s1, s2, ref, ok, "5 of 8 shed with retry-after hints"


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------


def run_serve_chaos(seed: int = 0, atoms: int = 200,
                    quick: bool = False, workers: int = 2,
                    tmpdir: Optional[str] = None) -> ServeChaosReport:
    """Run the full serve scenario matrix; returns the report (never
    raises on scenario failure — check ``report.all_passed``).

    ``workers`` steers the clean baseline; fault scenarios pin their
    own pool sizes (supervision and hedging shapes require it).
    ``tmpdir`` hosts the disk-storm checkpoint directories (a
    temporary directory is created when omitted).
    """
    natoms = 80 if quick else atoms
    if tmpdir is None:
        import tempfile
        with tempfile.TemporaryDirectory(prefix="servechaos-") as td:
            return run_serve_chaos(seed=seed, atoms=atoms, quick=quick,
                                   workers=workers, tmpdir=td)

    results: List[ServeScenarioResult] = []

    s1, s2, ref, ok, notes = _run_clean(seed, natoms, workers)
    results.append(_result(
        "clean", "no faults; resilience machinery armed but idle",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_crash(seed, natoms, double=False)
    results.append(_result(
        "crash-mid-batch", "worker dies mid-batch; in-flight jobs "
        "requeued exactly once; replacement spawned",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_crash(seed, natoms, double=True)
    results.append(_result(
        "crash-double", "the replacement worker dies too; distinct "
        "jobs each requeued exactly once",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_hedge(seed, natoms)
    results.append(_result(
        "straggler-hedge", "straggling attempt hedged; first "
        "completed wins, loser cancelled",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_disk_storm(seed, natoms, tmpdir)
    results.append(_result(
        "disk-storm", "every disk op fails; breaker opens; service "
        "degrades to memory-only caching",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_poison(seed, natoms)
    results.append(_result(
        "cache-poison", "poisoned warm cache hit caught by the guard "
        "watchdog; degraded recompute is bitwise clean",
        s1, s2, ref, ok, notes))

    s1, s2, ref, ok, notes = _run_shed(seed, natoms)
    results.append(_result(
        "overload-shed", "SLO breach sheds load with typed "
        "retry-after errors ahead of hard backpressure",
        s1, s2, ref, ok, notes))

    return ServeChaosReport(seed=seed, natoms=natoms, workers=workers,
                            results=results)
