"""Deterministic, seeded fault injection plans for :class:`SimCluster`.

A :class:`FaultPlan` is an immutable description of every fault a
simulated run will experience:

* :class:`RankCrash` — a rank dies during its *n*-th compute phase with
  a given label (or when its virtual clock crosses ``at_time``);
* :class:`MessageDrop` — a point-to-point message vanishes in transit
  (the receiver times out), or a rank's contribution to the *n*-th
  collective of an op is lost and must be retransmitted (every
  participant pays the retransmission in virtual time);
* :class:`MessageDelay` — the same matching rules, but the payload
  arrives late by ``seconds`` of virtual time;
* :class:`Straggler` — a rank whose every compute charge is multiplied
  by ``factor`` (an overloaded / thermally-throttled node);
* :class:`DataCorruption` — seeded NaN / scale injection into a named
  solver array (``"born.radii"``, …), consumed by the guard layer
  (:mod:`repro.guard`) rather than the cluster runtime, so
  ``repro chaos`` can exercise the numerical sentinels and the
  accuracy watchdog end-to-end.

Determinism: a plan is a pure value.  Which fault fires where depends
only on virtual-time state the ranks maintain deterministically
(per-label compute counts, per-channel send sequence numbers, per-group
collective sequence numbers) — never on wall-clock time or thread
scheduling — so the same plan over the same program yields the same
faults, the same recoveries and the same energy, run after run.
:meth:`FaultPlan.random` derives a reproducible random plan from a
seed.  The injection hooks in :mod:`repro.cluster.simmpi` emit a trace
instant (category ``fault``) through :mod:`repro.obs` every time a
fault fires, so Perfetto timelines show exactly when and where.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RankCrash",
    "MessageDrop",
    "MessageDelay",
    "Straggler",
    "DataCorruption",
    "FaultEvent",
    "FaultPlan",
    "WorkerCrash",
    "SlowWorker",
    "DiskIOFault",
    "CachePoison",
    "ServeFaultPlan",
    "ShardCrash",
    "ShardStall",
    "RouterPartition",
    "FleetFaultPlan",
]


@dataclass(frozen=True)
class RankCrash:
    """Kill ``rank`` partway through a labelled compute phase.

    ``phase`` matches the ``label`` of :meth:`SimComm.compute` calls
    (``"born"``, ``"push"``, ``"epol"`` in the Fig. 4 drivers);
    ``occurrence`` selects the *n*-th such call on that rank.
    ``after_fraction`` of the phase's virtual cost is charged before
    the crash fires (the work is lost either way).  Alternatively set
    ``at_time`` to crash when the rank's virtual clock first crosses
    it during any compute.
    """

    rank: int
    phase: Optional[str] = None
    occurrence: int = 0
    after_fraction: float = 0.5
    at_time: Optional[float] = None


@dataclass(frozen=True)
class MessageDrop:
    """Lose a message from ``src``.

    Point-to-point form (``dst`` given): the *n*-th send on the
    ``(src, dst, tag)`` channel is never delivered — the receiver's
    ``recv`` raises :class:`~repro.faults.errors.RecvTimeoutError`.

    Collective form (``op`` given): ``src``'s fragment of the *n*-th
    ``op`` collective is lost on the wire; the (reliable) transport
    retransmits, charging every participant the retransmission cost in
    virtual time.  The collective still completes correctly.
    """

    src: int
    dst: Optional[int] = None
    tag: Optional[int] = None
    op: Optional[str] = None
    index: int = 0


@dataclass(frozen=True)
class MessageDelay:
    """Deliver a message from ``src`` late by ``seconds`` virtual time.

    Matching rules as :class:`MessageDrop`; for collectives the delayed
    rank enters the rendezvous late, so every other participant books
    the difference as idle time — exactly how a slow link shows up in a
    real Allreduce.
    """

    src: int
    seconds: float
    dst: Optional[int] = None
    tag: Optional[int] = None
    op: Optional[str] = None
    index: int = 0


@dataclass(frozen=True)
class Straggler:
    """Multiply every compute charge on ``rank`` by ``factor`` (> 1)."""

    rank: int
    factor: float


@dataclass(frozen=True)
class DataCorruption:
    """Seeded corruption of a named solver array (bit-rot model).

    Consumed by :class:`repro.guard.solver.GuardedSolver`, which counts
    each production of a named array and corrupts the matching
    occurrence — so the guard layer's sentinels and accuracy watchdog
    can be exercised end-to-end by ``repro chaos``.

    ``array`` names a phase-boundary product: ``"born.radii"``,
    ``"surface.weights"`` or ``"epol.energy"``.  ``kind`` is ``"nan"``
    (entries become NaN — the sentinel's case) or ``"scale"`` (entries
    are multiplied by ``factor`` — finite-but-wrong, the watchdog's
    case).  ``occurrence`` selects the *n*-th production of the array
    within the run (each degradation-ladder attempt produces it once);
    ``persistent=True`` fires on every occurrence from there on,
    modelling a hard fault no retry or ε-tightening can clear — only
    the guard's exact naive fallback (which recomputes from pristine
    inputs and is exempt from injection) escapes it.  Which entries are
    hit is a pure function of ``(plan seed, array, occurrence)``.
    """

    array: str
    kind: str = "nan"
    fraction: float = 0.05
    factor: float = 8.0
    occurrence: int = 0
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("nan", "scale"):
            raise ValueError("corruption kind must be 'nan' or 'scale'")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("corruption fraction must be in (0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run (for ``RunStats``)."""

    kind: str          # "crash" | "drop" | "delay" | "straggler"
    rank: int          # the faulty rank (source, for message faults)
    t: float           # virtual time at which the fault fired
    detail: str = ""   # op / channel / factor description


class FaultPlan:
    """Immutable set of faults plus the seed that derived it.

    Query methods are pure functions of their arguments — the plan
    holds no mutable firing state, which is what makes runs with the
    same plan reproducible regardless of thread interleaving.
    """

    def __init__(self, faults: Sequence[object] = (), seed: int = 0) -> None:
        self.faults: Tuple[object, ...] = tuple(faults)
        self.seed = seed
        self._crashes = [f for f in self.faults if isinstance(f, RankCrash)]
        self._drops = [f for f in self.faults if isinstance(f, MessageDrop)]
        self._delays = [f for f in self.faults
                        if isinstance(f, MessageDelay)]
        self._corruptions = [f for f in self.faults
                             if isinstance(f, DataCorruption)]
        self._slowdowns: Dict[int, float] = {}
        for f in self.faults:
            if isinstance(f, Straggler):
                if f.factor <= 0:
                    raise ValueError("straggler factor must be positive")
                self._slowdowns[f.rank] = (
                    self._slowdowns.get(f.rank, 1.0) * f.factor)

    # -- introspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def crash_ranks(self) -> List[int]:
        return sorted({c.rank for c in self._crashes})

    @property
    def has_corruptions(self) -> bool:
        return bool(self._corruptions)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"FaultPlan(seed={self.seed}, faults={list(self.faults)})"

    # -- queries used by the simmpi injection hooks ------------------------

    def crash_for(self, rank: int, label: str, occurrence: int,
                  t0: float, t1: float) -> Optional[RankCrash]:
        """The crash (if any) that fires on ``rank`` during a compute
        labelled ``label`` (its ``occurrence``-th on this rank) that
        would advance the clock from ``t0`` to ``t1``."""
        for c in self._crashes:
            if c.rank != rank:
                continue
            if c.phase is not None:
                if c.phase == label and c.occurrence == occurrence:
                    return c
            elif c.at_time is not None and t0 < c.at_time <= t1:
                return c
        return None

    def slowdown(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = healthy)."""
        return self._slowdowns.get(rank, 1.0)

    def p2p_fault(self, src: int, dst: int, tag: int, seq: int
                  ) -> Tuple[Optional[MessageDrop],
                             Optional[MessageDelay]]:
        """(drop, delay) matching the ``seq``-th send on a channel."""

        def matches(f) -> bool:
            return (f.src == src and f.dst == dst and f.index == seq
                    and (f.tag is None or f.tag == tag))

        drop = next((f for f in self._drops
                     if f.dst is not None and matches(f)), None)
        delay = next((f for f in self._delays
                      if f.dst is not None and matches(f)), None)
        return drop, delay

    def collective_drops(self, op: str, op_seq: int,
                         ranks: Sequence[int]) -> List[int]:
        """Ranks whose fragment of the ``op_seq``-th ``op`` is lost."""
        return [f.src for f in self._drops
                if f.op == op and f.index == op_seq and f.src in ranks]

    def collective_delay(self, rank: int, op: str, op_seq: int) -> float:
        """Late-entry delay for ``rank`` in the ``op_seq``-th ``op``."""
        return sum(f.seconds for f in self._delays
                   if f.op == op and f.index == op_seq and f.src == rank)

    def corruption_for(self, array: str,
                       occurrence: int) -> Optional[DataCorruption]:
        """The corruption (if any) hitting the ``occurrence``-th
        production of the named array (see
        :class:`repro.guard.solver.GuardedSolver`)."""
        for c in self._corruptions:
            if c.array != array:
                continue
            if c.occurrence == occurrence or (
                    c.persistent and occurrence >= c.occurrence):
                return c
        return None

    # -- seeded scenario generation ----------------------------------------

    @classmethod
    def random(cls, seed: int, ranks: int,
               crash_prob: float = 0.25,
               drop_prob: float = 0.25,
               delay_prob: float = 0.25,
               straggler_prob: float = 0.25,
               phases: Sequence[str] = ("born", "push", "epol"),
               max_delay: float = 0.05,
               max_slowdown: float = 4.0) -> "FaultPlan":
        """Derive a reproducible random plan from ``seed``.

        At most one crash is generated (rank 0 is spared so the run
        always has a master to report from in non-fault-tolerant
        drivers); drops and delays target the listed collective
        ``phases``' operations.
        """
        rng = np.random.default_rng(seed)
        faults: List[object] = []
        if ranks > 1 and rng.random() < crash_prob:
            faults.append(RankCrash(
                rank=int(rng.integers(1, ranks)),
                phase=str(rng.choice(list(phases))),
                after_fraction=float(rng.uniform(0.1, 0.9))))
        if ranks > 1 and rng.random() < drop_prob:
            faults.append(MessageDrop(
                src=int(rng.integers(0, ranks)),
                op=str(rng.choice(["allreduce", "allgather", "reduce"]))))
        if ranks > 1 and rng.random() < delay_prob:
            faults.append(MessageDelay(
                src=int(rng.integers(0, ranks)),
                seconds=float(rng.uniform(1e-4, max_delay)),
                op=str(rng.choice(["allreduce", "allgather", "reduce"]))))
        if rng.random() < straggler_prob:
            faults.append(Straggler(
                rank=int(rng.integers(0, ranks)),
                factor=float(rng.uniform(1.5, max_slowdown))))
        return cls(faults, seed=seed)


# ---------------------------------------------------------------------------
# Serve-tier faults (consumed by repro.serve, not the simulated cluster)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerCrash:
    """Kill a :class:`~repro.serve.service.SolveService` worker thread.

    ``worker`` is the worker id; the initial pool is ids ``0..n-1`` and
    every replacement takes the next id, so a spec never re-fires on
    the thread spawned to replace its victim and a double-crash
    scenario addresses the replacement explicitly.  ``batch_seq``
    selects the *n*-th batch the worker pops (each worker counts its
    own batches deterministically); ``after_jobs`` is how many jobs of
    that batch complete before the thread dies — the rest are in-flight
    and must be requeued exactly once by supervision.
    """

    worker: int
    batch_seq: int = 0
    after_jobs: int = 0

    def __post_init__(self) -> None:
        if self.after_jobs < 0:
            raise ValueError("after_jobs must be >= 0")


@dataclass(frozen=True)
class SlowWorker:
    """Inject a straggler delay into matching job executions.

    All given selectors must match: ``worker`` (None = any),
    ``key_prefix`` (request key startswith, "" = any) and ``attempt``
    (None = any).  Pinning ``attempt=1`` makes a hedged re-submit of
    the same request run at full speed — the deterministic straggler
    scenario for first-completed-wins coalescing.
    """

    seconds: float
    worker: Optional[int] = None
    key_prefix: str = ""
    attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("slow-worker seconds must be positive")


@dataclass(frozen=True)
class DiskIOFault:
    """Fail disk-tier :class:`~repro.serve.cache.ArtifactCache` ops.

    ``op`` is ``"load"``, ``"save"``, ``"delete"`` or ``"*"``; the
    cache keeps a per-op sequence counter and the fault fires on ops
    ``index .. index+count-1`` (``count=None`` = every op from
    ``index`` on — a persistently failing disk, the breaker-storm
    scenario).
    """

    op: str = "*"
    index: int = 0
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in ("load", "save", "delete", "*"):
            raise ValueError("disk fault op must be load/save/delete/*")
        if self.count is not None and self.count <= 0:
            raise ValueError("disk fault count must be positive")


@dataclass(frozen=True)
class CachePoison:
    """Corrupt arrays served from a named cache layer on ``get``.

    ``layer`` matches the layered-key prefix (``"born"``, ``"trees"``,
    ``"surface"``); ``occurrence`` selects the *n*-th hit on that layer
    (memory or disk); ``key_prefix`` further restricts to matching
    keys.  ``kind`` follows :class:`DataCorruption`: ``"nan"`` for the
    sentinels, ``"scale"`` for the accuracy watchdog.  Which entries
    are hit is a pure function of ``(plan seed, layer, occurrence)``.
    The guard layer treats warm data as untrusted, so a poisoned hit
    must degrade — never change the returned energy bits.
    """

    layer: str = "born"
    kind: str = "scale"
    fraction: float = 0.25
    factor: float = 8.0
    occurrence: int = 0
    key_prefix: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("nan", "scale"):
            raise ValueError("poison kind must be 'nan' or 'scale'")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("poison fraction must be in (0, 1]")


class ServeFaultPlan:
    """Immutable serve-tier fault set plus the seed that derived it.

    Query methods are pure functions of deterministic state the serve
    stack maintains itself (per-worker batch sequence numbers, per-op
    disk sequence numbers, per-layer hit occurrence counts, request
    fingerprints and attempt numbers) — never wall-clock time — so the
    same plan over the same workload yields the same faults, the same
    recoveries and the same energies, run after run.
    """

    def __init__(self, faults: Sequence[object] = (), seed: int = 0) -> None:
        self.faults: Tuple[object, ...] = tuple(faults)
        self.seed = seed
        self._crashes = [f for f in self.faults
                         if isinstance(f, WorkerCrash)]
        self._slow = [f for f in self.faults if isinstance(f, SlowWorker)]
        self._disk = [f for f in self.faults if isinstance(f, DiskIOFault)]
        self._poisons = [f for f in self.faults
                         if isinstance(f, CachePoison)]

    # -- introspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.faults

    @property
    def has_disk_faults(self) -> bool:
        return bool(self._disk)

    @property
    def has_poisons(self) -> bool:
        return bool(self._poisons)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"ServeFaultPlan(seed={self.seed}, "
                f"faults={list(self.faults)})")

    # -- queries used by the serve injection hooks -------------------------

    def crash_for(self, worker: int, batch_seq: int
                  ) -> Optional[WorkerCrash]:
        """The crash (if any) firing on ``worker``'s ``batch_seq``-th
        batch."""
        for c in self._crashes:
            if c.worker == worker and c.batch_seq == batch_seq:
                return c
        return None

    def slow_seconds(self, worker: int, key: str, attempt: int) -> float:
        """Total injected delay for one job execution (0.0 = healthy)."""
        total = 0.0
        for s in self._slow:
            if s.worker is not None and s.worker != worker:
                continue
            if s.key_prefix and not key.startswith(s.key_prefix):
                continue
            if s.attempt is not None and s.attempt != attempt:
                continue
            total += s.seconds
        return total

    def disk_fault(self, op: str, seq: int) -> Optional[DiskIOFault]:
        """The fault (if any) hitting the ``seq``-th disk op of kind
        ``op`` (the cache counts load/save/delete separately)."""
        for f in self._disk:
            if f.op != "*" and f.op != op:
                continue
            if seq < f.index:
                continue
            if f.count is not None and seq >= f.index + f.count:
                continue
            return f
        return None

    def poison_for(self, layer: str, occurrence: int,
                   key: str) -> Optional[CachePoison]:
        """The poison (if any) hitting the ``occurrence``-th hit on a
        cache layer for ``key``."""
        for p in self._poisons:
            if p.layer != layer or p.occurrence != occurrence:
                continue
            if p.key_prefix and not key.startswith(p.key_prefix):
                continue
            return p
        return None

    def poison_array(self, poison: CachePoison, layer: str,
                     arr: np.ndarray) -> np.ndarray:
        """Corrupted copy of ``arr`` — entries chosen by a pure
        function of ``(seed, layer, occurrence)``, mirroring
        :class:`DataCorruption` semantics so the guard layer's
        sentinels and watchdog see realistic bit-rot."""
        digest = hashlib.sha256(
            f"{self.seed}:{layer}:{poison.occurrence}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        out = np.array(arr, copy=True)
        flat = out.reshape(-1)
        n = max(1, int(round(poison.fraction * flat.size)))
        idx = rng.choice(flat.size, size=min(n, flat.size), replace=False)
        if poison.kind == "nan":
            flat[idx] = np.nan
        else:
            flat[idx] = flat[idx] * poison.factor
        return out


# ---------------------------------------------------------------------------
# Fleet-tier faults (consumed by repro.fleet, not a single SolveService)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCrash:
    """Kill an entire shard just before its ``dispatch_seq``-th dispatch.

    The :class:`~repro.fleet.router.ShardRouter` keeps a per-shard
    dispatch sequence counter (how many requests it has handed that
    shard since fleet start); when the counter for ``shard`` reaches
    ``dispatch_seq`` the router kills the shard *before* dispatching
    the triggering request, so requests ``0 .. dispatch_seq-1`` form
    the deterministic outstanding set that failover must re-route.
    Keyed on dispatch order, never wall clock.
    """

    shard: int
    dispatch_seq: int = 0

    def __post_init__(self) -> None:
        if self.dispatch_seq < 0:
            raise ValueError("dispatch_seq must be >= 0")


@dataclass(frozen=True)
class ShardStall:
    """Stall a shard's worker on its ``dispatch_seq``-th dispatched job.

    The shard's in-service straggler hook sleeps ``seconds`` (on the
    interruptible ticket event, so a fleet-level cancel wakes it) while
    executing the job the router dispatched as sequence number
    ``dispatch_seq``.  A long stall makes the shard's ``stalled()``
    probe trip, which is how the supervisor-detects-degraded scenario
    is choreographed without wall-clock dependence.
    """

    shard: int
    seconds: float
    dispatch_seq: int = 0

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("shard-stall seconds must be positive")
        if self.dispatch_seq < 0:
            raise ValueError("dispatch_seq must be >= 0")


@dataclass(frozen=True)
class RouterPartition:
    """Make the router↔shard link look down for a dispatch window.

    Dispatches ``dispatch_seq .. dispatch_seq+count-1`` to ``shard``
    fail at the router edge (recorded against the shard's circuit
    breaker) and the requests re-route to the ring successor — the
    shard itself stays healthy, modelling a network partition rather
    than a death.
    """

    shard: int
    dispatch_seq: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.dispatch_seq < 0:
            raise ValueError("dispatch_seq must be >= 0")
        if self.count <= 0:
            raise ValueError("partition count must be positive")


class FleetFaultPlan:
    """Immutable fleet-tier fault set plus the seed that derived it.

    Query methods are pure functions of the per-shard dispatch
    sequence counters the router maintains deterministically — never
    wall-clock time — so the same plan over the same workload kills,
    stalls and partitions the same shards at the same points, and the
    re-routed energies land bitwise identical, run after run.
    """

    def __init__(self, faults: Sequence[object] = (), seed: int = 0) -> None:
        self.faults: Tuple[object, ...] = tuple(faults)
        self.seed = seed
        self._crashes = [f for f in self.faults if isinstance(f, ShardCrash)]
        self._stalls = [f for f in self.faults if isinstance(f, ShardStall)]
        self._partitions = [f for f in self.faults
                            if isinstance(f, RouterPartition)]

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"FleetFaultPlan(seed={self.seed}, "
                f"faults={list(self.faults)})")

    # -- queries used by the router / shard injection hooks ----------------

    def crash_at(self, shard: int, dispatch_seq: int
                 ) -> Optional[ShardCrash]:
        """The crash (if any) firing just before ``shard``'s
        ``dispatch_seq``-th dispatch."""
        for c in self._crashes:
            if c.shard == shard and c.dispatch_seq == dispatch_seq:
                return c
        return None

    def stall_seconds(self, shard: int, dispatch_seq: int) -> float:
        """Injected straggler delay for one dispatched job (0 = healthy)."""
        total = 0.0
        for s in self._stalls:
            if s.shard == shard and s.dispatch_seq == dispatch_seq:
                total += s.seconds
        return total

    def partitioned(self, shard: int, dispatch_seq: int
                    ) -> Optional[RouterPartition]:
        """The partition (if any) blackholing ``shard``'s
        ``dispatch_seq``-th dispatch at the router edge."""
        for p in self._partitions:
            if p.shard != shard:
                continue
            if dispatch_seq < p.dispatch_seq:
                continue
            if dispatch_seq >= p.dispatch_seq + p.count:
                continue
            return p
        return None
