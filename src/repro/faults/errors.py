"""Typed fault errors for the simulated cluster.

The simulated MPI runtime used to let implementation details escape
across module boundaries — a receive timeout surfaced as a bare
``queue.Empty`` and an aborted collective as
``threading.BrokenBarrierError`` — which told the caller nothing about
*which* rank failed, *which* operation aborted or *when* in virtual
time.  Every error the cluster raises to user code is now one of the
types below (all subclasses of :class:`FaultError`), each carrying the
ranks, operation and virtual clocks involved, so a fault-tolerant
driver can decide whether and how to recover.

Lint rule RPR006 (``repro.lint``) enforces the boundary: code in
``repro/cluster`` and ``repro/faults`` may not let ``queue.Empty`` or
``BrokenBarrierError`` out of the statement that produced them.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "FaultError",
    "RankCrashedError",
    "RecvTimeoutError",
    "CollectiveAbortedError",
    "NoSurvivorsError",
    "WorkerCrashedError",
    "DiskFaultError",
]


class FaultError(RuntimeError):
    """Base class of every fault the simulated cluster can surface.

    A fault-tolerant rank function catches this (or a subclass),
    shrinks the communicator and retries; plain rank functions let it
    propagate, in which case :meth:`SimCluster.run` re-raises the most
    informative instance.
    """


class RankCrashedError(FaultError):
    """A rank died — injected by a :class:`repro.faults.plan.RankCrash`
    or detected by a survivor talking to the dead rank.

    ``rank`` is the dead rank.  Raised *on* the dying rank when the
    injection fires (``rank == comm.rank``) and on survivors whose
    ``recv`` names a dead source.
    """

    def __init__(self, rank: int, clock: float,
                 phase: Optional[str] = None) -> None:
        self.rank = rank
        self.clock = clock
        self.phase = phase
        where = f" during {phase!r}" if phase else ""
        super().__init__(
            f"rank {rank} crashed at t={clock:.6f}s{where}")


class RecvTimeoutError(FaultError):
    """``comm.recv`` gave up waiting for a message.

    Carries the channel (``source`` → ``dest``, ``tag``) and both
    endpoints' virtual clocks at the moment the receiver gave up, so a
    dropped or lost message is diagnosable from the exception alone.
    ``source_clock`` is ``None`` when the sender's clock could not be
    sampled (it may still be running).
    """

    def __init__(self, source: int, dest: int, tag: int,
                 dest_clock: float,
                 source_clock: Optional[float] = None,
                 timeout: float = 0.0) -> None:
        self.source = source
        self.dest = dest
        self.tag = tag
        self.dest_clock = dest_clock
        self.source_clock = source_clock
        self.timeout = timeout
        src_t = (f"{source_clock:.6f}s" if source_clock is not None
                 else "unknown")
        super().__init__(
            f"recv on rank {dest} from rank {source} (tag {tag}) timed "
            f"out after {timeout:g}s real time; receiver virtual clock "
            f"{dest_clock:.6f}s, sender virtual clock {src_t}")


class CollectiveAbortedError(FaultError):
    """A collective broke before completing.

    ``op`` names the collective the calling rank was in; ``dead`` lists
    the ranks known to have died (empty for a pure timeout / mismatched
    schedule, the classic deadlock case).  Survivors use ``dead`` to
    shrink the communicator and redistribute the lost work.
    """

    def __init__(self, op: str, rank: int, clock: float,
                 dead: Sequence[int] = (),
                 timed_out: bool = False) -> None:
        self.op = op
        self.rank = rank
        self.clock = clock
        self.dead = tuple(dead)
        self.timed_out = timed_out
        if self.dead:
            why = f"rank(s) {list(self.dead)} died"
        elif timed_out:
            why = ("timed out — likely a rank-divergent collective "
                   "schedule (see lint rule RPR101)")
        else:
            why = "barrier aborted"
        super().__init__(
            f"collective {op!r} aborted on rank {rank} at "
            f"t={clock:.6f}s: {why}")


class NoSurvivorsError(FaultError):
    """Every rank died — there is no group left to shrink to."""

    def __init__(self, dead: Sequence[int]) -> None:
        self.dead = tuple(dead)
        super().__init__(
            f"all ranks dead ({list(self.dead)}); nothing to recover")


class WorkerCrashedError(FaultError):
    """A serve worker thread died with this job in flight.

    Injected by a :class:`repro.faults.plan.WorkerCrash`.  Supervision
    requeues the in-flight batch exactly once (via idempotency keys);
    a job that loses its worker a *second* time surfaces this error in
    its :class:`~repro.serve.request.SolveResult` instead of being
    requeued forever.
    """

    def __init__(self, worker: int, batch_seq: int, key: str) -> None:
        self.worker = worker
        self.batch_seq = batch_seq
        self.key = key
        super().__init__(
            f"worker {worker} crashed during batch {batch_seq} with "
            f"request {key!r} in flight")


class DiskFaultError(FaultError, OSError):
    """An injected disk-tier I/O failure (checkpoint load/save/delete).

    Keeps an :class:`OSError` base so the artifact cache's existing
    disk-error containment (``except (CheckpointError, OSError)``)
    treats an injected fault exactly like a real one.
    """

    def __init__(self, op: str, seq: int) -> None:
        self.op = op
        self.seq = seq
        FaultError.__init__(
            self, f"injected disk fault on {op} op #{seq}")
