"""repro.faults — deterministic fault injection + fault tolerance.

Three layers (see ``docs/ROBUSTNESS.md`` for the full model):

* **Plans** (:mod:`repro.faults.plan`) — a seeded, fully reproducible
  :class:`FaultPlan` describing rank crashes, message drops/delays and
  straggler slowdowns, consulted by the simulated MPI runtime;
* **Errors** (:mod:`repro.faults.errors`) — the typed hierarchy every
  cluster fault surfaces as (:class:`RankCrashedError`,
  :class:`RecvTimeoutError`, :class:`CollectiveAbortedError`), each
  naming the ranks, operation and virtual clocks involved;
* **Chaos** (:mod:`repro.faults.chaos`) — a seeded scenario matrix
  that runs the fault-tolerant Fig. 4 solver under each fault class
  and asserts energy agreement with the fault-free run (exposed as
  ``repro chaos``).  Imported lazily (``from repro.faults import
  chaos``) because it pulls in the distributed drivers.

The same discipline reaches the serve tier: a
:class:`ServeFaultPlan` (worker crashes, stragglers, disk faults,
cache poison — all seeded and keyed on deterministic serve-side
state) is consumed by :class:`repro.serve.service.SolveService`, and
:mod:`repro.faults.servechaos` (also lazy — it pulls in the serve
stack) runs the ``repro chaos --serve`` scenario matrix.

One level further up, a :class:`FleetFaultPlan` (``ShardCrash`` /
``ShardStall`` / ``RouterPartition``, keyed on per-shard dispatch
sequence numbers) drives the sharded fleet of
:mod:`repro.fleet`, and :mod:`repro.faults.fleetchaos` (lazy) runs
the ``repro chaos --fleet`` matrix — shard deaths, stalled-shard
quarantine, live rebalancing and overload shedding, all asserting
bitwise energy parity against fault-free twins.
"""

from __future__ import annotations

from repro.faults.errors import (
    CollectiveAbortedError,
    DiskFaultError,
    FaultError,
    NoSurvivorsError,
    RankCrashedError,
    RecvTimeoutError,
    WorkerCrashedError,
)
from repro.faults.plan import (
    CachePoison,
    DataCorruption,
    DiskIOFault,
    FaultEvent,
    FaultPlan,
    FleetFaultPlan,
    MessageDelay,
    MessageDrop,
    RankCrash,
    RouterPartition,
    ServeFaultPlan,
    ShardCrash,
    ShardStall,
    SlowWorker,
    Straggler,
    WorkerCrash,
)

__all__ = [
    "FaultError",
    "RankCrashedError",
    "RecvTimeoutError",
    "CollectiveAbortedError",
    "NoSurvivorsError",
    "WorkerCrashedError",
    "DiskFaultError",
    "FaultEvent",
    "FaultPlan",
    "RankCrash",
    "MessageDrop",
    "MessageDelay",
    "Straggler",
    "DataCorruption",
    "ServeFaultPlan",
    "WorkerCrash",
    "SlowWorker",
    "DiskIOFault",
    "CachePoison",
    "FleetFaultPlan",
    "ShardCrash",
    "ShardStall",
    "RouterPartition",
]
