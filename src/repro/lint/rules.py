"""Project-specific per-file rules RPR001–RPR007.

The headline collective-ordering verifier (RPR101) lives in
:mod:`repro.lint.collectives`; this module holds the structural rules:

* **RPR001** — unseeded randomness (legacy ``np.random.*`` global-state
  calls anywhere, and ``default_rng()`` / ``RandomState()`` without a
  seed) outside test modules.  Every schedule in this repo (synthetic
  molecules, work-stealing victim choice, OS-noise jitter) must be a
  pure function of an explicit seed.
* **RPR002** — mutable default arguments.
* **RPR003** — bare or overbroad ``except`` clauses.
* **RPR004** — dtype discipline: float-accumulator array constructors
  (``np.zeros/ones/empty/full``) in the numeric hot-path packages
  (``core/``, ``octree/``, ``parallel/``) must pass an explicit
  ``dtype=`` so a future default-dtype change (or a stray float32
  input) cannot silently degrade the ``eps``-guaranteed error bounds.
* **RPR005** — ``__all__`` consistency in package ``__init__.py``
  files: present, duplicate-free, and every listed name bound.
* **RPR006** — fault-boundary discipline: inside ``repro/cluster`` and
  ``repro/faults``, the runtime's infrastructure exceptions
  (``queue.Empty``, ``threading.BrokenBarrierError``) must never
  escape to callers — every raise (or bare re-raise from a handler)
  must convert them into the typed :mod:`repro.faults.errors`
  hierarchy, which names ranks, ops and virtual clocks.
* **RPR007** — diagnostic discipline: inside ``repro/core`` and
  ``repro/molecules``, ``raise ValueError(...)`` / ``RuntimeError``
  must use the typed :mod:`repro.guard.errors` hierarchy instead
  (phase + offending indices + hint); genuine API argument checks
  may keep the builtin under ``# lint: ignore[RPR007]``.
* **RPR008** — serve-queue discipline: inside ``repro/serve`` and
  ``repro/edge``, no
  unbounded ``queue.Queue()``/``deque()`` (the service's backpressure
  contract is an explicit ``QueueFullError``, which an unbounded
  buffer silently defeats) and no ``time.sleep`` polling loops
  (condition/timeout-based waits only — a sleep loop trades latency
  for CPU on every idle worker).
* **RPR009** — monotonic-clock + bounded-retry discipline: inside
  ``repro/serve``, ``repro/faults``, ``repro/fleet`` and
  ``repro/edge``, (a) no
  ``time.time()`` — every
  deadline, backoff and breaker-cooldown computation must use
  ``time.monotonic()``, because the wall clock jumps under NTP slew
  and DST and a backwards jump turns a 50 ms backoff into a negative
  (or hour-long) one; and (b) no ``while True`` loop whose exception
  handler silently ``pass``/``continue``\\ s — that is an unbounded
  retry loop with no attempt budget, no backoff and no escalation
  path (use :class:`repro.serve.resilience.RetryPolicy` or carry a
  ``# lint: ignore[RPR009]`` explaining the loop's exit guarantee).
* **RPR010** — redaction discipline: inside ``repro/edge`` (except
  the redaction helper itself), no logging sink may receive a raw
  request body or credential.  The edge's structured request log is
  an exported CI artifact; one ``log.info(f"got {body}")`` turns it
  into a credential store.  Bodies become ``redaction.body_digest``
  fingerprints, credential headers become ``redaction.REDACTED``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set

from repro.lint.framework import (
    FileContext,
    Finding,
    Rule,
    Severity,
    dotted_name,
    iter_calls,
)

__all__ = [
    "UnseededRandomRule",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "DtypeDisciplineRule",
    "DunderAllRule",
    "FaultBoundaryRule",
    "TypedDiagnosticRule",
    "ServeQueueDisciplineRule",
    "MonotonicClockRule",
    "RedactionDisciplineRule",
]

#: ``np.random`` attributes that are *not* legacy global-state entry
#: points (construction of explicit generators is the approved path).
_NEW_STYLE_RANDOM = {"default_rng", "Generator", "SeedSequence",
                     "RandomState", "BitGenerator", "PCG64", "Philox",
                     "MT19937", "SFC64"}

#: Explicit-generator constructors that require a seed argument.
_SEEDED_CONSTRUCTORS = {"default_rng", "RandomState", "SeedSequence"}


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class UnseededRandomRule(Rule):
    """RPR001: all randomness must flow from an explicit seed."""

    id = "RPR001"
    description = ("unseeded or global-state RNG: use "
                   "np.random.default_rng(seed) with an explicit seed")
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test:
            return
        for call in iter_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            yield from self._check_call(ctx, call, name)

    def _check_call(self, ctx: FileContext, call: ast.Call,
                    name: str) -> Iterator[Finding]:
        parts = name.split(".")
        # np.random.<legacy fn>(...) — hidden global state, order-dependent.
        if (len(parts) == 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NEW_STYLE_RANDOM):
            yield self.finding(
                ctx, call,
                f"legacy global-state RNG call np.random.{parts[2]}(); "
                f"construct np.random.default_rng(seed) and use its "
                f"methods instead")
            return
        # default_rng()/RandomState() without a seed (or seed=None).
        tail = parts[-1]
        if tail in _SEEDED_CONSTRUCTORS and (
                len(parts) == 1
                or (parts[:-1] in (["np", "random"], ["numpy", "random"])
                    or parts[:-1] == ["np"] or parts[:-1] == ["numpy"]
                    or parts[-2] == "random")):
            seed_kw = next((kw.value for kw in call.keywords
                            if kw.arg == "seed"), None)
            first = call.args[0] if call.args else None
            if (first is None and seed_kw is None) \
                    or _is_none(first) or _is_none(seed_kw):
                yield self.finding(
                    ctx, call,
                    f"{tail}() without an explicit seed makes schedules "
                    f"irreproducible; thread a seed parameter through")


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "Counter", "deque", "OrderedDict"}


class MutableDefaultRule(Rule):
    """RPR002: mutable default arguments are shared across calls."""

    id = "RPR002"
    description = "mutable default argument; use None and fill in the body"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + \
                    [d for d in args.kw_defaults if d is not None]:
                if isinstance(default, _MUTABLE_LITERALS):
                    yield self.finding(
                        ctx, default,
                        "mutable default argument (shared between calls); "
                        "default to None and construct inside the function")
                elif isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    if name and name.split(".")[-1] in _MUTABLE_CALLS:
                        yield self.finding(
                            ctx, default,
                            f"mutable default argument {name}() (shared "
                            f"between calls); default to None and "
                            f"construct inside the function")


class OverbroadExceptRule(Rule):
    """RPR003: catch specific exceptions.

    Bare ``except:`` and ``except BaseException`` swallow
    ``KeyboardInterrupt``/``SystemExit``; ``except Exception`` hides
    programming errors behind the 120 s simulated-MPI barrier timeout.
    Deliberate catch-all boundaries (e.g. the rank-thread runner that
    re-raises) must carry ``# lint: ignore[RPR003]``.
    """

    id = "RPR003"
    description = "bare or overbroad except clause"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception(s) you expect")
                continue
            names = [node.type] if not isinstance(node.type, ast.Tuple) \
                else list(node.type.elts)
            for n in names:
                dn = dotted_name(n)
                if dn in ("Exception", "BaseException"):
                    yield self.finding(
                        ctx, node,
                        f"overbroad 'except {dn}' hides programming "
                        f"errors; catch the specific exception (or "
                        f"suppress a deliberate boundary with "
                        f"# lint: ignore[RPR003])")


#: Array constructors whose *default* dtype would be silently inherited.
_DTYPE_CONSTRUCTORS = {"zeros", "ones", "empty", "full"}

#: Hot-path packages where accumulator dtype is part of the contract.
_DTYPE_PACKAGES = ("core", "octree", "parallel")


class DtypeDisciplineRule(Rule):
    """RPR004: hot-path accumulators carry an explicit dtype."""

    id = "RPR004"
    description = ("np.zeros/ones/empty/full without dtype= in "
                   "core/, octree/ or parallel/")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return any(pkg in parts for pkg in _DTYPE_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for call in iter_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            if parts[1] not in _DTYPE_CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in call.keywords):
                continue
            # full(shape, fill) may take dtype positionally as arg 3.
            npos = 3 if parts[1] == "full" else 2
            if len(call.args) >= npos:
                continue
            yield self.finding(
                ctx, call,
                f"np.{parts[1]}() on a numeric hot path without an "
                f"explicit dtype=; spell out dtype=np.float64 (or the "
                f"intended type) so kernels stay contiguous float64")


#: Infrastructure exceptions that must not cross the fault boundary.
_INFRA_EXCEPTIONS = {"Empty", "queue.Empty", "BrokenBarrierError",
                     "threading.BrokenBarrierError"}

#: Packages whose public surface is the typed FaultError hierarchy.
_FAULT_PACKAGES = ("cluster", "faults")


class FaultBoundaryRule(Rule):
    """RPR006: infra exceptions never cross the cluster/faults boundary.

    ``queue.Empty`` (a recv that saw nothing) and
    ``threading.BrokenBarrierError`` (an aborted collective) carry no
    context — no source rank, no operation, no virtual clocks — so a
    caller cannot write a recovery policy against them.  Inside
    ``repro/cluster`` and ``repro/faults`` they must be converted at
    the catch site into :class:`RecvTimeoutError`,
    :class:`RankCrashedError` or :class:`CollectiveAbortedError`;
    raising them (or bare-re-raising from a handler that caught one)
    is flagged.
    """

    id = "RPR006"
    description = ("queue.Empty / BrokenBarrierError escaping "
                   "repro/cluster or repro/faults; convert to a typed "
                   "repro.faults error at the catch site")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return any(pkg in parts for pkg in _FAULT_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                dn = dotted_name(target)
                if dn in _INFRA_EXCEPTIONS:
                    yield self.finding(
                        ctx, node,
                        f"raising {dn} across the fault boundary; raise "
                        f"a typed repro.faults error (RecvTimeoutError, "
                        f"CollectiveAbortedError, RankCrashedError) that "
                        f"names the ranks and clocks involved")
            elif isinstance(node, ast.ExceptHandler) \
                    and node.type is not None:
                names = [node.type] if not isinstance(node.type, ast.Tuple) \
                    else list(node.type.elts)
                caught = {dotted_name(n) for n in names}
                if not caught & _INFRA_EXCEPTIONS:
                    continue
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Raise) and inner.exc is None:
                        yield self.finding(
                            ctx, inner,
                            "bare re-raise propagates the caught "
                            "infrastructure exception out of "
                            "repro/cluster; convert it to a typed "
                            "repro.faults error instead")


class DunderAllRule(Rule):
    """RPR005: package ``__init__.py`` export lists stay consistent.

    A module-level ``__getattr__`` (PEP 562 lazy re-export, as in
    ``repro.guard``) may bind any ``__all__`` name at attribute-access
    time, so the "name is bound" half of the check is skipped for such
    modules; duplicates and non-literal entries are still flagged.
    """

    id = "RPR005"
    description = ("package __init__.py must define a duplicate-free "
                   "__all__ whose names are all bound in the module")
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or not ctx.is_package_init or ctx.is_test:
            return
        assert isinstance(ctx.tree, ast.Module)
        lazy = any(isinstance(stmt, ast.FunctionDef)
                   and stmt.name == "__getattr__"
                   for stmt in ctx.tree.body)
        bound = self._bound_names(ctx.tree)
        all_nodes = [
            stmt for stmt in ctx.tree.body
            if isinstance(stmt, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets)
        ]
        if not all_nodes:
            if bound:  # a namespace-only stub may legitimately be empty
                yield self.finding(
                    ctx, ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    "package __init__.py defines public names but no "
                    "__all__; add one so the import surface is explicit")
            return
        for node in all_nodes:
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                yield self.finding(ctx, node,
                                   "__all__ must be a literal list/tuple")
                continue
            seen: Set[str] = set()
            for elt in node.value.elts:
                if not isinstance(elt, ast.Constant) \
                        or not isinstance(elt.value, str):
                    yield self.finding(
                        ctx, elt, "__all__ entries must be string literals")
                    continue
                name = elt.value
                if name in seen:
                    yield self.finding(
                        ctx, elt, f"duplicate __all__ entry {name!r}")
                seen.add(name)
                if name not in bound and not lazy:
                    yield self.finding(
                        ctx, elt,
                        f"__all__ lists {name!r} but the module never "
                        f"imports or defines it")

    @staticmethod
    def _bound_names(tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname
                              or alias.name.split(".")[0])
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    for n in ast.walk(tgt):
                        if isinstance(n, ast.Name):
                            bound.add(n.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # one level of conditional imports (TYPE_CHECKING etc.)
                bodies: List[List[ast.stmt]] = [stmt.body]
                if isinstance(stmt, ast.If):
                    bodies.append(stmt.orelse)
                else:
                    bodies.extend(h.body for h in stmt.handlers)
                    bodies.append(stmt.orelse)
                for body in bodies:
                    bound |= DunderAllRule._bound_names(
                        ast.Module(body=body, type_ignores=[]))
        return bound


#: Packages whose raises must carry diagnostic context (RPR007).
_DIAGNOSTIC_PACKAGES = ("core", "molecules")

#: Builtins those packages may not raise bare.
_BARE_BUILTINS = {"ValueError", "RuntimeError"}


class TypedDiagnosticRule(Rule):
    """RPR007: numeric packages raise typed diagnostics, not builtins.

    A bare ``ValueError("Born radii must be positive")`` tells the user
    *that* something broke but not *where* (which phase) or *what*
    (which atoms), and gives :class:`repro.guard.solver.GuardedSolver`
    nothing to dispatch its degradation ladder on.  Code under
    ``repro/core`` and ``repro/molecules`` must raise the
    :mod:`repro.guard.errors` hierarchy (every class keeps its
    ``ValueError``/``RuntimeError`` base, so callers lose nothing).
    Genuine API argument checks (a bad ``method=`` string, a negative
    ``degree``) may keep the builtin under a documented
    ``# lint: ignore[RPR007]``.
    """

    id = "RPR007"
    description = ("bare ValueError/RuntimeError in repro/core or "
                   "repro/molecules; raise a repro.guard.errors class "
                   "(or document a suppression)")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return any(pkg in parts for pkg in _DIAGNOSTIC_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            dn = dotted_name(target)
            if dn in _BARE_BUILTINS:
                yield self.finding(
                    ctx, node,
                    f"bare {dn} in a numeric package; raise a typed "
                    f"repro.guard.errors class (MoleculeFormatError, "
                    f"DegenerateGeometryError, NumericalGuardError) "
                    f"naming the phase and offending indices — they "
                    f"subclass {dn}, so callers keep working")


#: Packages whose queues must be bounded and waits condition-based.
_SERVE_PACKAGES = ("serve", "edge")

#: ``queue`` module constructors that default to an unbounded buffer
#: when ``maxsize`` is omitted or <= 0.
_BOUNDED_QUEUE_CLASSES = {"Queue", "LifoQueue", "PriorityQueue"}


def _int_const(node: Optional[ast.AST]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


class ServeQueueDisciplineRule(Rule):
    """RPR008: serve buffers are bounded and waits are condition-based.

    The service's admission contract is *explicit backpressure*: a full
    queue raises :class:`repro.serve.errors.QueueFullError` so the
    caller can shed or retry.  An unbounded ``queue.Queue()`` or
    ``collections.deque()`` silently voids that contract (memory grows
    until the OOM killer is the backpressure).  Likewise, a
    ``time.sleep`` inside a loop is a polling wait — it burns CPU on
    every idle worker and adds up to one sleep-period of latency per
    hand-off; use ``threading.Condition.wait_for``/``Event.wait`` with
    a timeout instead.  A deliberately unbounded internal buffer must
    carry ``# lint: ignore[RPR008]`` explaining why it cannot grow.
    """

    id = "RPR008"
    description = ("unbounded queue.Queue()/deque() or time.sleep "
                   "polling loop inside repro/serve or repro/edge; "
                   "bound the buffer "
                   "and wait on a Condition/Event with a timeout")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return any(pkg in parts for pkg in _SERVE_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for call in iter_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            yield from self._check_buffer(ctx, call, name.split("."))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                dn = dotted_name(inner.func)
                if dn in ("time.sleep", "sleep"):
                    yield self.finding(
                        ctx, inner,
                        "time.sleep inside a loop is a polling wait; "
                        "use threading.Condition.wait_for / Event.wait "
                        "with a timeout so wake-up is immediate and "
                        "idle workers cost nothing")

    def _check_buffer(self, ctx: FileContext, call: ast.Call,
                      parts: List[str]) -> Iterator[Finding]:
        tail = parts[-1]
        qualifier_ok = len(parts) == 1 or parts[0] in (
            "queue", "collections")
        if not qualifier_ok:
            return
        if tail == "SimpleQueue" and parts[0:1] in ([], ["queue"]):
            yield self.finding(
                ctx, call,
                "queue.SimpleQueue is always unbounded; use a bounded "
                "queue.Queue(maxsize=...) or the service's "
                "BoundedPriorityQueue")
            return
        if tail in _BOUNDED_QUEUE_CLASSES:
            maxsize = next((kw.value for kw in call.keywords
                            if kw.arg == "maxsize"),
                           call.args[0] if call.args else None)
            bound = _int_const(maxsize)
            if maxsize is None or (bound is not None and bound <= 0):
                yield self.finding(
                    ctx, call,
                    f"{tail}() without a positive maxsize is unbounded; "
                    f"backpressure must be explicit (QueueFullError), "
                    f"not an eventual OOM")
        elif tail == "deque":
            maxlen = next((kw.value for kw in call.keywords
                           if kw.arg == "maxlen"),
                          call.args[1] if len(call.args) > 1 else None)
            if maxlen is None or _is_none(maxlen):
                yield self.finding(
                    ctx, call,
                    "deque() without maxlen is unbounded inside "
                    "repro/serve; give it a maxlen or use the bounded "
                    "priority queue")


#: Packages whose clocks must be monotonic and retries bounded.
_MONOTONIC_PACKAGES = ("serve", "faults", "fleet", "edge")


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body only passes/continues (no logging,
    no counter, no re-raise — the error simply vanishes)."""
    return all(isinstance(stmt, (ast.Pass, ast.Continue))
               for stmt in handler.body)


class MonotonicClockRule(Rule):
    """RPR009: monotonic clocks and bounded retries in
    serve/faults/fleet.

    Deadline, backoff and breaker-cooldown arithmetic lives in
    ``repro/serve``, ``repro/faults`` and ``repro/fleet`` (heartbeat
    ages, probe cadences, stall alarms).  ``time.time()`` reads the
    *wall* clock, which NTP slew, manual resets and DST can move in
    either direction — a backwards jump makes a deadline that never
    expires or a negative backoff; ``time.monotonic()`` cannot go
    backwards and is the only clock these computations may use.

    Separately, a ``while True:`` loop whose exception handler is just
    ``pass``/``continue`` is an *unbounded* retry: no attempt budget,
    no backoff, no escalation — under a persistent fault it spins
    forever and the error evidence is destroyed.  Route retries
    through :class:`repro.serve.resilience.RetryPolicy` (bounded
    attempts, seeded exponential backoff, deadline-aware) or annotate
    the loop's exit guarantee with ``# lint: ignore[RPR009]``.
    """

    id = "RPR009"
    description = ("time.time() or a while-True loop that silently "
                   "swallows exceptions inside repro/serve + "
                   "repro/faults + repro/fleet + repro/edge; use "
                   "time.monotonic() and bounded "
                   "RetryPolicy-style retries")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return any(pkg in parts for pkg in _MONOTONIC_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for call in iter_calls(ctx.tree):
            if dotted_name(call.func) == "time.time":
                yield self.finding(
                    ctx, call,
                    "time.time() is the wall clock — NTP slew or a "
                    "manual reset can move it backwards, turning a "
                    "deadline or backoff negative; use "
                    "time.monotonic() for all deadline/backoff/"
                    "cooldown arithmetic")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant)
                    and test.value is True):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.ExceptHandler):
                    continue
                if _handler_swallows(inner):
                    yield self.finding(
                        ctx, inner,
                        "while-True loop swallowing exceptions with "
                        "bare pass/continue is an unbounded retry — "
                        "no attempt budget, no backoff, no error "
                        "evidence; bound it with RetryPolicy or "
                        "document the exit guarantee under "
                        "# lint: ignore[RPR009]")


#: Call names that put their arguments somewhere a human (or a CI
#: artifact consumer) will read them.
_LOG_SINKS = frozenset({
    "print", "log", "debug", "info", "warning", "error", "exception",
    "critical", "record", "emit", "log_message", "write_text",
})

#: Raw byte/stream sinks — only a *directly named* sensitive buffer is
#: suspicious here (``stream.write(body)``); structured values such as
#: ``wfile.write(resp.body)`` are app-constructed responses.
_STREAM_SINKS = frozenset({"write"})

#: Identifiers that name raw request bodies or credentials.
_SENSITIVE_IDENTIFIERS = frozenset({
    "body", "raw_body", "payload", "token", "auth", "authorization",
    "auth_header", "bearer", "secret", "password", "api_key",
    "credential", "credentials", "cookie",
})


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class RedactionDisciplineRule(Rule):
    """RPR010: raw bodies/credentials never reach a logging sink.

    The edge's structured request log is uploaded as a CI artifact
    and tailed in production; one ``log.record(body=body)`` or
    ``print(f"auth={token}")`` turns it into a credential store with
    every tenant's bearer token in plain text.  Inside ``repro/edge``,
    only :mod:`repro.edge.redaction` may turn request material into
    loggable strings — everything else must pass digests
    (``body_digest``), redacted headers (``redact_headers``) or sizes
    (``len(body)`` is fine: only *direct* references to a sensitive
    name, keyword arguments named after one, and f-string
    interpolations of one are flagged).
    """

    id = "RPR010"
    description = ("raw request body/credential passed to a logging "
                   "sink inside repro/edge; route it through "
                   "repro.edge.redaction (body_digest/redact_headers)")
    severity = Severity.ERROR

    def _applies(self, ctx: FileContext) -> bool:
        parts = Path(ctx.relpath).parts
        return "edge" in parts \
            and Path(ctx.relpath).name != "redaction.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test or not self._applies(ctx):
            return
        for call in iter_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            tail = name.split(".")[-1]
            if tail in _LOG_SINKS:
                direct_only = False
            elif tail in _STREAM_SINKS:
                direct_only = True
            else:
                continue
            yield from self._check_sink(ctx, call, tail, direct_only)

    def _check_sink(self, ctx: FileContext, call: ast.Call, sink: str,
                    direct_only: bool) -> Iterator[Finding]:
        for kw in call.keywords:
            if kw.arg and kw.arg.lower() in _SENSITIVE_IDENTIFIERS:
                yield self.finding(
                    ctx, kw.value,
                    f"{sink}(..., {kw.arg}=...) logs a raw "
                    f"body/credential field; pass a "
                    f"repro.edge.redaction digest instead")
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            offender = self._sensitive(arg, direct_only)
            if offender is not None:
                yield self.finding(
                    ctx, arg,
                    f"raw {offender!r} reaches the {sink}() sink; "
                    f"only repro.edge.redaction may turn request "
                    f"bodies/credentials into loggable material "
                    f"(use body_digest/redact_headers/redact_token)")

    @staticmethod
    def _sensitive(node: ast.AST, direct_only: bool) -> Optional[str]:
        ident = _identifier(node)
        if ident is not None:
            if direct_only and not isinstance(node, ast.Name):
                return None
            return ident if ident.lower() in _SENSITIVE_IDENTIFIERS \
                else None
        if isinstance(node, ast.JoinedStr):
            for inner in ast.walk(node):
                ident = _identifier(inner)
                if ident is not None \
                        and ident.lower() in _SENSITIVE_IDENTIFIERS:
                    return ident
        return None
