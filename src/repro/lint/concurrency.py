"""RPR201–RPR205 — lock-discipline analysis for ``threading`` code.

PR 5's review caught four concurrency bugs in ``repro.serve`` by hand
(stranded coalesced tickets, dead worker threads, racing disk trims,
unlocked stats).  These rules encode that review: a per-module,
interprocedural *lock-model* pass plus five checks over it.

The lock model
--------------
For every class the pass collects, from ``__init__``:

* **lock attributes** — ``self._lock = threading.Lock()`` /
  ``RLock()`` / ``Condition(...)``, and the witness factories
  ``named_lock(...)`` / ``named_condition(...)``
  (:mod:`repro.obs.lockwitness`).  A ``Condition(self._lock)``
  *aliases* its lock: acquiring ``self._idle`` and acquiring
  ``self._lock`` are the same event, so both resolve to one canonical
  **root**;
* **guarded fields** — a trailing ``# guarded-by: _lock`` comment on
  a field's ``__init__`` assignment declares which lock protects it;
* **guarded regions** — ``with self._lock:`` blocks (per method, with
  the full nesting structure).

The pass is interprocedural within the class: a private helper that
is only ever called with ``self._lock`` held (every call site sits
inside a ``with self._lock:`` region) *inherits* that lock as held at
entry — so ``_count``-style helpers need no annotations — and locks a
helper may acquire propagate order edges to call sites that hold
other locks.  The fixpoint is per module; cross-module object graphs
(service → queue) are out of scope by design.

The rules
---------
* **RPR201** — inconsistent lock acquisition order: the module's
  static lock-order graph (edge ``A → B`` = ``B`` acquired while
  holding ``A``, directly or through a helper call) must be acyclic;
  re-acquiring a held non-reentrant ``Lock`` is flagged too.
* **RPR202** — blocking call (solver invocation, ``Condition.wait``,
  file/disk-tier I/O, queue ops, thread joins, ticket waits) while
  holding a *hot* lock — one that guards fields or backs a
  ``Condition``.  A cold pure-serialization mutex (e.g. the cache's
  ``_disk_lock``, which exists to serialize trims) may legitimately
  be held across the I/O it serializes.
* **RPR203** — ``Condition.wait()`` outside a ``while``-predicate
  loop (spurious wake-ups make a bare or ``if``-guarded wait wrong);
  ``wait_for`` is exempt — it loops internally.
* **RPR204** — a ``# guarded-by:``-annotated field written outside a
  guarded region of its lock (``__init__`` is exempt: the object is
  not shared yet).  Mutating method calls (``.append``, ``.pop``,
  ``setdefault`` …), ``setattr`` and ``heapq.heappush(self._f, …)``
  count as writes.
* **RPR205** — ``Condition.notify()`` / ``notify_all()`` without the
  condition's lock held (a silent no-op race: the waiter re-checks
  its predicate before the notify lands, then sleeps forever).

Suppress a deliberate exception with the standard
``# lint: ignore[RPR20x]`` trailing comment, with a reason.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, \
    Set, Tuple

from repro.lint.framework import (
    FileContext,
    Finding,
    Rule,
    Severity,
    dotted_name,
)

__all__ = [
    "LockOrderRule",
    "BlockingUnderLockRule",
    "WaitPredicateRule",
    "GuardedFieldRule",
    "NotifyWithoutLockRule",
]

#: ``# guarded-by: _lock`` — field annotation consumed by RPR204.
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Method names that mutate their receiver (RPR204 write detection).
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "add", "discard",
    "setdefault", "move_to_end", "sort", "reverse", "push",
})

#: Module functions that mutate their *first argument* in place.
_ARG_MUTATORS = frozenset({"heapq.heappush", "heapq.heappop",
                           "heapq.heapify", "heappush", "heappop",
                           "heapify"})

#: Path/file-object methods that hit the filesystem.
_PATH_IO = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes", "stat",
    "unlink", "rename", "replace", "mkdir", "rmdir", "touch", "glob",
    "rglob",
})

#: Blocking queue operations (matched when the receiver names a queue).
_QUEUE_OPS = frozenset({"put", "get", "get_nowait", "put_nowait",
                        "get_batch", "wait_not_full", "join",
                        "task_done"})

#: Calls that run a whole solve (seconds, not microseconds).
_SOLVER_CALLS = frozenset({"GuardedSolver", "PolarizationSolver",
                           "sample_surface", "simulate_fig4"})
_SOLVER_METHODS = frozenset({"report", "born_phase_only"})


# ---------------------------------------------------------------------------
# Lock model
# ---------------------------------------------------------------------------

@dataclass
class LockInfo:
    """One lock-like attribute of a class."""

    attr: str
    root: str       # canonical lock (conditions alias the lock they wrap)
    kind: str       # "lock" | "rlock" | "condition"
    lineno: int


@dataclass
class ClassModel:
    """Locks, aliases and guarded fields of one class."""

    name: str
    node: ast.ClassDef
    locks: Dict[str, LockInfo] = field(default_factory=dict)
    guarded: Dict[str, str] = field(default_factory=dict)  # field → root
    guard_errors: List[Tuple[int, str]] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    def root_of(self, attr: str) -> Optional[str]:
        info = self.locks.get(attr)
        return info.root if info is not None else None

    def hot_roots(self) -> Set[str]:
        """Roots that guard fields or back a condition — locks whose
        holders other threads actively wait on."""
        hot = set(self.guarded.values())
        for info in self.locks.values():
            if info.kind == "condition":
                hot.add(info.root)
        return hot

    def reentrant(self, root: str) -> bool:
        info = self.locks.get(root)
        return info is None or info.kind != "lock"


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _kw(call: ast.Call, name: str) -> Optional[ast.AST]:
    return next((kw.value for kw in call.keywords if kw.arg == name),
                None)


def _lock_ctor(call: ast.Call) -> Optional[Tuple[str, Optional[ast.AST]]]:
    """(kind, wrapped-lock expr) when ``call`` constructs a lock."""
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    tail = parts[-1]
    threading_ok = len(parts) == 1 or parts[-2] == "threading"
    if tail == "Lock" and threading_ok:
        return ("lock", None)
    if tail == "RLock" and threading_ok:
        return ("rlock", None)
    if tail == "Condition" and threading_ok:
        return ("condition",
                call.args[0] if call.args else _kw(call, "lock"))
    if tail == "named_lock":
        return ("lock", None)
    if tail == "named_condition":
        return ("condition",
                call.args[1] if len(call.args) > 1
                else _kw(call, "lock"))
    return None


def _guard_lines(source: str) -> Dict[int, str]:
    """Line number → lock name for every ``# guarded-by:`` comment."""
    out: Dict[int, str] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _GUARDED_RE.search(line)
        if m:
            out[i] = m.group(1)
    return out


def build_class_model(ctx: FileContext,
                      cls: ast.ClassDef,
                      guard_lines: Dict[int, str]) -> ClassModel:
    model = ClassModel(name=cls.name, node=cls)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[stmt.name] = stmt  # type: ignore[assignment]
    init = model.methods.get("__init__")
    assigns: List[Tuple[ast.stmt, ast.AST, Optional[ast.AST]]] = []
    if init is not None:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                assigns.append((node, node.targets[0], node.value))
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                assigns.append((node, node.target, node.value))
    assigns.sort(key=lambda t: t[0].lineno)
    # Pass 1: lock attributes (in source order, so Condition(self._x)
    # can resolve the alias of an earlier lock).
    for stmt, target, value in assigns:
        attr = _self_attr(target)
        if attr is None or not isinstance(value, ast.Call):
            continue
        ctor = _lock_ctor(value)
        if ctor is None:
            continue
        kind, lock_arg = ctor
        root = attr
        if kind == "condition" and lock_arg is not None:
            wrapped = _self_attr(lock_arg)
            if wrapped is not None and wrapped in model.locks:
                root = model.locks[wrapped].root
        model.locks[attr] = LockInfo(attr=attr, root=root, kind=kind,
                                     lineno=stmt.lineno)
    # Pass 2: guarded-by annotations on field assignments — scanned
    # across *every* method, not just __init__, so fields first bound
    # in a reset/clear helper can still declare their lock.
    annotated: List[Tuple[ast.stmt, ast.AST, Optional[ast.AST]]] = \
        list(assigns)
    for name, fn in model.methods.items():
        if name == "__init__":
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                annotated.append((node, node.targets[0], node.value))
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                annotated.append((node, node.target, node.value))
    for stmt, target, value in annotated:
        attr = _self_attr(target)
        if attr is None or attr in model.locks:
            continue
        end = getattr(stmt, "end_lineno", None) or stmt.lineno
        for line in range(stmt.lineno, end + 1):
            lock_name = guard_lines.get(line)
            if lock_name is None:
                continue
            root = model.root_of(lock_name)
            if root is None:
                model.guard_errors.append((line, lock_name))
            else:
                model.guarded[attr] = root
            break
    return model


# ---------------------------------------------------------------------------
# Per-method symbolic walk
# ---------------------------------------------------------------------------

Held = Tuple[str, ...]


@dataclass
class MethodWalk:
    """Everything one method does that the rules care about."""

    name: str
    #: (held-before, acquired-root, node)
    acquisitions: List[Tuple[Held, str, ast.AST]] = \
        field(default_factory=list)
    #: (callee, held, node) for ``self.callee(...)``
    self_calls: List[Tuple[str, Held, ast.AST]] = \
        field(default_factory=list)
    #: (description, held, exempt-root, node)
    blocking: List[Tuple[str, Held, Optional[str], ast.AST]] = \
        field(default_factory=list)
    #: (cond-root, held, inside-while, node) for bare ``wait()``
    waits: List[Tuple[str, Held, bool, ast.AST]] = \
        field(default_factory=list)
    #: (cond-root, held, node)
    notifies: List[Tuple[str, Held, ast.AST]] = \
        field(default_factory=list)
    #: (field, held, node)
    writes: List[Tuple[str, Held, ast.AST]] = field(default_factory=list)


class _MethodWalker:
    """Walks one method body tracking the held-lock set."""

    def __init__(self, model: ClassModel, fn: ast.FunctionDef,
                 entry_held: FrozenSet[str]) -> None:
        self.model = model
        self.fn = fn
        self.out = MethodWalk(name=fn.name)
        self._entry = tuple(sorted(entry_held))

    def run(self) -> MethodWalk:
        self._stmts(self.fn.body, self._entry, in_while=False)
        return self.out

    # -- statements --------------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt], held: Held,
               in_while: bool) -> None:
        for stmt in body:
            self._stmt(stmt, held, in_while)

    def _stmt(self, stmt: ast.stmt, held: Held, in_while: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly on another thread:
            # analyze it as a fresh scope holding nothing.
            self._stmts(stmt.body, (), in_while=False)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                self._expr(item.context_expr, inner, in_while)
                attr = _self_attr(item.context_expr)
                root = self.model.root_of(attr) if attr else None
                if root is not None:
                    self.out.acquisitions.append(
                        (inner, root, item.context_expr))
                    if root not in inner:
                        inner = inner + (root,)
            self._stmts(stmt.body, inner, in_while)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, held, in_while)
            self._stmts(stmt.body, held, in_while)
            self._stmts(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, held, True)
            self._stmts(stmt.body, held, True)
            self._stmts(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held, in_while)
            self._stmts(stmt.body, held, in_while)
            self._stmts(stmt.orelse, held, in_while)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, held, in_while)
            for handler in stmt.handlers:
                self._stmts(handler.body, held, in_while)
            self._stmts(stmt.orelse, held, in_while)
            self._stmts(stmt.finalbody, held, in_while)
            return
        match_cases = getattr(stmt, "cases", None)
        if match_cases is not None:  # ast.Match (3.10+)
            self._expr(stmt.subject, held, in_while)  # type: ignore
            for case in match_cases:
                self._stmts(case.body, held, in_while)
            return
        # Simple statement: scan calls, then writes.
        self._expr(stmt, held, in_while)
        self._writes(stmt, held)

    # -- expressions / calls -----------------------------------------------

    def _expr(self, node: ast.AST, held: Held, in_while: bool) -> None:
        stack: List[ast.AST] = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._stmts(n.body, (), in_while=False)
                continue
            if isinstance(n, ast.Lambda):
                self._expr(n.body, (), in_while=False)
                continue
            if isinstance(n, ast.Call):
                self._call(n, held, in_while)
            stack.extend(ast.iter_child_nodes(n))

    def _call(self, call: ast.Call, held: Held, in_while: bool) -> None:
        name = dotted_name(call.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "self" and len(parts) == 3:
            attr, meth = parts[1], parts[2]
            root = self.model.root_of(attr)
            if root is not None:
                self._lock_method(call, attr, root, meth, held, in_while)
                return
            if attr in self.model.guarded and meth in _MUTATORS:
                self.out.writes.append((attr, held, call))
                return
        if parts[0] == "self" and len(parts) == 2:
            self.out.self_calls.append((parts[1], held, call))
            return
        if name == "setattr" and call.args:
            target = _self_attr(call.args[0])
            if target is not None and target in self.model.guarded:
                self.out.writes.append((target, held, call))
        if name in _ARG_MUTATORS and call.args:
            target = _outer_self_field(call.args[0])
            if target is not None and target in self.model.guarded:
                self.out.writes.append((target, held, call))
        desc = _blocking_desc(name, parts)
        if desc is not None and held:
            self.out.blocking.append((desc, held, None, call))

    def _lock_method(self, call: ast.Call, attr: str, root: str,
                     meth: str, held: Held, in_while: bool) -> None:
        if meth in ("wait", "wait_for"):
            if meth == "wait":
                self.out.waits.append((root, held, in_while, call))
            self.out.blocking.append(
                (f"self.{attr}.{meth}()", held, root, call))
        elif meth in ("notify", "notify_all"):
            self.out.notifies.append((root, held, call))
        elif meth == "acquire":
            self.out.acquisitions.append((held, root, call))

    # -- writes ------------------------------------------------------------

    def _writes(self, stmt: ast.stmt, held: Held) -> None:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for t in _flatten_targets(target):
                name = _outer_self_field(t)
                if name is not None and name in self.model.guarded:
                    self.out.writes.append((name, held, t))


def _flatten_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


def _outer_self_field(node: ast.AST) -> Optional[str]:
    """``self.F``, ``self.F.g``, ``self.F[k]`` … → ``F``."""
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    last = None
    while isinstance(node, ast.Attribute):
        last = node.attr
        node = node.value
        while isinstance(node, ast.Subscript):
            node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return last
    return None


def _blocking_desc(name: str, parts: List[str]) -> Optional[str]:
    tail = parts[-1]
    receiver = ".".join(parts[:-1])
    rlow = receiver.lower()
    if name == "time.sleep":
        return "time.sleep()"
    if name == "open":
        return "open()"
    if tail in _PATH_IO and receiver:
        return f"file I/O .{tail}()"
    if tail in ("save", "try_load", "delete") and "disk" in rlow:
        return f"disk-tier I/O .{tail}()"
    if tail in _QUEUE_OPS and "queue" in rlow:
        return f"queue op .{tail}()"
    if tail == "join" and ("thread" in rlow or "worker" in rlow
                           or receiver == "t"):
        return "thread join"
    if tail == "result" and "ticket" in rlow:
        return "ticket result() wait"
    if name in _SOLVER_CALLS or (receiver and tail in _SOLVER_METHODS):
        return f"solver invocation {tail}()"
    return None


# ---------------------------------------------------------------------------
# Class fixpoint + module analysis
# ---------------------------------------------------------------------------

def _fixpoint_walks(model: ClassModel) -> Dict[str, MethodWalk]:
    """Walk every method, iterating entry-held sets to a fixpoint.

    A private helper's entry-held set is the *intersection* of the
    held sets at all of its internal call sites — the locks provably
    held no matter who called it.  Public (non-underscore) methods and
    dunders always start with nothing held: they are the external API.
    """
    entry: Dict[str, FrozenSet[str]] = {
        m: frozenset() for m in model.methods}
    walks: Dict[str, MethodWalk] = {}
    for _ in range(5):
        walks = {
            name: _MethodWalker(model, fn, entry[name]).run()
            for name, fn in model.methods.items()
        }
        sites: Dict[str, List[Held]] = {}
        for walk in walks.values():
            for callee, held, _node in walk.self_calls:
                if callee in model.methods:
                    sites.setdefault(callee, []).append(held)
        new_entry: Dict[str, FrozenSet[str]] = {}
        for name in model.methods:
            if not name.startswith("_") or name.startswith("__"):
                new_entry[name] = frozenset()
            elif name in sites:
                common = frozenset(sites[name][0])
                for held in sites[name][1:]:
                    common &= frozenset(held)
                new_entry[name] = common
            else:
                new_entry[name] = frozenset()
        if new_entry == entry:
            break
        entry = new_entry
    return walks


def _reachable_locks(model: ClassModel,
                     walks: Dict[str, MethodWalk]) -> Dict[str, Set[str]]:
    """Locks each method may acquire, transitively through self-calls."""
    reach = {name: {root for _, root, _ in walk.acquisitions}
             for name, walk in walks.items()}
    changed = True
    while changed:
        changed = False
        for name, walk in walks.items():
            for callee, _held, _node in walk.self_calls:
                extra = reach.get(callee, set()) - reach[name]
                if extra:
                    reach[name] |= extra
                    changed = True
    return reach


@dataclass
class _Edge:
    src: str
    dst: str
    node: ast.AST
    detail: str


def _finding(ctx: FileContext, rule_id: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(path=ctx.relpath,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0) + 1,
                   rule_id=rule_id, severity=Severity.ERROR,
                   message=message)


def _class_findings(ctx: FileContext, model: ClassModel,
                    walks: Dict[str, MethodWalk]) -> List[Finding]:
    out: List[Finding] = []
    hot = model.hot_roots()
    cname = model.name
    for line, lock_name in model.guard_errors:
        anchor = ast.Module(body=[], type_ignores=[])
        anchor.lineno = line          # type: ignore[attr-defined]
        anchor.col_offset = 0         # type: ignore[attr-defined]
        out.append(_finding(
            ctx, "RPR204", anchor,
            f"guarded-by names {lock_name!r}, which is not a lock "
            f"attribute of {cname} (no threading.Lock/RLock/Condition "
            f"assigned to self.{lock_name} in __init__)"))
    for name, walk in walks.items():
        in_init = name == "__init__"
        for held, root, node in walk.acquisitions:
            if root in held and not model.reentrant(root):
                out.append(_finding(
                    ctx, "RPR201", node,
                    f"{cname}.{root} acquired while already held — "
                    f"self-deadlock on a non-reentrant Lock"))
        for desc, held, exempt, node in walk.blocking:
            others = [h for h in held if h in hot and h != exempt]
            if others:
                locks = ", ".join(f"{cname}.{h}" for h in others)
                out.append(_finding(
                    ctx, "RPR202", node,
                    f"blocking {desc} while holding {locks}; threads "
                    f"waiting on that lock stall for the full call — "
                    f"move the blocking work outside the guarded "
                    f"region"))
        for root, held, in_while, node in walk.waits:
            info = next((i for i in model.locks.values()
                         if i.root == root and i.kind == "condition"),
                        None)
            if info is not None and not in_while:
                out.append(_finding(
                    ctx, "RPR203", node,
                    f"Condition.wait() outside a while-predicate "
                    f"loop; spurious wake-ups and stolen wake-ups "
                    f"make this wrong — use `while not pred: "
                    f"wait()` or wait_for(pred)"))
        for root, held, node in walk.notifies:
            if root not in held:
                out.append(_finding(
                    ctx, "RPR205", node,
                    f"Condition.notify called without holding "
                    f"{cname}.{root}; the wake-up can race the "
                    f"waiter's predicate check and be lost"))
        if not in_init:
            for fname, held, node in walk.writes:
                root = model.guarded[fname]
                if root not in held:
                    out.append(_finding(
                        ctx, "RPR204", node,
                        f"write to self.{fname} (guarded-by "
                        f"{cname}.{root}) outside its lock; wrap the "
                        f"mutation in `with self.{root}:`"))
    return out


def _class_edges(model: ClassModel,
                 walks: Dict[str, MethodWalk]) -> List[_Edge]:
    reach = _reachable_locks(model, walks)
    edges: List[_Edge] = []
    cname = model.name
    for name, walk in walks.items():
        for held, root, node in walk.acquisitions:
            for h in held:
                if h != root:
                    edges.append(_Edge(
                        f"{cname}.{h}", f"{cname}.{root}", node,
                        f"{cname}.{root} acquired while holding "
                        f"{cname}.{h} (in {name})"))
        for callee, held, node in walk.self_calls:
            if callee not in reach:
                continue
            for h in held:
                for r in reach[callee]:
                    if r == h:
                        if not model.reentrant(r):
                            edges.append(_Edge(
                                f"{cname}.{h}", f"{cname}.{r}", node,
                                f"self.{callee}() re-acquires held "
                                f"non-reentrant {cname}.{r}"))
                        continue
                    edges.append(_Edge(
                        f"{cname}.{h}", f"{cname}.{r}", node,
                        f"self.{callee}() may acquire {cname}.{r} "
                        f"while {cname}.{h} is held (in {name})"))
    return edges


def _cycle_findings(ctx: FileContext,
                    edges: List[_Edge]) -> List[Finding]:
    adj: Dict[str, Set[str]] = {}
    for e in edges:
        adj.setdefault(e.src, set()).add(e.dst)
        adj.setdefault(e.dst, set())
    # Nodes reachable from themselves = nodes on some cycle.
    out: List[Finding] = []
    cyclic_edges: List[_Edge] = []
    for e in edges:
        if e.src == e.dst:
            # A call chain that re-acquires a held non-reentrant Lock
            # deadlocks against itself — no second thread required.
            out.append(_finding(
                ctx, "RPR201", e.node,
                f"{e.detail} — self-deadlock, the inner acquire "
                f"blocks forever"))
            continue
        # e is on a cycle iff src is reachable from dst.
        seen: Set[str] = set()
        stack = [e.dst]
        on_cycle = False
        while stack:
            n = stack.pop()
            if n == e.src:
                on_cycle = True
                break
            if n in seen:
                continue
            seen.add(n)
            stack.extend(adj.get(n, ()))
        if on_cycle:
            cyclic_edges.append(e)
    for e in cyclic_edges:
        out.append(_finding(
            ctx, "RPR201", e.node,
            f"inconsistent lock order: {e.detail}, but the opposite "
            f"order {e.dst} → {e.src} also occurs in this module — "
            f"two threads taking these paths concurrently deadlock; "
            f"pick one global order"))
    return out


def _module_findings(ctx: FileContext) -> List[Finding]:
    cached = getattr(ctx, "_rpr2_findings", None)
    if cached is not None:
        return cached
    findings: List[Finding] = []
    edges: List[_Edge] = []
    guard_lines = _guard_lines(ctx.source)
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = build_class_model(ctx, node, guard_lines)
        if not model.locks:
            continue
        walks = _fixpoint_walks(model)
        findings.extend(_class_findings(ctx, model, walks))
        edges.extend(_class_edges(model, walks))
    findings.extend(_cycle_findings(ctx, edges))
    ctx._rpr2_findings = findings  # type: ignore[attr-defined]
    return findings


# ---------------------------------------------------------------------------
# Rule shells (one per id, all driven by the shared analysis)
# ---------------------------------------------------------------------------

class _LockDisciplineRule(Rule):
    """Base: filters the shared module analysis down to one rule id."""

    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None or ctx.is_test:
            return
        for finding in _module_findings(ctx):
            if finding.rule_id == self.id:
                yield finding


class LockOrderRule(_LockDisciplineRule):
    """RPR201: the module's static lock-order graph must be acyclic."""

    id = "RPR201"
    description = ("inconsistent lock acquisition order (cycle in the "
                   "module's lock-order graph) or re-acquired "
                   "non-reentrant Lock")


class BlockingUnderLockRule(_LockDisciplineRule):
    """RPR202: no blocking calls while holding a hot lock."""

    id = "RPR202"
    description = ("blocking call (solver, Condition.wait, file/disk "
                   "I/O, queue op, join) while holding another hot "
                   "lock")


class WaitPredicateRule(_LockDisciplineRule):
    """RPR203: Condition.wait() must sit in a while-predicate loop."""

    id = "RPR203"
    description = ("Condition.wait() not wrapped in a while-predicate "
                   "loop (use wait_for or `while not pred: wait()`)")


class GuardedFieldRule(_LockDisciplineRule):
    """RPR204: guarded-by fields are only written under their lock."""

    id = "RPR204"
    description = ("field annotated `# guarded-by: <lock>` written "
                   "outside a `with self.<lock>:` region")


class NotifyWithoutLockRule(_LockDisciplineRule):
    """RPR205: notify/notify_all require the condition's lock."""

    id = "RPR205"
    description = ("Condition.notify/notify_all called without the "
                   "condition's lock held")
