"""``python -m repro.lint`` — run the project linter.

Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import all_rules, lint_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Project-aware static analysis for the repro codebase "
                    "(rules RPR001-RPR005, the RPR101 simulated-MPI "
                    "collective-ordering verifier and the RPR201-RPR205 "
                    "lock-discipline rules).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--select", type=str, default=None,
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", type=str, default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule finding count")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _split(csv: Optional[str]) -> Optional[List[str]]:
    if not csv:
        return None
    return [s.strip() for s in csv.split(",") if s.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.description}")
        return 0

    known = {rule.id for rule in all_rules()}
    for flag in ("select", "ignore"):
        unknown = [r for r in _split(getattr(args, flag)) or []
                   if r not in known]
        if unknown:
            print(f"repro.lint: unknown rule id(s) in --{flag}: "
                  f"{', '.join(unknown)} (see --list-rules)",
                  file=sys.stderr)
            return 2

    try:
        findings = lint_paths(args.paths,
                              select=_split(args.select),
                              ignore=_split(args.ignore),
                              root=Path.cwd())
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in findings],
            "count": len(findings),
        }, indent=2))
    elif args.format == "sarif":
        from repro.lint.sarif import findings_to_sarif

        print(findings_to_sarif(findings))
    else:
        for f in findings:
            print(f.render())
        if args.statistics and findings:
            print()
            for rule_id, n in sorted(Counter(
                    f.rule_id for f in findings).items()):
                print(f"{rule_id:8s} {n}")
        n = len(findings)
        print(f"repro.lint: {n} finding{'s' if n != 1 else ''}"
              if n else "repro.lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
