"""File collection and rule execution for ``repro.lint``."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.collectives import CollectiveOrderRule
from repro.lint.concurrency import (
    BlockingUnderLockRule,
    GuardedFieldRule,
    LockOrderRule,
    NotifyWithoutLockRule,
    WaitPredicateRule,
)
from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Severity,
)
from repro.lint.rules import (
    DtypeDisciplineRule,
    DunderAllRule,
    FaultBoundaryRule,
    MonotonicClockRule,
    MutableDefaultRule,
    OverbroadExceptRule,
    RedactionDisciplineRule,
    ServeQueueDisciplineRule,
    TypedDiagnosticRule,
    UnseededRandomRule,
)

__all__ = ["DEFAULT_RULES", "all_rules", "collect_files", "lint_paths",
           "lint_source"]

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
              ".eggs", "node_modules"}


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, id-sorted."""
    rules: List[Rule] = [
        UnseededRandomRule(),
        MutableDefaultRule(),
        OverbroadExceptRule(),
        DtypeDisciplineRule(),
        DunderAllRule(),
        FaultBoundaryRule(),
        TypedDiagnosticRule(),
        ServeQueueDisciplineRule(),
        MonotonicClockRule(),
        RedactionDisciplineRule(),
        CollectiveOrderRule(),
        LockOrderRule(),
        BlockingUnderLockRule(),
        WaitPredicateRule(),
        GuardedFieldRule(),
        NotifyWithoutLockRule(),
    ]
    rules.sort(key=lambda r: r.id)
    return rules


DEFAULT_RULES = tuple(r.id for r in all_rules())


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    seen[f.resolve()] = f
        elif p.suffix == ".py" and p.exists():
            seen[p.resolve()] = p
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(seen.values())


def _select(rules: Iterable[Rule],
            select: Optional[Sequence[str]],
            ignore: Optional[Sequence[str]]) -> List[Rule]:
    chosen = list(rules)
    if select:
        wanted = {s.upper() for s in select}
        chosen = [r for r in chosen if r.id in wanted]
    if ignore:
        dropped = {s.upper() for s in ignore}
        chosen = [r for r in chosen if r.id not in dropped]
    return chosen


def _parse_error_finding(ctx: FileContext) -> Finding:
    try:
        ast.parse(ctx.source, filename=str(ctx.path))
        raise AssertionError("unreachable: tree was None but source parses")
    except SyntaxError as exc:
        return Finding(path=ctx.relpath, line=exc.lineno or 1,
                       col=(exc.offset or 0) + 1, rule_id="RPR999",
                       severity=Severity.ERROR,
                       message=f"syntax error: {exc.msg}")


def lint_contexts(ctxs: Sequence[FileContext],
                  rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all) over parsed contexts."""
    rules = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for ctx in ctxs:
        if ctx.tree is None:
            findings.append(_parse_error_finding(ctx))
            continue
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            findings.extend(f for f in rule.check(ctx)
                            if not ctx.suppressed(f))
    by_rel = {ctx.relpath: ctx for ctx in ctxs}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(
                f for f in rule.check_project(ctxs)
                if f.path not in by_rel or not by_rel[f.path].suppressed(f))
    return sorted(findings)


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               root: Optional[Path] = None) -> List[Finding]:
    """Lint files/directories; the public API behind the CLI."""
    root = root or Path.cwd()
    files = collect_files(paths)
    ctxs = [FileContext.load(f, root=root) for f in files]
    return lint_contexts(ctxs, _select(all_rules(), select, ignore))


def lint_source(source: str,
                filename: str = "<string>",
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint an in-memory source string (test fixtures, editor buffers)."""
    from repro.lint.framework import parse_suppressions

    ctx = FileContext(path=Path(filename), relpath=filename,
                      source=source, tree=None,
                      suppressions=parse_suppressions(source))
    try:
        ctx.tree = ast.parse(source, filename=filename)
    except SyntaxError:
        pass
    return lint_contexts([ctx], _select(all_rules(), select, None))
