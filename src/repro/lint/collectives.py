"""RPR101 — simulated-MPI collective-ordering verifier.

:class:`repro.cluster.simmpi.SimCluster` runs one shared
``_CollectiveState`` barrier: **every rank must issue the exact same
sequence of collectives** (``allreduce``/``allgather``/``reduce``/
``barrier``/``bcast``/``gather``/``scatter``) or the run corrupts data
and eventually dies behind the 120 s barrier timeout.  The Fig. 4
pipeline (``Allreduce → Allgather → Reduce``) is the canonical example.

This rule walks every *rank function* — any function whose first
parameter is named ``comm`` (the convention used by
``SimCluster.run(fn)`` throughout the repo) — and symbolically extracts
the collective sequence of each control-flow branch:

* an ``if``/``else`` whose test depends on ``comm.rank`` (directly or
  through a simple alias like ``r = comm.rank``) must issue the *same*
  collective sequence on both branches;
* a branch that returns/raises/continues while the other proceeds is
  flagged if any collective follows, because the exiting rank will
  never reach it;
* a loop whose trip count depends on ``comm.rank`` must not contain
  collectives at all.

Rank-*independent* conditionals are assumed data-uniform (the inputs
to a rank function are replicated or derived from collectives), which
matches how every driver in :mod:`repro.parallel` is written.  The
analysis is intraprocedural: helpers that take ``comm`` themselves are
verified separately; collectives hidden behind helper calls that take
``comm`` as a *non-first* argument are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.framework import FileContext, Finding, Rule, Severity

__all__ = ["CollectiveOrderRule", "COLLECTIVE_METHODS", "extract_events"]

#: SimComm methods that synchronise all ranks (see simmpi.SimComm).
COLLECTIVE_METHODS = frozenset({
    "allreduce", "allgather", "reduce", "barrier", "bcast",
    "gather", "scatter",
})

#: Event descriptor: a collective method name, or ("loop", inner-events).
Event = Tuple[object, ...]


#: How a suite exits: falls through, leaves the loop, leaves the function.
_FALLS, _EXITS_LOOP, _EXITS_FN = 0, 1, 2


class _Pending:
    """A rank-guarded branch that exited early — fatal only if a
    collective follows it (within the exit's scope)."""

    def __init__(self, node: ast.stmt, why: str, loop_scoped: bool) -> None:
        self.node = node
        self.why = why
        self.loop_scoped = loop_scoped


class _RankFnAnalyzer:
    """Symbolic walk of one rank function's collective schedule."""

    def __init__(self, rule: "CollectiveOrderRule", ctx: FileContext,
                 comm_name: str) -> None:
        self.rule = rule
        self.ctx = ctx
        self.comm = comm_name
        self.rank_aliases: Set[str] = set()
        self.findings: List[Finding] = []
        self._pending: List[_Pending] = []
        self._loop_depth = 0

    # -- rank dependence -------------------------------------------------

    def _mentions_rank(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        for n in ast.walk(node):
            if (isinstance(n, ast.Attribute) and n.attr == "rank"
                    and isinstance(n.value, ast.Name)
                    and n.value.id == self.comm):
                return True
            if isinstance(n, ast.Name) and n.id in self.rank_aliases:
                return True
        return False

    def _track_alias(self, stmt: ast.Assign) -> None:
        if self._mentions_rank(stmt.value):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    self.rank_aliases.add(tgt.id)

    # -- event extraction ------------------------------------------------

    def _calls_in(self, node: ast.AST) -> List[ast.Call]:
        calls = [
            n for n in ast.walk(node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in COLLECTIVE_METHODS
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id == self.comm
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _emit(self, events: List[Event], name: str, node: ast.AST) -> None:
        """Record a collective; it dooms any pending early-exit branch."""
        events.append((name,))
        for p in self._pending:
            self.findings.append(self.rule.finding(
                self.ctx, p.node,
                f"{p.why}, but comm.{name}() at line "
                f"{getattr(node, 'lineno', '?')} still follows: the "
                f"exited rank never joins the collective and simmpi "
                f"deadlocks at its barrier"))
        self._pending.clear()

    # -- block walker ----------------------------------------------------

    def block(self, stmts: List[ast.stmt]) -> Tuple[Tuple[Event, ...], int]:
        """Return (collective events, exit kind) for a suite."""
        events: List[Event] = []
        terminates = _FALLS
        for stmt in stmts:
            if terminates:
                break  # unreachable statements cannot deadlock
            if isinstance(stmt, (ast.Return, ast.Raise)):
                for call in self._calls_in(stmt):
                    self._emit(events, call.func.attr, call)  # type: ignore[union-attr]
                terminates = _EXITS_FN
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                terminates = _EXITS_LOOP
            elif isinstance(stmt, ast.If):
                terminates = self._handle_if(stmt, events)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._handle_loop(stmt, events)
            elif isinstance(stmt, ast.Try):
                ev, term = self.block(stmt.body + stmt.orelse
                                      + stmt.finalbody)
                events.extend(ev)
                terminates = term
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                ev, term = self.block(stmt.body)
                events.extend(ev)
                terminates = term
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested defs are analyzed on their own merits
            else:
                if isinstance(stmt, ast.Assign):
                    self._track_alias(stmt)
                for call in self._calls_in(stmt):
                    self._emit(events, call.func.attr, call)  # type: ignore[union-attr]
        return tuple(events), terminates

    def _handle_if(self, stmt: ast.If, events: List[Event]) -> int:
        rank_dep = self._mentions_rank(stmt.test)
        # Collectives evaluated *in the test itself* run on every rank.
        for call in self._calls_in(stmt.test):
            self._emit(events, call.func.attr, call)  # type: ignore[union-attr]
        b_ev, b_term = self.block(stmt.body)
        e_ev, e_term = self.block(stmt.orelse)
        if rank_dep:
            if b_ev != e_ev:
                self.findings.append(self.rule.finding(
                    self.ctx, stmt,
                    f"rank-dependent branches issue different collective "
                    f"sequences ({self._fmt(b_ev)} vs {self._fmt(e_ev)}); "
                    f"every rank must run the same collective schedule "
                    f"or simmpi deadlocks"))
            elif b_term != e_term:
                # One branch exits, the other proceeds: fatal only if a
                # collective still lies ahead of the exiting rank.
                kinds = {b_term, e_term} - {_FALLS}
                self._pending.append(_Pending(
                    stmt,
                    "a rank-dependent branch exits early here",
                    loop_scoped=kinds == {_EXITS_LOOP}))
        # Either branch's events represent the common schedule when they
        # agree; when they diverge we already reported, so pick the
        # longer one to keep scanning for follow-on problems.
        events.extend(b_ev if len(b_ev) >= len(e_ev) else e_ev)
        if b_term and e_term:
            return max(b_term, e_term)
        return _FALLS

    def _handle_loop(self, stmt: ast.stmt, events: List[Event]) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head: ast.AST = stmt.iter
        else:
            head = stmt.test  # type: ignore[union-attr]
        rank_dep = self._mentions_rank(head)
        for call in self._calls_in(head):
            self._emit(events, call.func.attr, call)  # type: ignore[union-attr]
        mark = len(self._pending)
        self._loop_depth += 1
        body_ev, _ = self.block(stmt.body + stmt.orelse)  # type: ignore[union-attr]
        self._loop_depth -= 1
        # break/continue early-exits only skip the rest of *this* loop
        # body; once the loop is done they are harmless unless a
        # collective inside the body already flushed them.
        self._pending[mark:] = [p for p in self._pending[mark:]
                                if not p.loop_scoped]
        if body_ev:
            if rank_dep:
                self.findings.append(self.rule.finding(
                    self.ctx, stmt,
                    f"collective(s) {self._fmt(body_ev)} inside a loop "
                    f"whose trip count depends on comm.rank; ranks would "
                    f"issue different numbers of collectives and "
                    f"simmpi deadlocks"))
            events.append(("loop", body_ev))

    @staticmethod
    def _fmt(events: Tuple[Event, ...]) -> str:
        if not events:
            return "[]"

        def one(ev: Event) -> str:
            if ev[0] == "loop":
                inner = ", ".join(one(e) for e in ev[1])  # type: ignore[union-attr]
                return f"loop[{inner}]"
            return str(ev[0])

        return "[" + ", ".join(one(e) for e in events) + "]"


class CollectiveOrderRule(Rule):
    """RPR101: rank functions keep a rank-invariant collective schedule."""

    id = "RPR101"
    description = ("rank-dependent collective sequence would deadlock "
                   "the simulated MPI runtime")
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            comm = self._comm_param(node)
            if comm is None:
                continue
            analyzer = _RankFnAnalyzer(self, ctx, comm)
            analyzer.block(node.body)
            yield from analyzer.findings

    @staticmethod
    def _comm_param(fn: ast.AST) -> Optional[str]:
        """First parameter named ``comm`` (skipping self/cls)."""
        args = fn.args.posonlyargs + fn.args.args  # type: ignore[union-attr]
        names = [a.arg for a in args]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        if names and names[0] == "comm":
            return "comm"
        return None


def extract_events(source: str, function: str = "rankfn"
                   ) -> Tuple[Event, ...]:
    """Testing/debugging helper: the collective schedule of ``function``
    inside ``source`` (findings discarded)."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == function:
            ctx = FileContext(path=__import__("pathlib").Path("<mem>"),
                              relpath="<mem>", source=source, tree=tree)
            analyzer = _RankFnAnalyzer(CollectiveOrderRule(), ctx, "comm")
            events, _ = analyzer.block(node.body)
            return events
    raise ValueError(f"no function {function!r} in source")
