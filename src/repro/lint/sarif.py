"""SARIF 2.1.0 export for ``repro.lint`` findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ is the
interchange format GitHub code scanning ingests; emitting it lets the
CI lock-discipline job surface RPR findings as annotations on the PR
diff instead of a log line.  The document is self-contained: the
``tool.driver.rules`` table carries every registered rule (id + short
description + a ``helpUri`` anchored into ``docs/STATIC_ANALYSIS.md``)
so viewers can render help text, and each result points back into it
via ``ruleIndex``.

Only structures code-scanning actually reads are emitted — one run,
one artifact location per finding, ``level`` mapped from
:class:`~repro.lint.framework.Severity` (``error``/``warning``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.framework import Finding, Severity
from repro.lint.engine import all_rules

__all__ = ["findings_to_sarif", "sarif_document"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

#: Repo-relative rule reference; every rule row in the doc carries an
#: ``<a id="rprNNN">`` anchor, so ``helpUri`` deep-links straight to
#: the offending rule's rationale table row.
_RULE_DOC = "docs/STATIC_ANALYSIS.md"


def _help_uri(rule_id: str) -> str:
    return f"{_RULE_DOC}#{rule_id.lower()}"


def _level(severity: Severity) -> str:
    return "error" if severity >= Severity.ERROR else "warning"


def sarif_document(findings: Sequence[Finding]) -> Dict[str, object]:
    """Build the SARIF run as a plain dict (one run, one tool)."""
    rules = all_rules()
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    rule_defs: List[Dict[str, object]] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
            "helpUri": _help_uri(rule.id),
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        for rule in rules
    ]
    results: List[Dict[str, object]] = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.rule_id,
            "level": _level(f.severity),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col,
                    },
                },
            }],
        }
        # RPR999 (syntax error) has no registered rule object.
        if f.rule_id in rule_index:
            result["ruleIndex"] = rule_index[f.rule_id]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "informationUri": _RULE_DOC,
                    "rules": rule_defs,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def findings_to_sarif(findings: Sequence[Finding],
                      indent: int = 2) -> str:
    """Render findings as a SARIF 2.1.0 JSON string."""
    return json.dumps(sarif_document(findings), indent=indent,
                      sort_keys=False)
