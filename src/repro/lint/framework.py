"""AST-walking rule framework for ``repro.lint``.

The framework is deliberately small: a :class:`Rule` inspects one
parsed file (:class:`FileContext`) and yields :class:`Finding` records;
a :class:`ProjectRule` sees every file at once for cross-file checks.
The engine (:mod:`repro.lint.engine`) walks the target paths, builds
the contexts, runs the rules and filters suppressed findings.

Suppressions
------------
A finding is suppressed by a trailing comment on the flagged line::

    risky_call()  # lint: ignore[RPR003]
    another()     # lint: ignore[RPR001,RPR004]
    anything()    # lint: ignore

The bracket form silences only the listed rule ids; the bare form
silences every rule on that line.  Suppressions are per-line by design —
a file-wide opt-out would defeat the CI gate.
"""

from __future__ import annotations

import ast
import enum
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "dotted_name",
    "parse_suppressions",
]

#: ``# lint: ignore`` / ``# lint: ignore[RPR001,RPR101]``
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Sentinel rule-id set meaning "every rule is suppressed on this line".
_ALL_RULES = frozenset({"*"})


class Severity(enum.IntEnum):
    """Finding severity; any finding (either level) fails the lint gate."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # noqa: D105 — enum display form
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def render(self) -> str:
        """``path:line:col: RPRxxx error message`` (clickable in most UIs)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.severity} {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → rule ids suppressed there (``{"*"}`` = all).

    Uses the tokenizer so string literals containing ``# lint: ignore``
    are not mistaken for comments; falls back to a line scan when the
    file does not tokenize (the parse error is reported separately).
    """
    out: Dict[int, Set[str]] = {}

    def record(lineno: int, comment: str) -> None:
        m = _SUPPRESS_RE.search(comment)
        if not m:
            return
        rules = m.group("rules")
        if rules is None:
            out[lineno] = set(_ALL_RULES)
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            out.setdefault(lineno, set()).update(ids)

    try:
        for tok in tokenize.generate_tokens(iter(source.splitlines(True)).__next__):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for i, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                record(i, line[line.index("#"):])
    return out


@dataclass
class FileContext:
    """One parsed source file plus the metadata rules key off."""

    path: Path
    relpath: str
    source: str
    tree: Optional[ast.AST]
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Optional[Path] = None) -> "FileContext":
        """Read and parse ``path``; a syntax error leaves ``tree=None``."""
        source = path.read_text(encoding="utf-8")
        try:
            rel = str(path.relative_to(root)) if root else str(path)
        except ValueError:
            rel = str(path)
        try:
            tree: Optional[ast.AST] = ast.parse(source, filename=str(path))
        except SyntaxError:
            tree = None
        return cls(path=path, relpath=rel, source=source, tree=tree,
                   suppressions=parse_suppressions(source))

    @property
    def is_test(self) -> bool:
        """Test modules get a pass from reproducibility rules (RPR001)."""
        parts = Path(self.relpath).parts
        name = self.path.name
        return ("tests" in parts or name.startswith("test_")
                or name == "conftest.py")

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def suppressed(self, finding: Finding) -> bool:
        ids = self.suppressions.get(finding.line)
        if not ids:
            return False
        return "*" in ids or finding.rule_id in ids


class Rule:
    """Base class for per-file rules.

    Subclasses set :attr:`id`, :attr:`description` and
    :attr:`severity`, and implement :meth:`check`.
    """

    id: str = "RPR000"
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover — makes every override a generator

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(path=ctx.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=self.id,
                       severity=self.severity,
                       message=message)


class ProjectRule(Rule):
    """A rule that needs every file at once (cross-file consistency)."""

    def check_project(self, ctxs: Sequence[FileContext]
                      ) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(tree: ast.AST) -> Iterable[ast.Call]:
    """All Call nodes in source order (line, column)."""
    calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls
