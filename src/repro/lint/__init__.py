"""Project-aware static analysis for the repro codebase.

``python -m repro.lint [paths]`` (or ``python -m repro lint``) runs a
small AST-walking rule framework with project-specific rules:

=======  ==========================================================
RPR001   unseeded / global-state RNG outside tests
RPR002   mutable default arguments
RPR003   bare or overbroad ``except`` clauses
RPR004   hot-path array constructors without an explicit ``dtype=``
RPR005   ``__all__`` consistency in package ``__init__.py`` files
RPR006   infrastructure exceptions escaping the fault boundary
RPR007   bare ValueError/RuntimeError in core/molecules (use
         :mod:`repro.guard.errors`)
RPR101   simulated-MPI collective-ordering verifier (deadlock guard)
=======  ==========================================================

Suppress a finding with a trailing ``# lint: ignore[RPR003]`` comment.
See ``docs/STATIC_ANALYSIS.md`` for the full rule reference.
"""

from repro.lint.collectives import CollectiveOrderRule, extract_events
from repro.lint.engine import (
    all_rules,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.lint.framework import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Severity,
)
from repro.lint.rules import (
    DtypeDisciplineRule,
    DunderAllRule,
    MutableDefaultRule,
    OverbroadExceptRule,
    UnseededRandomRule,
)

__all__ = [
    "CollectiveOrderRule",
    "DtypeDisciplineRule",
    "DunderAllRule",
    "FileContext",
    "Finding",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "ProjectRule",
    "Rule",
    "Severity",
    "UnseededRandomRule",
    "all_rules",
    "collect_files",
    "extract_events",
    "lint_paths",
    "lint_source",
]
