"""Consistent-hash ring with virtual nodes.

The router hashes a request's *content* fingerprint
(:meth:`repro.serve.request.SolveRequest.route_key`) onto the ring, so
repeats of one molecule land on the same shard and hit its memory-tier
cache.  Hashing is SHA-256 over ``"{shard}#{vnode}"`` / the key bytes
— a pure function of the shard ids, so every router instance built
from the same ids routes identically (the same-seed ⇒ same-assignment
determinism the chaos matrix asserts) and adding or removing one shard
moves only the minimal key range (the classic consistent-hashing
property, tested in ``tests/fleet/test_ring.py``).

The ring itself is an unlocked pure data structure; the router guards
it with its own lock.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard — enough that a 4-shard ring is balanced to
#: a few percent, cheap enough that rebuilds are free.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """64-bit ring position of a label (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big")


class HashRing:
    """Sorted ring of ``(point, shard)`` virtual nodes."""

    def __init__(self, shards: Iterable[int] = (),
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._vnodes: Dict[int, List[int]] = {}
        self._points: List[Tuple[int, int]] = []
        for s in shards:
            self.add(int(s))

    # -- membership --------------------------------------------------------

    @property
    def shards(self) -> Tuple[int, ...]:
        """Live shard ids, sorted."""
        return tuple(sorted(self._vnodes))

    def __len__(self) -> int:
        return len(self._vnodes)

    def __contains__(self, shard: int) -> bool:
        return shard in self._vnodes

    def add(self, shard: int) -> None:
        if shard in self._vnodes:
            raise ValueError(f"shard {shard} is already on the ring")
        pts = [_point(f"{shard}#{v}") for v in range(self.replicas)]
        self._vnodes[shard] = pts
        for p in pts:
            bisect.insort(self._points, (p, shard))

    def remove(self, shard: int) -> None:
        pts = set(self._vnodes.pop(shard))
        self._points = [(p, s) for p, s in self._points
                        if s != shard or p not in pts]

    # -- routing -----------------------------------------------------------

    def route(self, key: str, excluding: Iterable[int] = ()) -> int:
        """Owner of ``key``: first vnode clockwise of the key's point.

        ``excluding`` skips shards (dead, partitioned, breaker-open) by
        walking further clockwise — the consistent *successor* a
        failed-over request re-routes to.  Raises ``KeyError`` when no
        eligible shard remains.
        """
        skip = set(excluding)
        eligible = [s for s in self._vnodes if s not in skip]
        if not eligible:
            raise KeyError("no eligible shard on the ring")
        if len(eligible) == 1:
            return eligible[0]
        p = _point(key)
        i = bisect.bisect_right(self._points, (p, -1))
        n = len(self._points)
        for step in range(n):
            _, s = self._points[(i + step) % n]
            if s not in skip:
                return s
        raise KeyError("no eligible shard on the ring")
