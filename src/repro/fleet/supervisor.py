"""Heartbeat supervision of the fleet's shards.

The :class:`FleetSupervisor` owns nothing but a probe loop: each
:meth:`probe` sweep pings every live shard and

* a shard whose ping has failed ``max_misses`` consecutive sweeps is
  declared **dead** → :meth:`ShardRouter.fail_over` (ring removal +
  exactly-once re-routing of its outstanding work);
* a live shard reporting ``stalled()`` (an alarm-grade injected stall
  whose ticket never resolved) is declared **degraded** →
  :meth:`ShardRouter.quarantine` (same re-routing; the shard stays
  up).

The clock is injectable and only ever *monotonic* — it stamps
heartbeat ages for :meth:`status`, while the dead/degraded decisions
themselves are pure functions of probe outcomes (miss counts), so
scripted tests and the chaos matrix drive supervision by calling
:meth:`probe` directly and get identical decisions every run.  An
optional background thread (:meth:`start`) probes on a condition-wait
cadence for live deployments.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

import repro.obs as obs

__all__ = ["FleetSupervisor"]


class FleetSupervisor:
    """Probe-driven health state machine over a
    :class:`~repro.fleet.router.ShardRouter`."""

    def __init__(self, router, *,
                 clock: Callable[[], float] = time.monotonic,
                 probe_interval_s: float = 0.05,
                 max_misses: int = 2) -> None:
        if max_misses < 1:
            raise ValueError("max_misses must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        self.router = router
        self.max_misses = int(max_misses)
        self.probe_interval_s = float(probe_interval_s)
        self._clock = clock
        self._lock = obs.named_lock("fleet.supervisor._lock")
        self._stop = obs.named_condition("fleet.supervisor._stop",
                                         self._lock)
        self._misses: Dict[int, int] = {}     # guarded-by: _lock
        self._beats: Dict[int, float] = {}    # guarded-by: _lock
        self._probes = 0                      # guarded-by: _lock
        self._closed = False                  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None

    # -- the probe sweep ---------------------------------------------------

    def probe(self) -> Dict[int, str]:
        """One sweep; returns ``{shard_id: "live"|"degraded"|"dead"}``.

        Decisions are pure functions of the shards' ``ping()`` /
        ``stalled()`` answers and the consecutive-miss counters — no
        wall-clock thresholds — so choreographed chaos runs supervise
        identically every time.
        """
        now = self._clock()
        verdicts: Dict[int, str] = {}
        with self._lock:
            self._probes += 1
        live = self.router.live_shards
        for sid in live:
            shard = self.router.shard(sid)
            if shard.ping():
                with self._lock:
                    self._misses[sid] = 0
                    self._beats[sid] = now
                if shard.stalled():
                    verdicts[sid] = "degraded"
                else:
                    verdicts[sid] = "live"
            else:
                with self._lock:
                    self._misses[sid] = self._misses.get(sid, 0) + 1
                    missed = self._misses[sid]
                obs.instant(f"fleet.heartbeat.miss[shard{sid}]",
                            cat="fault", misses=missed)
                verdicts[sid] = ("dead" if missed >= self.max_misses
                                 else "live")
        # Act after the sweep: fail-over mutates the live set.
        for sid, verdict in verdicts.items():
            if verdict == "dead":
                self.router.fail_over(
                    sid, reason=f"{self.max_misses} missed heartbeats")
            elif verdict == "degraded":
                self.router.quarantine(sid, reason="stalled worker")
        return verdicts

    def status(self) -> Dict[int, float]:
        """Heartbeat age per shard (seconds on the injected clock)."""
        now = self._clock()
        with self._lock:
            return {sid: now - beat
                    for sid, beat in sorted(self._beats.items())}

    @property
    def probes(self) -> int:
        with self._lock:
            return self._probes

    # -- background loop ---------------------------------------------------

    def start(self) -> None:
        """Run :meth:`probe` every ``probe_interval_s`` until closed."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="fleet-supervisor", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            with self._stop:
                if self._stop.wait_for(lambda: self._closed,
                                       timeout=self.probe_interval_s):
                    return
            try:
                self.probe()
            # Deliberate supervision boundary: any sweep failure is
            # recorded, never allowed to kill the probe thread.
            except Exception as exc:  # lint: ignore[RPR003]
                # One failed sweep (e.g. a fail-over re-dispatch racing
                # a closing fleet) must not kill supervision for good —
                # record the evidence and keep probing; the next sweep
                # retries any unfinished failover.
                obs.instant("fleet.supervisor.probe_error", cat="fault",
                            error=repr(exc))

    def close(self) -> None:
        with self._stop:
            self._closed = True
            self._stop.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
