"""Typed errors of the sharded serve fleet.

Fleet errors extend the serve hierarchy
(:class:`~repro.serve.errors.ServeError`) so callers written against
one in-process :class:`~repro.serve.service.SolveService` keep working
unchanged against a :class:`~repro.fleet.fleet.ShardedFleet`.
"""

from __future__ import annotations

from typing import Sequence

from repro.serve.errors import ServeError

__all__ = ["FleetError", "NoLiveShardsError", "ShardLostError"]


class FleetError(ServeError):
    """Base of every error the fleet router raises."""

    def __init__(self, message: str, *, hint: str = "") -> None:
        super().__init__(message, phase="fleet", hint=hint)


class NoLiveShardsError(FleetError):
    """Every shard is dead or unroutable — the fleet cannot place work."""

    def __init__(self, dead: Sequence[int] = ()) -> None:
        self.dead = tuple(sorted(int(s) for s in dead))
        super().__init__(
            f"no live shards remain (dead: {list(self.dead)})",
            hint="add a shard (router.add_shard) or restart the fleet")


class ShardLostError(FleetError):
    """A request was re-routed ``moves`` times and ran out of budget.

    Failover re-submits a revoked request to the ring successor; a
    request that keeps landing on dying shards is failed with this
    error after ``max_moves`` moves instead of bouncing forever.
    """

    def __init__(self, key: str, moves: int, max_moves: int) -> None:
        self.key = key
        self.moves = int(moves)
        self.max_moves = int(max_moves)
        super().__init__(
            f"request {key[:24]}… re-routed {moves} times "
            f"(max_moves={max_moves}) without finding a stable shard",
            hint="raise max_moves or stop killing shards")
