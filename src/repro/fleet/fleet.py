"""`ShardedFleet` — shards + router + supervisor in one handle.

The convenience composition the CLI (``repro serve --shards N``), the
chaos matrix (``repro chaos --fleet``) and the scale-out benchmark
build: N shards over one shared ``cache_dir`` (the disk tier is the
fleet-wide warm layer), one :class:`ShardRouter` front door, and an
optional :class:`FleetSupervisor`.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.faults.plan import FleetFaultPlan
from repro.fleet.router import FleetStats, ShardRouter
from repro.fleet.shard import ProcessShard, ThreadShard
from repro.fleet.supervisor import FleetSupervisor
from repro.guard.solver import GuardPolicy
from repro.serve.cache import DEFAULT_CACHE_BYTES
from repro.serve.request import SolveRequest
from repro.serve.resilience import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
)
from repro.serve.service import ServeStats, Ticket

__all__ = ["ShardedFleet"]

_BACKENDS = {"thread": ThreadShard, "process": ProcessShard}


class ShardedFleet:
    """N-shard serve fleet behind a single submit/drain/close surface."""

    def __init__(self, shards: int = 2, *, backend: str = "thread",
                 workers_per_shard: int = 1,
                 queue_capacity: int = 256, batch_size: int = 4,
                 cache_dir: Optional[str] = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 policy: Optional[GuardPolicy] = None,
                 fault_plan: Optional[FleetFaultPlan] = None,
                 admission: Union[AdmissionPolicy, AdmissionController,
                                  None] = None,
                 breaker_policy: Optional[BreakerPolicy] = None,
                 replicas: Optional[int] = None,
                 max_moves: int = 3,
                 supervise: bool = False,
                 probe_interval_s: float = 0.05) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {set(_BACKENDS)}")
        self.backend = backend
        self._shard_kwargs = dict(
            workers=workers_per_shard, queue_capacity=queue_capacity,
            batch_size=batch_size, cache_dir=cache_dir,
            cache_bytes=cache_bytes, policy=policy)
        cls = _BACKENDS[backend]
        self.shards = [cls(sid, **self._shard_kwargs)
                       for sid in range(shards)]
        ring_kwargs = {} if replicas is None else {"replicas": replicas}
        self.router = ShardRouter(
            self.shards, fault_plan=fault_plan, admission=admission,
            breaker_policy=breaker_policy, max_moves=max_moves,
            **ring_kwargs)
        self.supervisor = FleetSupervisor(
            self.router, probe_interval_s=probe_interval_s)
        if supervise:
            self.supervisor.start()

    # -- the serve surface -------------------------------------------------

    def submit(self, request: SolveRequest) -> Ticket:
        return self.router.submit(request)

    def drain(self, timeout: Optional[float] = None) -> bool:
        return self.router.drain(timeout)

    def spawn_shard(self, shard_id: int) -> int:
        """Build + join a new shard (same backend/config, same shared
        disk tier); returns how many in-flight requests rebalanced
        onto it."""
        cls = _BACKENDS[self.backend]
        shard = cls(shard_id, **self._shard_kwargs)
        self.shards.append(shard)
        return self.router.add_shard(shard)

    def stats(self) -> FleetStats:
        return self.router.stats()

    def shard_stats(self) -> Dict[int, ServeStats]:
        return {s.shard_id: s.stats() for s in self.shards}

    def close(self) -> None:
        self.supervisor.close()
        self.router.close()

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
