"""repro.fleet — the sharded serve fleet (horizontal scale-out).

One :class:`~repro.serve.service.SolveService` is the scaling ceiling
of the serve tier; this package turns N of them into one fleet:

* :mod:`repro.fleet.ring` — consistent hashing of request *content*
  fingerprints with virtual nodes (same shards ⇒ same assignment;
  adding a shard moves only the minimal key range);
* :mod:`repro.fleet.shard` — the shard facade over a service:
  in-thread (deterministic, the chaos backend) or ``multiprocessing``
  (real GIL escape) behind ``backend="process"``, both sharing one
  disk-tier warm layer;
* :mod:`repro.fleet.router` — the front door: routing, fleet-level
  coalescing, per-shard circuit breakers, admission shedding, and
  exactly-once failover re-routing via cancel-or-deliver;
* :mod:`repro.fleet.supervisor` — heartbeat probes (injectable
  monotonic clock) driving dead/degraded verdicts into the router;
* :mod:`repro.fleet.fleet` — :class:`ShardedFleet`, the composed
  handle the CLI, chaos matrix and benchmarks use.

Fault injection comes from
:class:`~repro.faults.plan.FleetFaultPlan` (``ShardCrash`` /
``ShardStall`` / ``RouterPartition``), keyed on per-shard dispatch
sequence numbers — never wall clock — and exercised end-to-end by
``repro chaos --fleet`` (see :mod:`repro.faults.fleetchaos` and
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from repro.fleet.errors import FleetError, NoLiveShardsError, \
    ShardLostError
from repro.fleet.fleet import ShardedFleet
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.fleet.router import FleetStats, ShardRouter
from repro.fleet.shard import ProcessShard, STALL_ALARM_SECONDS, \
    ThreadShard
from repro.fleet.supervisor import FleetSupervisor

__all__ = [
    "FleetError",
    "NoLiveShardsError",
    "ShardLostError",
    "ShardedFleet",
    "HashRing",
    "DEFAULT_REPLICAS",
    "FleetStats",
    "ShardRouter",
    "ThreadShard",
    "ProcessShard",
    "STALL_ALARM_SECONDS",
    "FleetSupervisor",
]
