"""Consistent-hash router over N serve shards, with failover.

The :class:`ShardRouter` is the fleet's single front door:

* **routing** — a request's *content* fingerprint
  (:meth:`~repro.serve.request.SolveRequest.route_key`) is hashed
  onto a :class:`~repro.fleet.ring.HashRing`, so repeats of one
  molecule hit the same shard's memory-tier cache and the assignment
  is a pure function of the live shard set (same seed ⇒ same shards,
  the determinism the chaos matrix asserts);
* **fleet-level coalescing** — concurrent submits with one
  idempotency key share one fleet ticket, exactly like a single
  service;
* **resilience at the dispatch edge** — a per-shard
  :class:`~repro.serve.resilience.CircuitBreaker` (a partitioned or
  failing shard is routed around while its breaker is open) and an
  optional fleet-level :class:`AdmissionController` shedding load with
  a retry-after hint before any shard queue backs up.  Admission sees
  the router's own outstanding-entry count — deterministic state, not
  a racy queue length;
* **failover** — :meth:`fail_over` (dead shard) and
  :meth:`quarantine` (degraded shard) revoke every unresolved entry
  from the victim via :meth:`SolveService.cancel` and re-submit the
  ones whose cancel *won* to the ring successor — the cancel/resubmit
  pair is what makes redelivery exactly-once: a result that beat the
  cancel is delivered (the request was served, not lost) and is never
  recomputed.  Requests re-routed more than ``max_moves`` times fail
  with a typed :class:`~repro.fleet.errors.ShardLostError`;
* **fault injection** — an optional
  :class:`~repro.faults.plan.FleetFaultPlan` is consulted at dispatch
  time against the per-shard dispatch sequence counters (never wall
  clock): ``crash_at`` kills the shard *before* the triggering
  dispatch, ``partitioned`` fails the dispatch at the router edge
  (breaker food), ``stall_seconds`` rides into the shard's straggler
  hook.

Lock discipline: ``_lock`` guards the ring, the entry table and the
counters only.  Dispatch, cancellation, shard calls and ticket
resolution all happen *outside* it — the router never blocks under
its hot lock (RPR202) and callbacks never see it held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

import repro.obs as obs
from repro.faults.plan import FleetFaultPlan
from repro.fleet.errors import NoLiveShardsError, ShardLostError
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.fleet.shard import PROC_DIED_ERROR
from repro.serve.errors import (
    QueueFullError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.request import SolveRequest, SolveResult
from repro.serve.resilience import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serve.service import CANCELLED_MARK, Ticket

__all__ = ["ShardRouter", "FleetStats"]


@dataclass
class _Entry:
    """One accepted fleet request and its current placement."""

    request: SolveRequest
    ticket: Ticket
    shard: int = -1
    shard_ticket: Optional[Ticket] = None
    moves: int = 0


@dataclass
class FleetStats:
    """Router counters (snapshot via :meth:`ShardRouter.stats`)."""

    submitted: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    rerouted: int = 0
    rebalance_moves: int = 0
    shards_live: int = 0
    shards_dead: int = 0
    dead: List[int] = field(default_factory=list)
    degraded: List[int] = field(default_factory=list)
    dispatches: Dict[int, int] = field(default_factory=dict)
    queue_depth: Dict[int, int] = field(default_factory=dict)


class ShardRouter:
    """Routes :class:`SolveRequest`s across shards; survives losing
    them."""

    def __init__(self, shards: Sequence[object], *,
                 fault_plan: Optional[FleetFaultPlan] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 breaker_policy: Optional[BreakerPolicy] = None,
                 admission: Union[AdmissionPolicy, AdmissionController,
                                  None] = None,
                 max_moves: int = 3) -> None:
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        if max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        self.max_moves = int(max_moves)
        self._plan = fault_plan
        self._shards: Dict[int, object] = {
            s.shard_id: s for s in shards}              # guarded-by: _lock
        if len(self._shards) != len(shards):
            raise ValueError("duplicate shard ids")
        self._ring = HashRing(self._shards, replicas)   # guarded-by: _lock
        self._breaker_policy = breaker_policy
        self._breakers: Dict[int, CircuitBreaker] = {
            sid: CircuitBreaker(breaker_policy,
                                name=f"fleet.shard{sid}")
            for sid in self._shards}
        if isinstance(admission, AdmissionController):
            self._admission: Optional[AdmissionController] = admission
        elif admission is not None:
            self._admission = AdmissionController(
                admission, workers=len(self._shards))
        else:
            self._admission = None
        self._lock = obs.named_lock("fleet.router._lock")
        self._idle = obs.named_condition("fleet.router._idle",
                                         self._lock)
        self._entries: Dict[str, _Entry] = {}    # guarded-by: _lock
        self._seq: Dict[int, int] = {
            sid: 0 for sid in self._shards}      # guarded-by: _lock
        self._dead: Set[int] = set()             # guarded-by: _lock
        self._degraded: Set[int] = set()         # guarded-by: _lock
        self._closed = False                     # guarded-by: _lock
        self._stats = FleetStats()               # guarded-by: _lock
        self._update_gauges()

    # -- introspection -----------------------------------------------------

    @property
    def live_shards(self) -> List[int]:
        with self._lock:
            return sorted(self._ring.shards)

    def shard(self, sid: int) -> object:
        with self._lock:
            return self._shards[sid]

    def breaker(self, sid: int) -> CircuitBreaker:
        return self._breakers[sid]

    def assignment(self, request: SolveRequest) -> int:
        """Where ``request`` would run right now (no dispatch)."""
        with self._lock:
            return self._ring.route(request.route_key(),
                                    excluding=self._dead)

    @property
    def outstanding(self) -> int:
        """Accepted-but-unresolved fleet requests (0 after a clean
        drain — the zero-stranded-tickets invariant)."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> FleetStats:
        with self._lock:
            s = self._stats
            snap = FleetStats(
                submitted=s.submitted, coalesced=s.coalesced,
                completed=s.completed, failed=s.failed, shed=s.shed,
                rerouted=s.rerouted,
                rebalance_moves=s.rebalance_moves,
                shards_live=len(self._ring),
                shards_dead=len(self._dead),
                dead=sorted(self._dead),
                degraded=sorted(self._degraded),
                dispatches=dict(self._seq))
            shards = list(self._shards.items())
        for sid, shard in shards:
            snap.queue_depth[sid] = shard.queue_depth
            if obs.is_enabled():
                obs.registry.gauge(
                    f"fleet.shard.queue_depth.shard{sid}",
                    "requests queued on one fleet shard").set(
                        shard.queue_depth)
        return snap

    def _update_gauges(self) -> None:
        # guarded-by: caller may hold _lock; reads are plain ints
        if obs.is_enabled():
            obs.registry.gauge(
                "fleet.shards.live",
                "shards currently on the routing ring").set(
                    len(self._ring))

    def _count(self, attr: str, n: int = 1,
               metric: Optional[str] = None) -> None:
        with self._lock:
            setattr(self._stats, attr, getattr(self._stats, attr) + n)
        if obs.is_enabled() and metric is not None:
            obs.registry.counter(
                metric, "fleet router request accounting").inc(n)

    # -- producer side -----------------------------------------------------

    def submit(self, request: SolveRequest) -> Ticket:
        """Admit ``request``; returns a (possibly shared) fleet ticket.

        Raises :class:`ServiceOverloadedError` on admission shed and
        :class:`NoLiveShardsError` when the ring is empty.
        """
        key = request.key()
        with self._lock:
            if self._closed:
                raise ServiceClosedError()
            if not self._ring:
                raise NoLiveShardsError(self._dead)
            entry = self._entries.get(key)
            if entry is not None:
                self._stats.coalesced += 1
                return entry.ticket
            depth = len(self._entries)
        if self._admission is not None:
            try:
                self._admission.check(depth)
            except ServiceOverloadedError:
                self._count("shed", metric="fleet.shed")
                raise
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._stats.coalesced += 1
                return entry.ticket
            entry = _Entry(request=request, ticket=Ticket(key))
            self._entries[key] = entry
            self._stats.submitted += 1
        if obs.is_enabled():
            obs.registry.counter("fleet.requests",
                                 "requests accepted by the router").inc()
        self._dispatch(entry)
        return entry.ticket

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, entry: _Entry, exclude: Optional[Set[int]] = None
                  ) -> None:
        """Place ``entry`` on a shard, consulting the fault plan.

        Runs until the entry is dispatched or terminally failed; a
        plan-triggered shard crash or partition re-routes within the
        loop.  Never holds ``_lock`` across a shard call.
        """
        exclude = set(exclude or ())
        route = entry.request.route_key()
        rejected: Dict[int, str] = {}
        while True:
            if entry.ticket.done():
                return
            with self._lock:
                try:
                    sid = self._ring.route(route,
                                           excluding=self._dead | exclude)
                except KeyError:
                    sid = None
            if sid is None:
                if rejected:
                    error = ("every routable shard rejected the "
                             "request: " + "; ".join(
                                 f"shard{s}: {why}"
                                 for s, why in sorted(rejected.items())))
                else:
                    error = str(NoLiveShardsError(self._dead))
                self._resolve(entry, SolveResult(
                    key=entry.ticket.key, status="failed", error=error))
                return
            breaker = self._breakers[sid]
            if not breaker.allow():
                # Open breaker: route around this shard for this
                # dispatch only (it recovers via half-open probes).
                exclude.add(sid)
                continue
            with self._lock:
                seq = self._seq[sid]
                self._seq[sid] = seq + 1
            crash = (self._plan.crash_at(sid, seq)
                     if self._plan is not None else None)
            if crash is not None:
                obs.instant(f"fleet.crash[shard{sid}#{seq}]",
                            cat="fault")
                self.fail_over(sid)
                continue
            part = (self._plan.partitioned(sid, seq)
                    if self._plan is not None else None)
            if part is not None:
                obs.instant(f"fleet.partition[shard{sid}#{seq}]",
                            cat="fault")
                breaker.record_failure()
                self._count("rerouted", metric="fleet.rerouted")
                exclude.add(sid)
                continue
            stall = (self._plan.stall_seconds(sid, seq)
                     if self._plan is not None else 0.0)
            shard = self._shards[sid]
            with self._lock:
                entry.shard = sid
            try:
                shard_ticket = shard.submit(entry.request,
                                            stall_seconds=stall)
            except (QueueFullError, ServiceClosedError,
                    ServiceOverloadedError) as exc:
                # A rejecting shard (full queue, closing) must not
                # strand the entry: route around it for this dispatch
                # and keep going — exhaustion of the ring resolves the
                # ticket terminally above, never leaves it dangling.
                rejected[sid] = type(exc).__name__
                obs.instant(f"fleet.reject[shard{sid}]", cat="fault",
                            error=type(exc).__name__)
                if isinstance(exc, ServiceClosedError):
                    breaker.record_failure()
                exclude.add(sid)
                continue
            with self._lock:
                entry.shard_ticket = shard_ticket
            shard_ticket.on_done(
                lambda t, e=entry, s=sid: self._on_shard_done(e, s, t))
            # A fail_over/quarantine that raced this placement (between
            # entry.shard being published and the shard accepting the
            # request) enumerated the entry as a victim but its
            # cancel() missed the not-yet-submitted key.  Re-check and
            # reclaim: if the shard was pulled off the ring meanwhile
            # and our cancel wins, the request re-routes instead of
            # running (or dying) on the lost shard.
            with self._lock:
                lost = sid in self._dead or sid in self._degraded
            if lost and shard.cancel(entry.ticket.key,
                                     "shard lost during placement"):
                if not self._budget_move(entry):
                    return
                exclude.add(sid)
                continue
            return

    def _budget_move(self, entry: _Entry) -> bool:
        """Charge one re-route against ``entry``'s move budget.

        True when the entry may be dispatched again; False when the
        budget is spent — the entry is then terminally failed with a
        :class:`ShardLostError` (never left unresolved)."""
        entry.moves += 1
        if entry.moves > self.max_moves:
            exc = ShardLostError(entry.ticket.key, entry.moves,
                                 self.max_moves)
            self._resolve(entry, SolveResult(
                key=entry.ticket.key, status="failed", error=str(exc)))
            return False
        self._count("rerouted", metric="fleet.rerouted")
        return True

    def _on_shard_done(self, entry: _Entry, sid: int,
                       shard_ticket: Ticket) -> None:
        """Shard-ticket completion → fleet-ticket resolution.

        Runs on the resolving thread (shard worker or canceller) with
        no locks held.  Router-initiated cancels carry
        :data:`CANCELLED_MARK` and are skipped — the failover path
        that issued them owns the re-submission.
        """
        result = shard_ticket.result(timeout=0.0)
        if result.error.startswith(CANCELLED_MARK):
            return
        if result.error == PROC_DIED_ERROR:
            # The process backend lost its child with this request on
            # the wire.  Treat it like any other shard crash instead of
            # failing the fleet ticket terminally: fail the shard over
            # (idempotent — also revokes and re-routes its queued work)
            # and re-dispatch this entry to the ring successor, subject
            # to the same move budget as revoke-path failover.
            breaker = self._breakers.get(sid)
            if breaker is not None:
                breaker.record_failure()
            self.fail_over(sid, reason=PROC_DIED_ERROR)
            if entry.ticket.done():
                return
            if self._budget_move(entry):
                self._dispatch(entry, exclude={sid})
            return
        if result.shard < 0:
            result.shard = sid
        breaker = self._breakers.get(sid)
        if breaker is not None:
            if result.status in ("ok", "degraded", "expired"):
                breaker.record_success()
            else:
                breaker.record_failure()
        if self._admission is not None and result.ok:
            self._admission.note_service_seconds(result.service_seconds)
        self._resolve(entry, result)

    def _resolve(self, entry: _Entry, result: SolveResult) -> None:
        """Exactly-once terminal bookkeeping for a fleet entry."""
        won = entry.ticket._set(result)
        with self._lock:
            if self._entries.get(entry.ticket.key) is entry:
                del self._entries[entry.ticket.key]
                self._idle.notify_all()
            if won:
                if result.ok:
                    self._stats.completed += 1
                else:
                    self._stats.failed += 1

    # -- failover / rebalancing --------------------------------------------

    def _revoke_and_reroute(self, sid: int, reason: str) -> int:
        """Cancel every unresolved entry on ``sid``; re-dispatch the
        ones whose cancel won (exactly-once: a result that landed
        first is delivered, never recomputed).  Returns the move
        count."""
        shard = self._shards[sid]
        with self._lock:
            victims = [e for e in self._entries.values()
                       if e.shard == sid and not e.ticket.done()]
        moves = 0
        for entry in victims:
            won = shard.cancel(entry.ticket.key, reason)
            if not won:
                # The shard delivered (or is a breath from delivering)
                # a genuine result; its on_done callback resolves the
                # fleet ticket.
                continue
            if not self._budget_move(entry):
                continue
            moves += 1
            self._dispatch(entry)
        return moves

    def fail_over(self, sid: int, reason: str = "shard died") -> int:
        """Kill + drop ``sid`` from the ring and re-route its work.

        Idempotent; returns how many requests moved.  Used by the
        fault plan's :class:`ShardCrash` hook and by the supervisor
        when health probes flatline.
        """
        with self._lock:
            if sid in self._dead or sid not in self._shards:
                return 0
            self._dead.add(sid)
            if sid in self._ring:
                self._ring.remove(sid)
            self._update_gauges()
        shard = self._shards[sid]
        shard.kill()
        obs.instant(f"fleet.failover[shard{sid}]", cat="fault")
        return self._revoke_and_reroute(sid, reason)

    def quarantine(self, sid: int, reason: str = "shard degraded"
                   ) -> int:
        """Pull a *degraded* (stalled) shard off the ring and re-route
        its unresolved work; the shard process stays alive.  The
        cancel wakes a worker stalled on a ticket's interruptible
        event immediately."""
        with self._lock:
            if (sid in self._dead or sid in self._degraded
                    or sid not in self._shards):
                return 0
            self._degraded.add(sid)
            if sid in self._ring:
                self._ring.remove(sid)
            self._update_gauges()
        obs.instant(f"fleet.quarantine[shard{sid}]", cat="fault")
        return self._revoke_and_reroute(sid, reason)

    def add_shard(self, shard: object) -> int:
        """Join a shard and rebalance: only entries whose ring owner
        *changed* (a consistent-hash-minimal set, all owned by the new
        shard) are revoked from their old placement and re-dispatched.
        Returns the move count."""
        sid = shard.shard_id
        with self._lock:
            if sid in self._shards and sid not in self._dead:
                raise ValueError(f"shard {sid} is already in the fleet")
            self._shards[sid] = shard
            self._dead.discard(sid)
            self._degraded.discard(sid)
            self._seq.setdefault(sid, 0)
            self._ring.add(sid)
            self._update_gauges()
            moved = [e for e in self._entries.values()
                     if not e.ticket.done() and e.shard >= 0
                     and e.shard != self._ring.route(
                         e.request.route_key(), excluding=self._dead)]
        self._breakers.setdefault(
            sid, CircuitBreaker(self._breaker_policy,
                                name=f"fleet.shard{sid}"))
        if self._admission is not None:
            self._admission.workers = max(self._admission.workers,
                                          len(self._shards)
                                          - len(self._dead))
        moves = 0
        for entry in moved:
            old = self._shards[entry.shard]
            if not old.cancel(entry.ticket.key, "rebalanced away"):
                continue
            moves += 1
            # lifetime total under .total; the bare name stays a gauge
            # holding the size of the *last* rebalance
            self._count("rebalance_moves",
                        metric="fleet.rebalance.moves.total")
            self._dispatch(entry)
        if obs.is_enabled():
            obs.registry.gauge(
                "fleet.rebalance.moves",
                "requests moved by the last rebalance").set(moves)
        return moves

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Condition-wait until every accepted request has a result."""
        with self._idle:
            return self._idle.wait_for(lambda: not self._entries,
                                       timeout)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards.values())
        for shard in shards:
            shard.close()
