"""One fleet shard: a :class:`SolveService` behind a uniform facade.

Two backends share the same surface (``submit`` / ``cancel`` /
``ping`` / ``stalled`` / ``kill`` / ``close`` / ``queue_depth`` /
``stats``):

* :class:`ThreadShard` — the default: an in-process service whose
  worker threads share the interpreter.  Fully deterministic under the
  chaos choreography (kills are modelled as *revocation*: the router
  cancels every outstanding ticket, which wakes stalled workers and
  turns any still-running compute into a discarded first-set-wins
  loser), which is why the chaos matrix runs on it.
* :class:`ProcessShard` — behind ``backend="process"``: the service
  lives in a child process (escaping the GIL for real), fed by one
  parent-side pipe thread, one outstanding request at a time.
  ``kill()`` is a real ``SIGTERM``.

Both backends consult a :class:`_ShardServePlan` — the adapter that
maps fleet-level :class:`~repro.faults.plan.ShardStall` injections
(keyed on per-shard *dispatch* sequence by the router) onto the
service's per-execution straggler hook.  The stall waits on the
ticket's interruptible event, so a fleet-level cancel wakes it
immediately.

Every shard's :class:`~repro.serve.cache.ArtifactCache` is named
(``shard<N>`` metric suffix) and may point at a *shared* ``disk_dir``:
the disk tier is the fleet's warm layer, so a request re-routed after
a shard death still hits the ``surface``/``trees``/``born`` layers its
old shard persisted.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Dict, Optional

import repro.obs as obs
from repro.faults.plan import ServeFaultPlan
from repro.guard.solver import GuardPolicy
from repro.molecules.molecule import Molecule, SurfaceSamples
from repro.serve.cache import ArtifactCache, DEFAULT_CACHE_BYTES
from repro.serve.request import SolveRequest, SolveResult
from repro.serve.service import CANCELLED_MARK, ServeStats, SolveService, \
    Ticket

__all__ = ["ThreadShard", "ProcessShard", "STALL_ALARM_SECONDS",
           "PROC_DIED_ERROR"]

#: A noted stall at or above this many seconds arms the shard's
#: ``stalled()`` probe — the deterministic signal the supervisor's
#: degraded-shard detection keys on (never a wall-clock timeout).
STALL_ALARM_SECONDS = 5.0

#: Error string a :class:`ProcessShard` feeder installs when the child
#: process dies with a request on the wire.  The router matches it to
#: fail the shard over and re-route the request (crash semantics, not
#: a terminal compute failure).
PROC_DIED_ERROR = "shard process died mid-request"


class _ShardServePlan(ServeFaultPlan):
    """Adapter: fleet stalls, noted per dispatch, as a serve plan.

    The router resolves :meth:`FleetFaultPlan.stall_seconds` at
    dispatch time (it owns the per-shard dispatch counters) and notes
    the result here under the request key; the service's straggler
    hook (:meth:`slow_seconds`) then pops the note when the job
    executes.  Crash/disk/poison queries stay empty — shard-level
    faults are injected above the service, at the router edge.
    """

    def __init__(self, name: str = "shard") -> None:
        super().__init__((), seed=0)
        self._stall_lock = obs.named_lock(f"fleet.plan[{name}]._lock")
        self._stalls: Dict[str, float] = {}  # guarded-by: _stall_lock

    def note_stall(self, key: str, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._stall_lock:
            self._stalls[key] = self._stalls.get(key, 0.0) + seconds

    def slow_seconds(self, worker: int, key: str, attempt: int) -> float:
        with self._stall_lock:
            # Consumed on first execution: a retry or a re-routed
            # return of the same key runs at full speed.
            return self._stalls.pop(key, 0.0)


class ThreadShard:
    """In-thread shard (the deterministic default backend)."""

    backend = "thread"

    def __init__(self, shard_id: int, *, workers: int = 1,
                 queue_capacity: int = 256, batch_size: int = 4,
                 cache_dir: Optional[str] = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 policy: Optional[GuardPolicy] = None,
                 stall_alarm_s: float = STALL_ALARM_SECONDS) -> None:
        self.shard_id = int(shard_id)
        self.stall_alarm_s = float(stall_alarm_s)
        self._plan = _ShardServePlan(name=f"shard{shard_id}")
        cache = ArtifactCache(max_bytes=cache_bytes, disk_dir=cache_dir,
                              fault_plan=self._plan,
                              name=f"shard{shard_id}")
        self.service = SolveService(
            workers=workers, queue_capacity=queue_capacity,
            batch_size=batch_size, cache=cache, policy=policy,
            fault_plan=self._plan)
        self._lock = obs.named_lock(f"fleet.shard[{shard_id}]._lock")
        self._dead = False                       # guarded-by: _lock
        self._alarms: Dict[str, Ticket] = {}     # guarded-by: _lock

    # -- work --------------------------------------------------------------

    def submit(self, request: SolveRequest,
               stall_seconds: float = 0.0) -> Ticket:
        key = request.key()
        if stall_seconds > 0.0:
            self._plan.note_stall(key, stall_seconds)
        ticket = self.service.submit(request)
        if stall_seconds >= self.stall_alarm_s:
            with self._lock:
                self._alarms[key] = ticket
        return ticket

    def cancel(self, key: str, reason: str = "cancelled") -> bool:
        return self.service.cancel(key, reason)

    @property
    def queue_depth(self) -> int:
        return self.service.queue_depth

    @property
    def pending(self) -> int:
        return self.service.pending

    # -- health ------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness: False once killed (the heartbeat the supervisor
        probes)."""
        with self._lock:
            return not self._dead

    def stalled(self) -> bool:
        """True while an alarm-grade stalled job is still unresolved —
        a pure function of the fault plan and the ticket states, so
        the supervisor's degraded-shard path is deterministic."""
        with self._lock:
            self._alarms = {k: t for k, t in self._alarms.items()
                            if not t.done()}
            return bool(self._alarms)

    def kill(self) -> None:
        """Mark the shard dead (health probes fail from now on).

        The service object itself stays up so the router can revoke
        (cancel) its outstanding tickets — the thread-backend model of
        a crash is *all un-delivered work is lost to the fleet*, and
        revocation is what makes that deterministic.  ``close()``
        still reaps the worker threads.
        """
        with self._lock:
            self._dead = True

    def close(self) -> None:
        self.service.close()

    def stats(self) -> ServeStats:
        return self.service.stats()


# ---------------------------------------------------------------------------
# multiprocessing backend
# ---------------------------------------------------------------------------


def _shard_child_main(conn, shard_id: int, workers: int,
                      queue_capacity: int, batch_size: int,
                      cache_dir: Optional[str],
                      cache_bytes: int) -> None:
    """Child-process entry: serve solve RPCs over ``conn`` until EOF.

    Molecules arrive once per route key (the parent registry sends
    the arrays on first use, then only the key), so warm repeats cost
    a few hundred bytes on the wire.
    """
    plan = _ShardServePlan(name=f"shard{shard_id}.child")
    cache = ArtifactCache(max_bytes=cache_bytes, disk_dir=cache_dir,
                          fault_plan=plan, name=f"shard{shard_id}")
    service = SolveService(workers=workers,
                           queue_capacity=queue_capacity,
                           batch_size=batch_size, cache=cache,
                           fault_plan=plan)
    molecules: Dict[str, Molecule] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return
            if msg[0] == "close":
                conn.send(("bye",))
                return
            if msg[0] == "ping":
                conn.send(("pong",))
                continue
            if msg[0] == "stats":
                conn.send(("stats", service.stats()))
                continue
            (_, key, route, payload, params, method, priority, tau,
             stall) = msg
            if payload is not None:
                positions, charges, radii, surf, name = payload
                molecules[route] = Molecule(
                    positions, charges, radii,
                    surface=(SurfaceSamples(*surf)
                             if surf is not None else None),
                    name=name)
            molecule = molecules.get(route)
            if molecule is None:
                # The payload-bearing message for this route never
                # arrived (e.g. it was cancelled while queued in the
                # parent).  Answer with a typed failure instead of
                # dying — one bad message must not kill the shard.
                conn.send(("result", SolveResult(
                    key=key, status="failed",
                    error=f"unknown route {route[:16]}… (molecule "
                          f"payload not received)")))
                continue
            request = SolveRequest(
                molecule=molecule, params=params, method=method,
                priority=priority, idempotency_key=key, tau=tau)
            if stall > 0.0:
                plan.note_stall(key, stall)
            result = service.submit(request).result()
            # Guard events may hold non-picklable context; the fleet
            # surface reports them via counts only.
            result.guard_events = []
            conn.send(("result", result))
    finally:
        service.close()


class ProcessShard:
    """Shard whose service runs in a child process (GIL escape).

    One parent-side feeder thread owns the pipe and serves requests
    strictly in order, one outstanding RPC at a time; ``kill()`` is a
    real ``terminate()``.  Cancellation is parent-side (first-set-wins
    on the parent ticket): a cancelled request still queued is skipped
    by the feeder, one already on the wire finishes in the child and
    loses the set race.
    """

    backend = "process"

    def __init__(self, shard_id: int, *, workers: int = 1,
                 queue_capacity: int = 256, batch_size: int = 4,
                 cache_dir: Optional[str] = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 policy: Optional[GuardPolicy] = None,
                 stall_alarm_s: float = STALL_ALARM_SECONDS) -> None:
        del policy  # guard policy is not wired over the pipe (defaults)
        self.shard_id = int(shard_id)
        self.stall_alarm_s = float(stall_alarm_s)
        ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_child_main,
            args=(child_conn, self.shard_id, workers, queue_capacity,
                  batch_size, cache_dir, cache_bytes),
            name=f"fleet-shard-{shard_id}", daemon=True)
        self._proc.start()
        child_conn.close()
        self._outbox: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._lock = obs.named_lock(f"fleet.shard[{shard_id}]._lock")
        self._dead = False                       # guarded-by: _lock
        self._closed = False                     # guarded-by: _lock
        self._sent_routes: Dict[str, bool] = {}  # guarded-by: _lock
        self._tickets: Dict[str, Ticket] = {}    # guarded-by: _lock
        self._alarms: Dict[str, Ticket] = {}     # guarded-by: _lock
        self._stats_box: "queue.Queue[ServeStats]" = queue.Queue()
        self._feeder = threading.Thread(
            target=self._feed, name=f"fleet-feeder-{shard_id}",
            daemon=True)
        self._feeder.start()

    # -- feeder ------------------------------------------------------------

    def _feed(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                try:
                    self._conn.send(("close",))
                    self._conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    # Pipe already torn down (killed child) — the
                    # close handshake is best-effort; note it and
                    # exit the feeder either way.
                    obs.instant(
                        f"fleet.shard{self.shard_id}.close_eof",
                        cat="fault")
                return
            if item[0] == "stats":
                try:
                    self._conn.send(("stats",))
                    self._stats_box.put(self._conn.recv()[1])
                except (EOFError, OSError, BrokenPipeError):
                    self._stats_box.put(ServeStats())
                continue
            ticket, wire = item
            if ticket.done():       # cancelled while queued
                if wire[3] is not None:
                    # This message carried the route's molecule payload
                    # and the child never saw it; unmark the route so
                    # the next submit resends the arrays.
                    with self._lock:
                        self._sent_routes.pop(wire[2], None)
                continue
            try:
                self._conn.send(wire)
                kind, result = self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                with self._lock:
                    self._dead = True
                ticket._set(SolveResult(
                    key=ticket.key, status="failed",
                    error=PROC_DIED_ERROR, shard=self.shard_id))
                continue
            result.shard = self.shard_id
            ticket._set(result)

    # -- work --------------------------------------------------------------

    def submit(self, request: SolveRequest,
               stall_seconds: float = 0.0) -> Ticket:
        key = request.key()
        route = request.route_key()
        mol = request.molecule
        surf = mol.surface
        ticket = Ticket(key)
        with self._lock:
            self._tickets[key] = ticket
            if stall_seconds >= self.stall_alarm_s:
                self._alarms[key] = ticket
            # The _sent_routes test-and-set and the enqueue share the
            # lock so the payload-bearing message is strictly first in
            # the outbox for its route — a concurrent payload-less
            # submit of the same route can neither overtake it nor
            # race the membership test (the outbox is unbounded, the
            # put never blocks under the lock).
            payload = None
            if route not in self._sent_routes:
                self._sent_routes[route] = True
                payload = (mol.positions, mol.charges, mol.radii,
                           (surf.points, surf.normals, surf.weights)
                           if surf is not None else None, mol.name)
            self._outbox.put((ticket, (
                "solve", key, route, payload, request.params,
                request.method, request.priority, request.tau,
                stall_seconds)))
        ticket.on_done(self._forget)
        return ticket

    def _forget(self, ticket: Ticket) -> None:
        with self._lock:
            if self._tickets.get(ticket.key) is ticket:
                del self._tickets[ticket.key]

    def cancel(self, key: str, reason: str = "cancelled") -> bool:
        """Parent-side revocation (first-set-wins on the parent
        ticket); a request already on the wire finishes in the child
        and its result loses the set race."""
        with self._lock:
            ticket = self._tickets.get(key)
        if ticket is None:
            return False
        return ticket._set(SolveResult(
            key=key, status="failed",
            error=f"{CANCELLED_MARK} {reason}", shard=self.shard_id))

    @property
    def queue_depth(self) -> int:
        return self._outbox.qsize()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._tickets)

    # -- health ------------------------------------------------------------

    def ping(self) -> bool:
        with self._lock:
            if self._dead or self._closed:
                return False
        return self._proc.is_alive()

    def stalled(self) -> bool:
        with self._lock:
            self._alarms = {k: t for k, t in self._alarms.items()
                            if not t.done()}
            return bool(self._alarms)

    def kill(self) -> None:
        with self._lock:
            self._dead = True
        self._proc.terminate()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._outbox.put(None)
        self._feeder.join(timeout=30.0)
        self._proc.join(timeout=30.0)
        if self._proc.is_alive():   # pragma: no cover — hung child
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn.close()

    def stats(self) -> ServeStats:
        if not self.ping():
            return ServeStats()
        self._outbox.put(("stats",))
        try:
            return self._stats_box.get(timeout=30.0)
        except queue.Empty:         # pragma: no cover — hung child
            return ServeStats()
