"""64-bit Morton (Z-order) codes for 3-D points.

Sorting points by Morton code before building the octree gives the
cache-friendly memory layout the paper leans on: every octree node —
at every depth — owns a *contiguous* slice of the sorted point arrays,
so leaf kernels are dense vector operations and tree traversal touches
memory in Z-order.

Each coordinate gets 21 bits (the most that fit 3-to-a-64-bit-word),
i.e. a 2,097,152³ grid over the bounding cube.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Bits per coordinate axis.
BITS_PER_AXIS = 21
#: Grid resolution along one axis.
GRID_SIZE = 1 << BITS_PER_AXIS


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each uint64 so consecutive bits land
    three positions apart (the classic magic-number dilation)."""
    v = v & np.uint64(0x1FFFFF)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def _compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    v = v & np.uint64(0x1249249249249249)
    v = (v ^ (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v ^ (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v ^ (v >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    v = (v ^ (v >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    v = (v ^ (v >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return v


def quantize(points: np.ndarray, origin: np.ndarray,
             edge: float) -> np.ndarray:
    """Map points inside the cube ``[origin, origin+edge]³`` to integer
    grid coordinates in ``[0, GRID_SIZE)``. Values are clipped, so points
    exactly on the upper face land in the last cell."""
    pts = np.asarray(points, dtype=np.float64)
    if edge <= 0:
        raise ValueError("cube edge must be positive")
    scaled = (pts - origin) * (GRID_SIZE / edge)
    grid = np.clip(scaled.astype(np.int64), 0, GRID_SIZE - 1)
    return grid.astype(np.uint64)


def morton_encode(grid: np.ndarray) -> np.ndarray:
    """Interleave ``(n, 3)`` integer grid coordinates into Morton codes."""
    g = np.asarray(grid, dtype=np.uint64)
    if g.ndim != 2 or g.shape[1] != 3:
        raise ValueError("grid must have shape (n, 3)")
    if np.any(g >= GRID_SIZE):
        raise ValueError(f"grid coordinates must be < {GRID_SIZE}")
    return (_spread_bits(g[:, 0])
            | (_spread_bits(g[:, 1]) << np.uint64(1))
            | (_spread_bits(g[:, 2]) << np.uint64(2)))


def morton_decode(codes: np.ndarray) -> np.ndarray:
    """Recover ``(n, 3)`` grid coordinates from Morton codes."""
    c = np.asarray(codes, dtype=np.uint64)
    x = _compact_bits(c)
    y = _compact_bits(c >> np.uint64(1))
    z = _compact_bits(c >> np.uint64(2))
    return np.stack([x, y, z], axis=1)


def bounding_cube(points: np.ndarray,
                  pad_fraction: float = 1e-6) -> Tuple[np.ndarray, float]:
    """Origin and edge of a cube enclosing ``points`` with a small pad.

    The pad keeps boundary points strictly inside so quantisation is
    well-behaved.
    """
    pts = np.asarray(points, dtype=np.float64)
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    edge = float(np.max(hi - lo))
    if edge == 0.0:
        edge = 1.0  # all points coincide; any positive cube works
    pad = edge * pad_fraction
    return lo - pad, edge * (1.0 + 2.0 * pad_fraction)


def octant_at_depth(codes: np.ndarray, depth: int) -> np.ndarray:
    """The 3-bit child octant of each code at ``depth`` (root children
    are depth 0)."""
    if not 0 <= depth < BITS_PER_AXIS:
        raise ValueError(f"depth must be in [0, {BITS_PER_AXIS})")
    shift = np.uint64(3 * (BITS_PER_AXIS - 1 - depth))
    return ((np.asarray(codes, dtype=np.uint64) >> shift)
            & np.uint64(0x7)).astype(np.int64)
