"""Octree construction over Morton-sorted points.

The tree is stored as flat numpy arrays ("structure of arrays"), one
entry per node, with children discovered by binary search on the sorted
Morton codes — so construction is O(n log n) and the memory footprint is
linear in the number of points, *independent of any approximation
parameter* (the paper's key advantage over cutoff nonbonded lists).

Every node owns the contiguous slice ``[start, end)`` of the sorted
point arrays.  Solvers attach their own per-node aggregate payloads
(charge buckets, weighted-normal sums) as plain arrays indexed by node
id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.obs import traced
from repro.octree import morton
from repro.molecules.transform import RigidTransform

#: Sentinel for "no child" in the children table.
NO_CHILD = -1


@dataclass
class Octree:
    """A built octree over a point set.

    Attributes
    ----------
    points:
        ``(n, 3)`` points in Morton order (a *copy*, sorted).
    perm:
        ``(n,)`` original index of each sorted point, i.e.
        ``points[i] == original_points[perm[i]]``.
    start, end:
        ``(nnodes,)`` — node *i* owns sorted points ``start[i]:end[i]``.
    children:
        ``(nnodes, 8)`` child node ids, :data:`NO_CHILD` where absent.
    parent:
        ``(nnodes,)`` parent node id, −1 at the root.
    depth:
        ``(nnodes,)`` node depth (root = 0).
    center:
        ``(nnodes, 3)`` geometric centre of each node's points (the
        pseudo-particle position used by the far-field approximation).
    radius:
        ``(nnodes,)`` radius of the smallest ``center``-centred ball
        enclosing the node's points.
    is_leaf:
        ``(nnodes,)`` boolean.
    leaves:
        ids of all leaf nodes, ordered by ``start`` (i.e. in Morton
        order), which is the order the paper's static work division
        slices into per-process segments.
    """

    points: np.ndarray
    perm: np.ndarray
    start: np.ndarray
    end: np.ndarray
    children: np.ndarray
    parent: np.ndarray
    depth: np.ndarray
    center: np.ndarray
    radius: np.ndarray
    is_leaf: np.ndarray
    leaves: np.ndarray
    leaf_size: int
    build_ops: int = 0

    @property
    def nnodes(self) -> int:
        return len(self.start)

    @property
    def npoints(self) -> int:
        return len(self.points)

    @property
    def root(self) -> int:
        return 0

    def count(self, node: int) -> int:
        """Number of points under ``node``."""
        return int(self.end[node] - self.start[node])

    def slice_of(self, node: int) -> slice:
        """Sorted-array slice owned by ``node``."""
        return slice(int(self.start[node]), int(self.end[node]))

    def child_ids(self, node: int) -> np.ndarray:
        """Existing children of ``node``."""
        ch = self.children[node]
        return ch[ch != NO_CHILD]

    def max_depth(self) -> int:
        return int(self.depth.max())

    def nbytes(self) -> int:
        """Bytes of live array data (memory model input)."""
        total = 0
        for arr in (self.points, self.perm, self.start, self.end,
                    self.children, self.parent, self.depth, self.center,
                    self.radius, self.is_leaf, self.leaves):
            total += arr.nbytes
        return total

    def gather_sorted(self, values: np.ndarray) -> np.ndarray:
        """Reorder per-point ``values`` (original order) into tree order."""
        return np.asarray(values)[self.perm]

    def scatter_to_original(self, values_sorted: np.ndarray) -> np.ndarray:
        """Reorder per-point tree-order values back to the original order."""
        out = np.empty_like(values_sorted)
        out[self.perm] = values_sorted
        return out

    def transformed(self, transform: RigidTransform) -> "Octree":
        """Apply a rigid transform without rebuilding (paper §IV-C Step 1).

        Topology, slices, permutation and radii are reused; only points
        and node centres move.  This is what makes octree construction a
        one-time preprocessing cost in docking scans.
        """
        return Octree(
            points=transform.apply(self.points),
            perm=self.perm,
            start=self.start,
            end=self.end,
            children=self.children,
            parent=self.parent,
            depth=self.depth,
            center=transform.apply(self.center),
            radius=self.radius,
            is_leaf=self.is_leaf,
            leaves=self.leaves,
            leaf_size=self.leaf_size,
            build_ops=0,
        )


@traced("solve.octree_build")
def build_octree(points: np.ndarray,
                 leaf_size: int = 32,
                 max_depth: int = morton.BITS_PER_AXIS) -> Octree:
    """Build an octree over ``points``.

    A node is subdivided while it holds more than ``leaf_size`` points
    and is shallower than ``max_depth``.  Empty octants produce no node
    (the children table stores :data:`NO_CHILD`).
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must have shape (n, 3)")
    n = len(pts)
    if n == 0:
        raise ValueError("cannot build an octree over zero points")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    if not 1 <= max_depth <= morton.BITS_PER_AXIS:
        raise ValueError(f"max_depth must be in [1, {morton.BITS_PER_AXIS}]")

    origin, edge = morton.bounding_cube(pts)
    codes = morton.morton_encode(morton.quantize(pts, origin, edge))
    order = np.argsort(codes, kind="stable")
    codes = codes[order]
    pts_sorted = pts[order]

    # Flat-array accumulation; nodes appended in DFS order so a parent
    # always precedes its children (useful for top-down passes).
    start: List[int] = []
    end: List[int] = []
    children: List[List[int]] = []
    parent: List[int] = []
    depth_l: List[int] = []
    build_ops = 0

    # Iterative DFS with an explicit stack: (start, end, depth, parent_id,
    # parent_slot).
    stack = [(0, n, 0, -1, -1)]
    while stack:
        s, e, d, par, slot = stack.pop()
        node_id = len(start)
        start.append(s)
        end.append(e)
        children.append([NO_CHILD] * 8)
        parent.append(par)
        depth_l.append(d)
        if par >= 0:
            children[par][slot] = node_id
        count = e - s
        build_ops += count
        if count <= leaf_size or d >= max_depth:
            continue
        # Split [s, e) into octants by the 3 Morton bits at this depth.
        oct_bits = morton.octant_at_depth(codes[s:e], d)
        # codes are sorted, so octants are contiguous runs.
        boundaries = np.searchsorted(oct_bits, np.arange(9))
        for o in range(7, -1, -1):  # reversed so DFS visits octant 0 first
            cs, ce = s + boundaries[o], s + boundaries[o + 1]
            if ce > cs:
                stack.append((cs, ce, d + 1, node_id, o))

    start_a = np.array(start, dtype=np.int64)
    end_a = np.array(end, dtype=np.int64)
    children_a = np.array(children, dtype=np.int64)
    parent_a = np.array(parent, dtype=np.int64)
    depth_a = np.array(depth_l, dtype=np.int64)
    nnodes = len(start_a)

    # A node is a leaf iff it produced no children.
    is_leaf = np.all(children_a == NO_CHILD, axis=1)

    # Node centres and enclosing radii (vectorised per node via reduceat
    # for the centres; radii need a max over the slice).
    center = np.empty((nnodes, 3), dtype=np.float64)
    radius = np.empty(nnodes, dtype=np.float64)
    for i in range(nnodes):
        sl = slice(start_a[i], end_a[i])
        c = pts_sorted[sl].mean(axis=0)
        center[i] = c
        d2 = np.sum((pts_sorted[sl] - c) ** 2, axis=1)
        radius[i] = np.sqrt(d2.max())

    leaf_ids = np.flatnonzero(is_leaf)
    leaf_ids = leaf_ids[np.argsort(start_a[leaf_ids], kind="stable")]

    return Octree(
        points=pts_sorted,
        perm=order.astype(np.int64),
        start=start_a,
        end=end_a,
        children=children_a,
        parent=parent_a,
        depth=depth_a,
        center=center,
        radius=radius,
        is_leaf=is_leaf,
        leaves=leaf_ids,
        leaf_size=leaf_size,
        build_ops=build_ops,
    )
