"""Cache-friendly linear-space octree (the paper's core data structure)."""

from repro.octree.morton import morton_encode, morton_decode
from repro.octree.build import Octree, build_octree
from repro.octree.stats import OctreeStats, octree_stats
from repro.octree.update import UpdateStats, refit, update_octree

__all__ = [
    "morton_encode",
    "morton_decode",
    "Octree",
    "build_octree",
    "OctreeStats",
    "octree_stats",
    "UpdateStats",
    "refit",
    "update_octree",
]
