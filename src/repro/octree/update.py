"""Dynamic octree maintenance for flexible molecules.

The paper's case against nonbonded lists leans on its companion work
(ref [8], "Space-efficient maintenance of nonbonded lists for flexible
molecules using dynamic octrees"): when atoms move a little between MD
steps, an octree can be *maintained* instead of rebuilt, while an
nblist update costs a full cutoff-cubic rebuild.

This module provides the two standard maintenance operations:

* :func:`refit` — keep the topology (and hence all slices/permutation),
  move the stored points, and recompute every node's centre and an
  *enclosing* radius bottom-up.  Because the traversal MACs use the
  actual node radii, a refit tree still yields results inside the same
  ε envelope — the tree is merely (slightly) less tight, so traversals
  may do a bit more work, never less-accurate work.
* :func:`update_octree` — refit, but fall back to a full rebuild when
  the geometry has drifted enough that the refit tree's quality decays
  (measured by how much node radii inflated relative to a fresh build).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.octree.build import Octree, build_octree


@dataclass(frozen=True)
class UpdateStats:
    """Outcome of an :func:`update_octree` call."""

    rebuilt: bool
    #: Mean node-radius inflation of the refit tree vs the pre-move
    #: tree (1.0 = unchanged).
    radius_inflation: float
    #: Largest single-point displacement (Å).
    max_displacement: float


def _recompute_geometry(tree: Octree, pts_sorted: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact centres + enclosing radii for all nodes of ``tree`` over
    the (already tree-ordered) points ``pts_sorted``.

    Centres are exact (cumulative sums); leaf radii are exact; internal
    radii use the conservative child bound
    ``r ≥ max_child(|c_child − c| + r_child)`` — it encloses by
    induction and is computed in one vectorised sweep per depth.
    """
    n = len(pts_sorted)
    cum = np.vstack([np.zeros(3, dtype=np.float64),
                     np.cumsum(pts_sorted, axis=0)])
    counts = (tree.end - tree.start).astype(np.float64)
    centers = (cum[tree.end] - cum[tree.start]) / counts[:, None]

    radii = np.zeros(tree.nnodes, dtype=np.float64)
    leaf_ids = tree.leaves
    for leaf in leaf_ids:
        sl = tree.slice_of(int(leaf))
        d2 = np.sum((pts_sorted[sl] - centers[leaf]) ** 2, axis=1)
        radii[leaf] = np.sqrt(d2.max())

    # Internal nodes, deepest depth first.
    for d in range(tree.max_depth() - 1, -1, -1):
        idx = np.flatnonzero((tree.depth == d) & ~tree.is_leaf)
        for node in idx:
            ch = tree.child_ids(int(node))
            dist = np.linalg.norm(centers[ch] - centers[node], axis=1)
            radii[node] = float(np.max(dist + radii[ch]))
    return centers, radii


def refit(tree: Octree, new_positions: np.ndarray) -> Octree:
    """Move a built tree's points without changing its topology.

    ``new_positions`` is in the *original* point order (as passed to
    :func:`repro.octree.build.build_octree`).  Slices, permutation and
    children are reused; centres and (enclosing) radii are recomputed,
    so all traversal MAC decisions remain sound.
    """
    pts = np.ascontiguousarray(new_positions, dtype=np.float64)
    if pts.shape != (tree.npoints, 3):
        raise ValueError("new_positions must match the tree's point count")
    pts_sorted = pts[tree.perm]
    centers, radii = _recompute_geometry(tree, pts_sorted)
    return Octree(
        points=pts_sorted,
        perm=tree.perm,
        start=tree.start,
        end=tree.end,
        children=tree.children,
        parent=tree.parent,
        depth=tree.depth,
        center=centers,
        radius=radii,
        is_leaf=tree.is_leaf,
        leaves=tree.leaves,
        leaf_size=tree.leaf_size,
        build_ops=0,
    )


def update_octree(tree: Octree,
                  new_positions: np.ndarray,
                  rebuild_threshold: float = 1.5
                  ) -> Tuple[Octree, UpdateStats]:
    """Refit if the motion is gentle, rebuild if the tree has degraded.

    ``rebuild_threshold`` bounds the acceptable mean node-radius
    inflation: a refit tree whose nodes grew beyond this factor loses
    its pruning power (far pairs stop qualifying), so a fresh build is
    cheaper overall.
    """
    if rebuild_threshold <= 1.0:
        raise ValueError("rebuild_threshold must exceed 1.0")
    pts = np.ascontiguousarray(new_positions, dtype=np.float64)
    if pts.shape != (tree.npoints, 3):
        raise ValueError("new_positions must match the tree's point count")

    old_original = tree.scatter_to_original(tree.points)
    max_disp = float(np.max(np.linalg.norm(pts - old_original, axis=1)))

    refitted = refit(tree, pts)
    old_r = np.maximum(tree.radius, 1e-12)
    inflation = float(np.mean(refitted.radius / old_r))

    if inflation <= rebuild_threshold:
        return refitted, UpdateStats(rebuilt=False,
                                     radius_inflation=inflation,
                                     max_displacement=max_disp)
    fresh = build_octree(pts, leaf_size=tree.leaf_size)
    return fresh, UpdateStats(rebuilt=True, radius_inflation=inflation,
                              max_displacement=max_disp)
