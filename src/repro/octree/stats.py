"""Octree shape and memory statistics.

Used by the benchmarks to report the linear-space property the paper
contrasts with cutoff nonbonded lists (Section II, "Octrees vs Nblists").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.octree.build import Octree


@dataclass(frozen=True)
class OctreeStats:
    """Summary statistics of a built octree."""

    npoints: int
    nnodes: int
    nleaves: int
    max_depth: int
    mean_leaf_occupancy: float
    max_leaf_occupancy: int
    nbytes: int

    @property
    def bytes_per_point(self) -> float:
        """Linear-space witness: stays O(1) as the point count grows."""
        return self.nbytes / max(1, self.npoints)


def octree_stats(tree: Octree) -> OctreeStats:
    """Compute :class:`OctreeStats` for a built tree."""
    leaf_counts = tree.end[tree.leaves] - tree.start[tree.leaves]
    return OctreeStats(
        npoints=tree.npoints,
        nnodes=tree.nnodes,
        nleaves=len(tree.leaves),
        max_depth=tree.max_depth(),
        mean_leaf_occupancy=float(np.mean(leaf_counts)),
        max_leaf_occupancy=int(np.max(leaf_counts)),
        nbytes=tree.nbytes(),
    )
