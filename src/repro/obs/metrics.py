"""Metrics registry: counters, gauges and histograms.

The solvers compute rich traversal statistics (MAC accept/reject
counts, near/far pair blocks, per-leaf visit distributions, charge
bucket occupancy) and, before this module, threw them away after each
run.  A :class:`MetricsRegistry` keeps them addressable by name so the
CLI, benchmarks and tests can export one coherent snapshot as JSON or
Prometheus-style text (see :mod:`repro.obs.export`).

Metric names use dotted paths (``"born.mac_accepts"``); exporters
rewrite them to the target format's conventions (``repro_born_
mac_accepts`` for Prometheus).  All mutating operations are
lock-protected — simmpi rank threads update shared metrics
concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

Number = Union[int, float]

#: Default histogram bucket boundaries: decade/half-decade grid wide
#: enough for operation counts (1 … 1e9) without per-metric tuning.
DEFAULT_BOUNDS = tuple(float(b) for e in range(10) for b in
                       (10 ** e, 3 * 10 ** e))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0                            # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0                            # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram with sum/count, Prometheus-compatible.

    ``bounds`` are the *upper* edges of the finite buckets; values
    above the last edge land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, help: str = "",
                 bounds: Optional[Sequence[Number]] = None) -> None:
        self.name = name
        self.help = help
        edges = sorted(float(b) for b in (bounds or DEFAULT_BOUNDS))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.bounds = tuple(edges)
        self._counts = np.zeros(len(edges) + 1,
                                dtype=np.int64)      # guarded-by: _lock
        self._sum = 0.0                              # guarded-by: _lock
        self._count = 0                              # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        self.observe_many([value])

    def observe_many(self, values: Iterable[Number]) -> None:
        """Vectorised bulk observation (per-leaf arrays, bucket rows)."""
        arr = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.bounds), arr, side="left")
        add = np.bincount(idx, minlength=len(self._counts))
        with self._lock:
            self._counts += add.astype(np.int64)
            self._sum += float(arr.sum())
            self._count += int(arr.size)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        return [int(c) for c in self._counts]


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name → metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}        # guarded-by: _lock
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(self, name: str, help: str = "",
                  bounds: Optional[Sequence[Number]] = None) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, bounds)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(f"{name!r} already registered as "
                                f"{type(metric).__name__}")
            return metric

    def _get_or_create(self, name: str, help: str, cls) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"{name!r} already registered as "
                                f"{type(metric).__name__}")
            return metric

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(metrics):
            m = metrics[name]
            if isinstance(m, Counter):
                out[name] = {"type": "counter", "value": m.value}
            elif isinstance(m, Gauge):
                out[name] = {"type": "gauge", "value": m.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": m.count,
                    "sum": m.sum,
                    "bounds": list(m.bounds),
                    "bucket_counts": m.bucket_counts(),
                }
        return out


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry
