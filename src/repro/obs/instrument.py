"""Bridges from solver data structures to the metrics registry.

The traversal kernels already compute everything worth counting —
:class:`repro.core.born_octree.TraversalCounts`, per-source leaf
arrays, charge-bucket tables, steal statistics — so instrumentation is
a bulk copy into named metrics after each pass, not per-operation
bookkeeping.  Every helper is a no-op while observability is disabled
and is duck-typed (no imports from ``repro.core``/``repro.cluster``)
to keep this package dependency-free within the project.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

registry = get_registry()

#: Bucket edges for per-leaf visit/interaction histograms.
LEAF_HIST_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                    5000, 10000, 50000, 100000)


def record_traversal_metrics(prefix: str, counts: Any,
                             per_source: Any = None) -> None:
    """Publish one traversal's counters under ``prefix``.

    ``counts`` is a ``TraversalCounts``; MAC *accepts* are the pairs
    settled by the far-field approximation, *rejects* the pairs that
    had to descend (visits − accepts).
    """
    if not get_tracer().enabled:
        return
    accepts = int(counts.far_evaluations)
    visits = int(counts.frontier_visits)
    registry.counter(f"{prefix}.mac_accepts",
                     "pairs settled by the far-field MAC").inc(accepts)
    registry.counter(f"{prefix}.mac_rejects",
                     "pairs that descended (visits - accepts)").inc(
        max(0, visits - accepts))
    registry.counter(f"{prefix}.frontier_visits",
                     "(source, target) pairs examined").inc(visits)
    registry.counter(f"{prefix}.near_pair_blocks",
                     "exact leaf-leaf blocks").inc(
        int(counts.near_pair_blocks))
    registry.counter(f"{prefix}.exact_interactions",
                     "point-point exact terms").inc(
        int(counts.exact_interactions))
    if per_source is not None:
        registry.histogram(f"{prefix}.leaf_visits",
                           "per-source-leaf frontier visits",
                           bounds=LEAF_HIST_BOUNDS
                           ).observe_many(per_source.visits)
        registry.histogram(f"{prefix}.leaf_exact_interactions",
                           "per-source-leaf exact terms",
                           bounds=LEAF_HIST_BOUNDS
                           ).observe_many(per_source.exact_interactions)


def record_bucket_metrics(buckets: Any) -> None:
    """Publish charge-bucket shape metrics (``ChargeBuckets``)."""
    if not get_tracer().enabled:
        return
    table = np.asarray(buckets.table)
    registry.gauge("epol.nbuckets",
                   "Born-radius buckets M_eps").set(table.shape[1])
    # Occupancy: how many of a node's M_eps buckets hold charge — the
    # quantity that decides the far-field kernel's effective cost.
    registry.histogram("epol.bucket_occupancy",
                       "nonzero buckets per octree node",
                       bounds=tuple(range(1, table.shape[1] + 2))
                       ).observe_many((table != 0.0).sum(axis=1))


def record_steal_stats(steals: int, failed: int,
                       scope: str = "intra") -> None:
    """Publish one parallel region's steal totals (scope: intra/cross)."""
    if not get_tracer().enabled:
        return
    registry.counter(f"workstealing.{scope}.steals",
                     "successful steal attempts").inc(int(steals))
    registry.counter(f"workstealing.{scope}.failed_steals",
                     "failed steal attempts").inc(int(failed))
