"""Runtime lock-order witness for the threaded serve stack.

The static analyzer (:mod:`repro.lint.concurrency`, rules
RPR201–RPR205) proves lock discipline over the *source*; this module
witnesses it over an actual *execution*.  A :class:`LockWitness`
records, per thread, the order in which named locks are acquired and
folds every observation into a runtime lock-order graph:

* an edge ``A → B`` means some thread acquired ``B`` while holding
  ``A``;
* a cycle in that graph is a deadlock schedule the run merely got
  lucky with — :meth:`LockWitness.assert_acyclic` turns it into a
  hard failure at teardown (the pytest fixture ``lock_witness`` and
  ``repro serve --lock-witness`` both do this);
* held-time histograms (``lock.held_seconds.<name>``), acquisition
  and contention counters are exported to the :mod:`repro.obs`
  metrics registry, and the witnessed timeline dumps as a
  Chrome-trace-compatible artifact (one ``lock:<name>`` slice per
  held region).

Instrumentation is **feature-flagged at construction time**: the
serve stack builds its primitives through :func:`named_lock` /
:func:`named_condition`.  While no witness is installed those return
raw ``threading.Lock`` / ``threading.Condition`` objects — the
disabled path adds *zero* per-acquisition work, keeping the repo's
<2 % overhead bound trivially (guarded by
``tests/obs/test_lockwitness.py``).  With a witness installed they
return :class:`WitnessedLock` wrappers (and conditions bound to
them), so even a ``Condition.wait`` shows up as the release/reacquire
pair it really is.

Lock *names* are the identity: every ``SolveService`` names its lock
``serve.service._lock``, so the witnessed graph speaks the same
per-class vocabulary as the static rules.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

__all__ = [
    "HELD_BOUNDS_SECONDS",
    "LockOrderError",
    "LockWitness",
    "WitnessedLock",
    "named_lock",
    "named_condition",
    "install",
    "uninstall",
    "active_witness",
]

#: Histogram bucket edges for lock held time (seconds): lock regions
#: are short, so the grid starts at 1 µs.
HELD_BOUNDS_SECONDS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 5.0)

#: Cap on stored Chrome-trace events; edges and counters keep
#: accumulating after the cap (dropped events are counted).
DEFAULT_MAX_EVENTS = 100_000


class LockOrderError(AssertionError):
    """The witnessed lock-order graph contains a cycle."""

    def __init__(self, cycles: List[List[str]]) -> None:
        self.cycles = cycles
        rendered = "; ".join(" -> ".join(c + [c[0]]) for c in cycles)
        super().__init__(
            f"witnessed lock-order graph is cyclic: {rendered} — two "
            f"threads taking these locks in opposite orders can "
            f"deadlock")


class WitnessedLock:
    """A ``threading.Lock`` that reports to a :class:`LockWitness`.

    Implements the full lock protocol (``acquire``/``release``/
    context manager/``locked``), so a ``threading.Condition`` built on
    top of one keeps working — including ``wait()``, whose internal
    release/reacquire is witnessed like any other transition.
    """

    __slots__ = ("name", "_raw", "_witness")

    def __init__(self, witness: "LockWitness", name: str) -> None:
        self.name = name
        self._raw = threading.Lock()
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._raw.acquire(False)
        contended = not got
        if not got:
            if not blocking:
                # Condition._is_owned probes with acquire(False); a
                # failed non-blocking try is not contention.
                return False
            got = self._raw.acquire(True, timeout)
        if got:
            self._witness._on_acquire(self.name, contended)
        return got

    def release(self) -> None:
        self._witness._on_release(self.name)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # noqa: D105 — debugging aid
        state = "locked" if self._raw.locked() else "unlocked"
        return f"<WitnessedLock {self.name!r} {state}>"


class _HeldStack(threading.local):
    """Per-thread stack of (lock name, acquire perf_counter_ns)."""

    def __init__(self) -> None:
        self.stack: List[Tuple[str, int]] = []


class LockWitness:
    """Records actual lock-acquisition order into a runtime graph.

    Thread-safe; one instance witnesses every lock it wrapped, across
    however many services/queues/caches were built while it was
    installed.  The witness's own bookkeeping lock is a raw
    ``threading.Lock`` and is never witnessed (no recursion).
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._held = _HeldStack()
        self._edges: Dict[Tuple[str, str], int] = {}   # guarded-by: _lock
        self._events: List[Dict[str, Any]] = []        # guarded-by: _lock
        self._tids: Dict[int, int] = {}                # guarded-by: _lock
        self._acquisitions: Dict[str, int] = {}        # guarded-by: _lock
        self._contentions: Dict[str, int] = {}         # guarded-by: _lock
        self._dropped_events = 0                       # guarded-by: _lock
        self._epoch_ns = time.perf_counter_ns()

    # -- instrumentation callbacks -----------------------------------------

    def _on_acquire(self, name: str, contended: bool) -> None:
        now = time.perf_counter_ns()
        stack = self._held.stack
        new_edges = [(held, name) for held, _ in stack if held != name]
        stack.append((name, now))
        with self._lock:
            self._acquisitions[name] = \
                self._acquisitions.get(name, 0) + 1
            if contended:
                self._contentions[name] = \
                    self._contentions.get(name, 0) + 1
            for edge in new_edges:
                self._edges[edge] = self._edges.get(edge, 0) + 1
        if contended and get_tracer().enabled:
            get_registry().counter(
                f"lock.contention.{name}",
                "acquisitions that found the lock held").inc()

    def _on_release(self, name: str) -> None:
        now = time.perf_counter_ns()
        stack = self._held.stack
        t0 = None
        # Releases are almost always LIFO, but scan backwards so a
        # non-nested release cannot corrupt the stack.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == name:
                t0 = stack[i][1]
                del stack[i]
                break
        if t0 is None:
            return  # release of a lock acquired before installation
        held_s = (now - t0) / 1e9
        self._record_event(name, t0, now)
        if get_tracer().enabled:
            get_registry().histogram(
                f"lock.held_seconds.{name}",
                "time the lock was held per acquisition",
                bounds=HELD_BOUNDS_SECONDS).observe(held_s)

    def _record_event(self, name: str, t0_ns: int, t1_ns: int) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped_events += 1
                return
            ident = threading.get_ident()
            tid = self._tids.setdefault(ident, len(self._tids))
            self._events.append({
                "name": f"lock:{name}", "cat": "lock", "ph": "X",
                "ts": (t0_ns - self._epoch_ns) / 1e3,
                "dur": (t1_ns - t0_ns) / 1e3,
                "pid": 2, "tid": tid})

    # -- the witnessed graph -----------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of edge → observation count."""
        with self._lock:
            return dict(self._edges)

    def graph(self) -> Dict[str, List[str]]:
        """Adjacency view: lock name → sorted successor names."""
        adj: Dict[str, List[str]] = {}
        for (a, b) in self.edges():
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        return {k: sorted(v) for k, v in sorted(adj.items())}

    def lock_names(self) -> List[str]:
        with self._lock:
            return sorted(self._acquisitions)

    def contention(self, name: str) -> int:
        with self._lock:
            return self._contentions.get(name, 0)

    def cycles(self) -> List[List[str]]:
        """Cycles in the witnessed graph ([] = acyclic).

        Returns each strongly connected component with more than one
        node (plus self-loops) as a node list.
        """
        adj = self.graph()
        return _cyclic_components(adj)

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderError` if any cycle was witnessed."""
        found = self.cycles()
        if found:
            raise LockOrderError(found)

    # -- export ------------------------------------------------------------

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        with self._lock:
            n_locks = len(self._acquisitions)
            n_acq = sum(self._acquisitions.values())
            n_con = sum(self._contentions.values())
            n_edges = len(self._edges)
        found = self.cycles()
        verdict = "acyclic" if not found else \
            f"CYCLIC ({len(found)} cycle(s))"
        return (f"lock witness: {n_locks} locks, {n_acq} acquisitions "
                f"({n_con} contended), {n_edges} order edges — "
                f"{verdict}")

    def chrome_trace(self) -> Dict[str, Any]:
        """Perfetto-loadable document: held-region slices per thread,
        plus the witnessed graph under ``otherData.lockGraph``."""
        with self._lock:
            events = list(self._events)
            tids = dict(self._tids)
            dropped = self._dropped_events
        meta = [{"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
                 "args": {"name": "lock witness"}}]
        for ident, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append({"name": "thread_name", "ph": "M", "pid": 2,
                         "tid": tid, "args": {"name": f"thread {tid}"}})
        doc: Dict[str, Any] = {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "lockGraph": {f"{a} -> {b}": n
                              for (a, b), n in sorted(self.edges().items())},
                "cycles": [" -> ".join(c) for c in self.cycles()],
            },
        }
        if dropped:
            doc["otherData"]["droppedEvents"] = dropped
        return doc

    def write_chrome_trace(self, path: str) -> str:
        import json
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, indent=None,
                      separators=(",", ":"))
        return path


def _cyclic_components(adj: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCC, keeping components that contain a cycle."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative DFS (lock graphs are tiny, but recursion limits
        # are a silly way to die in a linter).
        work: List[Tuple[str, int]] = [(v, 0)]
        while work:
            node, pi = work.pop()
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            succs = adj.get(node, [])
            for i in range(pi, len(succs)):
                w = succs[i]
                if w not in index:
                    work.append((node, i + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack.get(w):
                    low[node] = min(low[node], index[w])
            if recurse:
                continue
            if low[node] == index[node]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == node:
                        break
                comp.reverse()
                if len(comp) > 1 or node in adj.get(node, []):
                    out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)
    return out


# ---------------------------------------------------------------------------
# Feature flag + construction-time factories
# ---------------------------------------------------------------------------

#: The installed witness (None = instrumentation off).  Only read at
#: *construction* time by the factories below, so installing/removing
#: a witness never changes the behaviour of locks that already exist.
_active: Optional[LockWitness] = None


def install(witness: LockWitness) -> LockWitness:
    """Make ``witness`` the active one; locks built from now on are
    witnessed.  Install *before* constructing the service under test."""
    global _active
    _active = witness
    return witness


def uninstall() -> None:
    """Deactivate witnessing; existing witnessed locks keep reporting
    to the witness they were built with."""
    global _active
    _active = None


def active_witness() -> Optional[LockWitness]:
    return _active


def named_lock(name: str) -> Union[threading.Lock, WitnessedLock]:
    """A lock called ``name``: raw ``threading.Lock`` while no witness
    is installed (zero overhead), witnessed wrapper otherwise."""
    witness = _active
    if witness is None:
        return threading.Lock()
    return WitnessedLock(witness, name)


def named_condition(name: str,
                    lock: Union[threading.Lock, WitnessedLock, None]
                    = None) -> threading.Condition:
    """A condition called ``name`` over ``lock`` (or a fresh
    :func:`named_lock` when omitted).

    Pass the owning object's (possibly witnessed) lock so waiters and
    mutators share one witness identity — ``Condition.wait`` then
    records the release/reacquire of *that* lock, exactly what the
    runtime order graph needs.
    """
    if lock is None:
        lock = named_lock(name)
    return threading.Condition(lock)
