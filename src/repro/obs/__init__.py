"""repro.obs — unified tracing + metrics for the solver and cluster.

A zero-dependency (numpy-only, like the rest of the project)
observability layer with three parts:

* a context-var **span tracer** (:mod:`repro.obs.tracer`) wired into
  the solver phases, the simmpi collectives and the work-stealing
  scheduler — near-zero overhead while disabled;
* a **metrics registry** (:mod:`repro.obs.metrics`) of counters /
  gauges / histograms capturing traversal statistics the kernels
  already compute (MAC accept/reject, near/far pairs, bucket
  occupancy, per-leaf visit distributions);
* **exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto-loadable, with per-rank tracks for simulated runs), plain
  JSON and Prometheus-style text.

Typical use::

    import repro.obs as obs

    obs.enable()
    with obs.span("my.phase", natoms=2000):
        ...                                  # nested spans attach here
    obs.write_chrome_trace("trace.json", tracer=obs.get_tracer())
    print(obs.metrics_to_prometheus(obs.registry))
    obs.disable()

One switch (:func:`enable`/:func:`disable`) gates both tracing and
metric capture; everything instrumented stays on the fast path while
it is off.  ``repro solve --trace out.json --metrics`` and the
``repro trace`` subcommand expose the same machinery on the command
line.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export import (
    SOLVER_PHASES,
    render_span_tree,
    chrome_trace,
    load_trace,
    metrics_to_json,
    metrics_to_prometheus,
    runstats_events,
    solver_phase_times,
    trace_summary,
    tracer_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.instrument import (
    record_bucket_metrics,
    record_steal_stats,
    record_traversal_metrics,
)
from repro.obs.lockwitness import (
    LockOrderError,
    LockWitness,
    WitnessedLock,
    named_condition,
    named_lock,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracer import (
    REAL_PID,
    VIRTUAL_PID,
    Span,
    Tracer,
    get_tracer,
    traced,
)

#: Process-wide metrics registry (shared with :mod:`repro.obs.instrument`).
registry = get_registry()


def enable(reset: bool = False) -> None:
    """Turn on tracing + metric capture (optionally from a clean slate)."""
    if reset:
        get_tracer().reset()
        registry.reset()
    get_tracer().enable()


def disable() -> None:
    """Turn off tracing + metric capture (collected data is kept)."""
    get_tracer().disable()


def is_enabled() -> bool:
    return get_tracer().enabled


def span(name: str, cat: str = "solver", **args: Any):
    """Open a span on the process tracer (see :meth:`Tracer.span`)."""
    return get_tracer().span(name, cat, **args)


def instant(name: str, cat: str = "solver", **args: Any) -> None:
    """Record a point event on the process tracer."""
    get_tracer().instant(name, cat, **args)


__all__ = [
    "SOLVER_PHASES",
    "REAL_PID",
    "VIRTUAL_PID",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
    "get_tracer",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "instant",
    "chrome_trace",
    "tracer_events",
    "runstats_events",
    "write_chrome_trace",
    "load_trace",
    "validate_chrome_trace",
    "trace_summary",
    "render_span_tree",
    "solver_phase_times",
    "traced",
    "metrics_to_json",
    "metrics_to_prometheus",
    "LockOrderError",
    "LockWitness",
    "WitnessedLock",
    "named_condition",
    "named_lock",
    "record_traversal_metrics",
    "record_bucket_metrics",
    "record_steal_stats",
]
