"""Context-var span tracer: nested, thread-safe, near-zero overhead off.

Two timelines share one event buffer:

* **real time** — :meth:`Tracer.span` / :meth:`Tracer.instant` stamp
  events with ``perf_counter_ns`` relative to the tracer epoch; one
  track per OS thread (the simmpi rank threads are named, so a
  ``run_fig4_simmpi`` run shows one real track per rank);
* **virtual time** — :meth:`Tracer.virtual_span` /
  :meth:`Tracer.virtual_instant` stamp events with the simulated
  cluster's virtual seconds; one track per MPI rank under a separate
  process group (:data:`VIRTUAL_PID`).

Events are stored directly in Chrome trace-event form (``ph``/``ts``/
``dur``/``pid``/``tid``, microsecond timestamps), so export is a JSON
dump plus metadata records.  Span nesting is tracked through a
``contextvars.ContextVar``: each thread (and each simmpi rank thread)
carries its own current-span id, so concurrent ranks never corrupt each
other's parent chains.

When the tracer is disabled — the default — ``span()`` builds one
small object and ``__enter__``/``__exit__`` reduce to a single
attribute test each, so instrumented hot paths stay within the
benchmark noise floor (guarded by ``tests/obs/test_tracer.py``).
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

#: ``pid`` used by real-time tracks (one per OS thread).
REAL_PID = 1
#: ``pid`` used by virtual-time tracks (one per simulated MPI rank).
VIRTUAL_PID = 100

#: Current span id of the calling thread/context (0 = no open span).
_current_span: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_obs_current_span", default=0)


class Span:
    """Context manager for one traced region.

    Instances are created unconditionally by :meth:`Tracer.span`; all
    real work is skipped unless the tracer was enabled at entry.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_t0_ns", "_token",
                 "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0_ns = 0
        self._token: Optional[contextvars.Token] = None
        self.span_id = 0
        self.parent_id = 0

    def __enter__(self) -> "Span":
        tr = self._tracer
        if not tr.enabled:
            return self
        self.span_id = next(tr._ids)
        self.parent_id = _current_span.get()
        self._token = _current_span.set(self.span_id)
        self._t0_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is None:  # entered while disabled
            return False
        t1_ns = time.perf_counter_ns()
        _current_span.reset(self._token)
        self._token = None
        self._tracer._emit_real(self.name, self.cat, self._t0_ns, t1_ns,
                                self.span_id, self.parent_id, self.args)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe collector of trace events.

    One module-level instance (see :func:`get_tracer`) serves the whole
    process; tests may build private tracers.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []      # guarded-by: _lock
        self._ids = itertools.count(1)
        self._tids: Dict[int, int] = {}              # guarded-by: _lock
        self._thread_names: Dict[int, str] = {}      # guarded-by: _lock
        self._epoch_ns = time.perf_counter_ns()

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected events and restart the clock/id counters."""
        with self._lock:
            self._events = []
            self._ids = itertools.count(1)
            self._tids = {}
            self._thread_names = {}
            self._epoch_ns = time.perf_counter_ns()

    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the collected events (copies the list, not the
        event dicts)."""
        with self._lock:
            return list(self._events)

    def thread_names(self) -> Dict[int, str]:
        """Compact tid → thread-name map for metadata records."""
        with self._lock:
            return dict(self._thread_names)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "solver", **args: Any):
        """Open a (potentially nested) real-time span::

            with tracer.span("born.approx_integrals", natoms=m):
                ...

        While the tracer is disabled this returns a shared no-op span
        (a span opened in the disabled state is never recorded, even if
        tracing is enabled before it closes).
        """
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "solver", **args: Any) -> None:
        """Record a real-time point event."""
        if not self.enabled:
            return
        ts = (time.perf_counter_ns() - self._epoch_ns) / 1e3
        self._append({"name": name, "cat": cat, "ph": "i", "ts": ts,
                      "s": "t", "pid": REAL_PID, "tid": self._tid(),
                      **({"args": args} if args else {})})

    def virtual_span(self, name: str, cat: str, rank: int,
                     t0: float, t1: float, **args: Any) -> None:
        """Record a completed span on a rank's *virtual* timeline.

        ``t0``/``t1`` are virtual seconds since the simulated run
        started; the event lands on the ``VIRTUAL_PID`` process group,
        one track (tid) per rank.
        """
        if not self.enabled:
            return
        self._append({"name": name, "cat": cat, "ph": "X",
                      "ts": t0 * 1e6, "dur": max(0.0, (t1 - t0) * 1e6),
                      "pid": VIRTUAL_PID, "tid": int(rank),
                      **({"args": args} if args else {})})

    def virtual_instant(self, name: str, cat: str, rank: int,
                        t: float, **args: Any) -> None:
        """Record a point event on a rank's virtual timeline."""
        if not self.enabled:
            return
        self._append({"name": name, "cat": cat, "ph": "i", "ts": t * 1e6,
                      "s": "t", "pid": VIRTUAL_PID, "tid": int(rank),
                      **({"args": args} if args else {})})

    # -- internals ---------------------------------------------------------

    def _emit_real(self, name: str, cat: str, t0_ns: int, t1_ns: int,
                   span_id: int, parent_id: int,
                   args: Optional[Dict[str, Any]]) -> None:
        ev_args: Dict[str, Any] = dict(args) if args else {}
        ev_args["span_id"] = span_id
        if parent_id:
            ev_args["parent_id"] = parent_id
        self._append({"name": name, "cat": cat, "ph": "X",
                      "ts": (t0_ns - self._epoch_ns) / 1e3,
                      "dur": (t1_ns - t0_ns) / 1e3,
                      "pid": REAL_PID, "tid": self._tid(),
                      "args": ev_args})

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
                self._thread_names[tid] = threading.current_thread().name
        return tid


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _tracer


def traced(name: str, cat: str = "solver") -> Callable:
    """Decorator: run the function inside a span when tracing is on.

    The disabled path adds one wrapper call and one attribute test to
    the decorated function — cheap enough for the chunky traversal
    kernels this is applied to (not for per-element inner loops).
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _tracer.enabled:
                return fn(*args, **kwargs)
            with _tracer.span(name, cat):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
