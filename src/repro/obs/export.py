"""Exporters: Chrome trace-event JSON, plain JSON and Prometheus text.

The Chrome trace-event format (the ``traceEvents`` JSON consumed by
Perfetto / ``chrome://tracing``) is the interchange target: real solver
spans become one track per OS thread, and simulated cluster timelines
(:class:`repro.cluster.trace.RunStats`) become one track per MPI rank
so a Fig. 4 schedule can be inspected visually.  See
``docs/OBSERVABILITY.md`` for the reading guide.

Everything here is duck-typed against :class:`RunStats` (``processes``,
``threads``, ``ranks``, ``phases``, ``timeline`` attributes) to keep
``repro.obs`` import-independent from the cluster layer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.tracer import REAL_PID, VIRTUAL_PID, Tracer

#: Canonical solver phases, in execution order, with the span names
#: that contribute to each (used by ``repro solve`` per-phase timing).
SOLVER_PHASES = (
    ("sample_surface", ("solve.sample_surface",)),
    ("octree_build", ("solve.octree_build",)),
    ("born", ("born.approx_integrals",)),
    ("push", ("born.push_integrals",)),
    ("epol", ("epol.buckets", "epol.traversal")),
)


# ---------------------------------------------------------------------------
# Chrome trace assembly
# ---------------------------------------------------------------------------


def _metadata_event(pid: int, tid: Optional[int], name: str,
                    value: str) -> Dict[str, Any]:
    ev: Dict[str, Any] = {"name": name, "ph": "M", "pid": pid, "ts": 0,
                          "args": {"name": value}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def tracer_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Tracer snapshot + metadata records naming the real tracks."""
    events = tracer.events()
    meta = [_metadata_event(REAL_PID, None, "process_name", "repro solver")]
    for tid, name in sorted(tracer.thread_names().items()):
        meta.append(_metadata_event(REAL_PID, tid, "thread_name", name))
    if any(ev.get("pid") == VIRTUAL_PID for ev in events):
        meta.append(_metadata_event(VIRTUAL_PID, None, "process_name",
                                    "simulated cluster (virtual time)"))
        ranks = sorted({ev["tid"] for ev in events
                       if ev.get("pid") == VIRTUAL_PID})
        for r in ranks:
            meta.append(_metadata_event(VIRTUAL_PID, r, "thread_name",
                                        f"rank {r}"))
    return meta + events


def runstats_events(stats: Any, pid: int = VIRTUAL_PID + 1
                    ) -> List[Dict[str, Any]]:
    """Convert a simulated run into per-rank Chrome trace tracks.

    ``stats`` is a :class:`repro.cluster.trace.RunStats`.  When its
    ``timeline`` is populated (``simulate_fig4`` does this) every
    :class:`PhaseSlice` becomes one complete event on its rank's track,
    comm slices carrying ``payload_bytes``; otherwise the per-phase
    totals are laid out sequentially on a single summary track.
    Injected faults (``fault_events``) become instant events on the
    faulty rank's track, so Perfetto shows exactly when each fired.
    """
    label = (f"simulated run P={stats.processes} p={stats.threads} "
             f"(virtual time)")
    events: List[Dict[str, Any]] = [
        _metadata_event(pid, None, "process_name", label)]
    faults = [{"name": f"fault.{e.kind}", "cat": "fault", "ph": "i",
               "s": "t", "ts": e.t * 1e6, "pid": pid, "tid": e.rank,
               "args": {"detail": e.detail}}
              for e in getattr(stats, "fault_events", None) or []]
    timeline = getattr(stats, "timeline", None) or []
    if timeline:
        for r in sorted({s.rank for s in timeline}):
            events.append(_metadata_event(pid, r, "thread_name",
                                          f"rank {r}"))
        for s in timeline:
            ev: Dict[str, Any] = {
                "name": s.name, "cat": s.kind, "ph": "X",
                "ts": s.t0 * 1e6, "dur": max(0.0, (s.t1 - s.t0) * 1e6),
                "pid": pid, "tid": s.rank,
            }
            args: Dict[str, Any] = {"kind": s.kind}
            if s.payload_bytes:
                args["payload_bytes"] = int(s.payload_bytes)
            ev["args"] = args
            events.append(ev)
        return events + faults
    if faults:
        for r in sorted({f["tid"] for f in faults}):
            events.append(_metadata_event(pid, r, "thread_name",
                                          f"rank {r}"))
    events.append(_metadata_event(pid, 0, "thread_name", "phases"))
    t = 0.0
    for name, seconds in getattr(stats, "phases", {}).items():
        events.append({"name": name, "cat": "phase", "ph": "X",
                       "ts": t * 1e6, "dur": max(0.0, seconds * 1e6),
                       "pid": pid, "tid": 0})
        t += seconds
    return events + faults


def chrome_trace(tracer: Optional[Tracer] = None,
                 runstats: Any = None,
                 metrics: Optional[MetricsRegistry] = None
                 ) -> Dict[str, Any]:
    """Assemble a Perfetto-loadable trace document.

    Any combination of sources may be given; metrics (if any) ride
    along under ``otherData`` so one file carries the whole story.
    """
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        events.extend(tracer_events(tracer))
    if runstats is not None:
        stats_list = runstats if isinstance(runstats, (list, tuple)) \
            else [runstats]
        for i, stats in enumerate(stats_list):
            events.extend(runstats_events(stats, pid=VIRTUAL_PID + 1 + i))
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics.collect()}
    return doc


def write_chrome_trace(path: str,
                       tracer: Optional[Tracer] = None,
                       runstats: Any = None,
                       metrics: Optional[MetricsRegistry] = None) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns ``path``."""
    doc = chrome_trace(tracer=tracer, runstats=runstats, metrics=metrics)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
    return path


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# Validation / inspection (repro trace --check / --summary)
# ---------------------------------------------------------------------------


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema check against the trace-event format; [] when valid."""
    problems: List[str] = []
    if isinstance(doc, list):
        events = doc
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level 'traceEvents' must be a list"]
    else:
        return ["trace must be a JSON object or array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing 'ph'")
            continue
        if ph in ("X", "B", "E", "i", "I", "C"):
            for key in ("ts", "pid", "tid"):
                if not isinstance(ev.get(key), (int, float)):
                    problems.append(f"{where}: '{ph}' event missing "
                                    f"numeric '{key}'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: 'X' event missing numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative 'dur'")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: 'M' event missing 'args'")
        if len(problems) > 50:
            problems.append("… (truncated)")
            break
    return problems


def trace_summary(doc: Any) -> str:
    """Human summary: per-track event counts and per-name span totals."""
    events = doc if isinstance(doc, list) else doc.get("traceEvents", [])
    tracks: Dict[Any, int] = {}
    names: Dict[str, List[float]] = {}
    track_names: Dict[Any, str] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                key = (ev.get("pid"), ev.get("tid"))
                track_names[key] = ev.get("args", {}).get("name", "")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        tracks[key] = tracks.get(key, 0) + 1
        if ph == "X":
            names.setdefault(ev.get("name", "?"), []).append(
                float(ev.get("dur", 0.0)))
    lines = [f"events: {sum(tracks.values())} on {len(tracks)} track(s)"]
    for key in sorted(tracks, key=str):
        label = track_names.get(key, f"pid={key[0]} tid={key[1]}")
        lines.append(f"  track {label!r:30s} {tracks[key]:6d} events")
    if names:
        lines.append("span totals (ms):")
        for name in sorted(names, key=lambda n: -sum(names[n])):
            durs = names[name]
            lines.append(f"  {name:32s} n={len(durs):<6d} "
                         f"total={sum(durs) / 1e3:10.3f}")
    return "\n".join(lines)


def render_span_tree(tracer: Tracer) -> str:
    """Indented real-time span tree with durations (CLI per-phase view).

    Uses the ``span_id``/``parent_id`` links the tracer records, so
    nesting is exact even across recursive or repeated phases.
    """
    spans = [ev for ev in tracer.events()
             if ev.get("ph") == "X" and ev.get("pid") == REAL_PID]
    by_parent: Dict[int, List[Dict[str, Any]]] = {}
    for ev in spans:
        args = ev.get("args", {})
        by_parent.setdefault(args.get("parent_id", 0), []).append(ev)

    lines: List[str] = []

    def emit(parent: int, depth: int) -> None:
        for ev in sorted(by_parent.get(parent, []),
                         key=lambda e: e["ts"]):
            lines.append(f"{'  ' * depth}{ev['name']:<{38 - 2 * depth}s} "
                         f"{ev['dur'] / 1e6:9.3f} s")
            emit(ev.get("args", {}).get("span_id", -1), depth + 1)

    emit(0, 0)
    return "\n".join(lines)


def solver_phase_times(tracer: Tracer) -> Dict[str, float]:
    """Seconds per canonical solver phase from a tracer snapshot.

    Phases with no recorded spans are omitted (e.g. no ``epol`` spans
    when only Born radii were computed).
    """
    totals: Dict[str, float] = {}
    for ev in tracer.events():
        if ev.get("ph") != "X" or ev.get("pid") != REAL_PID:
            continue
        for phase, span_names in SOLVER_PHASES:
            if ev["name"] in span_names:
                totals[phase] = totals.get(phase, 0.0) + ev["dur"] / 1e6
    return {phase: totals[phase] for phase, _ in SOLVER_PHASES
            if phase in totals}


# ---------------------------------------------------------------------------
# Metrics exporters
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_"
                      for c in name)
    return f"repro_{cleaned}"


def metrics_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry.collect(), indent=indent, sort_keys=True)


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (counters, gauges and histograms)."""
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        if metric is None:
            continue
        prom = _prom_name(name)
        if metric.help:
            lines.append(f"# HELP {prom} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value:g}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {metric.value:g}")
        else:
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds,
                                    metric.bucket_counts()):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{bound:g}"}} '
                             f"{cumulative}")
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {metric.sum:g}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
