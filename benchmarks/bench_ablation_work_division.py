"""Ablation (paper §IV-A): node-based vs atom-based work division.

Paper result: with node-based division the approximation error is
*constant* in the process count (each rank always handles whole tree
nodes); with atom-based division the error *varies* with P because
division boundaries split tree nodes differently.  Node division is
also slightly faster (each rank prunes to its leaf segment instead of
re-traversing the whole tree).
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import PAPER_PARAMS, suite_molecule
from repro.parallel import run_fig4_simmpi


def _energies(work_division: str, process_counts):
    mol = suite_molecule(1500)
    params = PAPER_PARAMS.with_(approx_math=False)
    out = {}
    for P in process_counts:
        res = run_fig4_simmpi(mol, params, processes=P,
                              work_division=work_division)
        out[P] = (res.energy, res.stats.wall_seconds)
    return out


def test_work_division_error_stability(benchmark, record_table):
    counts = (1, 2, 3, 5, 8)
    node = run_once(benchmark, _energies, "node", counts)
    atom = _energies("atom", counts)

    lines = ["work-division ablation (1500 atoms, eps=0.9):",
             "P | node E (kcal/mol) | atom E (kcal/mol)"]
    for P in counts:
        lines.append(f"{P} | {node[P][0]:.10f} | {atom[P][0]:.10f}")
    record_table("ablation_work_division", "\n".join(lines),
                 rows=[{"P": P,
                        "node_energy": node[P][0],
                        "node_wall_seconds": node[P][1],
                        "atom_energy": atom[P][0],
                        "atom_wall_seconds": atom[P][1]}
                       for P in counts],
                 config={"natoms": 1500, "eps": 0.9})

    node_energies = np.array([node[P][0] for P in counts])
    atom_energies = np.array([atom[P][0] for P in counts])
    # Node-based: identical result at every P (bit-level up to fp
    # reduction order).
    assert np.ptp(node_energies) <= 1e-9 * abs(node_energies[0])
    # Atom-based: the result genuinely moves with P.
    assert np.ptp(atom_energies) > np.ptp(node_energies)
    # Both stay accurate (the variation is within the eps envelope).
    assert np.all(np.abs(atom_energies - node_energies[0])
                  < 0.02 * abs(node_energies[0]))
