"""Extension bench: data distribution (paper's future work, §VI).

Work-division replicates the whole molecule on every rank; the
data-distributed solver stores only a Morton block per rank plus tree
summaries and ghosts.  This bench reports per-rank memory and ghost
traffic against the work-division baseline — the property the paper
conjectures would be "interesting to explore".
"""

from conftest import run_once

from repro.analysis.experiments import suite_molecule
from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.parallel import run_fig4_simmpi
from repro.parallel.datadist import run_data_distributed


def _run():
    mol = suite_molecule(2800)
    params = ApproxParams(eps_born=0.9, eps_epol=0.9)
    rows = []
    wd = run_fig4_simmpi(mol, params, processes=8)
    for P in (2, 4, 8):
        dd = run_data_distributed(mol, params, processes=P)
        rows.append((P, max(dd.rank_bytes), dd.ghost_qpoints,
                     dd.ghost_atoms, dd.energy))
    return mol, wd, rows


def test_datadist_memory_scaling(benchmark, record_table):
    mol, wd, rows = run_once(benchmark, _run)
    e_naive = epol_naive(mol, born_radii_naive_r6(mol))

    lines = [f"data distribution on {mol.natoms} atoms "
             f"(work-division mem/rank: "
             f"{wd.stats.memory_per_process() / 1e6:.2f} MB):",
             "P | mem/rank (MB) | ghost q-points | ghost atoms | E (kcal/mol)"]
    for P, mem, gq, ga, e in rows:
        lines.append(f"{P} | {mem / 1e6:13.2f} | {gq:14d} | {ga:11d} | "
                     f"{e:.2f}")
    record_table("datadist", "\n".join(lines),
                 rows=[{"P": P, "max_rank_bytes": mem,
                        "ghost_qpoints": gq, "ghost_atoms": ga,
                        "energy": e}
                       for P, mem, gq, ga, e in rows],
                 config={"natoms": mol.natoms,
                         "workdiv_bytes_per_rank":
                             wd.stats.memory_per_process()})

    mems = [mem for _, mem, _, _, _ in rows]
    # Per-rank memory decreases with P …
    assert mems[-1] < mems[0]
    # … and beats full replication by P = 8.
    assert mems[-1] < wd.stats.memory_per_process()
    # Accuracy stays inside the ε envelope at every P.
    for _, _, _, _, e in rows:
        assert abs(e - e_naive) / abs(e_naive) < 0.02
