"""Fleet scale-out: projected throughput vs shard count, cold vs warm.

This container pins every thread to a single core, so fleet wall-clock
cannot show scale-out directly.  What sharding actually buys — one
core (or host) per shard — is captured by the **per-shard critical
path**: the busiest shard's summed service seconds.  Projected
throughput is ``requests / critical_path`` (the rate an N-core
deployment sustains, since shards share nothing but the disk tier),
reported alongside the raw wall-clock for honesty.

Acceptance: warm projected throughput at 4 shards ≥ 1.5× the 1-shard
fleet, warm energies bitwise equal to cold and identical across every
shard count, and the machine-readable summary lands at the repo root
as ``BENCH_fleet_scaleout.json``.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.fleet import ShardedFleet
from repro.molecules import synthetic_protein
from repro.serve import SolveRequest

SHARDS = (1, 2, 4)
MOLECULES = 12
WARM_REPEATS = 2
BASE_ATOMS = 180
STEP_ATOMS = 12

ROOT_JSON = Path(__file__).parents[1] / "BENCH_fleet_scaleout.json"


def _pool():
    return [synthetic_protein(BASE_ATOMS + STEP_ATOMS * i, seed=20 + i)
            for i in range(MOLECULES)]


def _requests(pool, tag, repeats=1):
    # Distinct idempotency keys so warm repeats exercise the shard
    # caches, not in-flight coalescing.
    return [SolveRequest(molecule=pool[i % MOLECULES],
                         idempotency_key=f"{tag}-{i}")
            for i in range(MOLECULES * repeats)]


def _pass(fleet, requests):
    tickets = [fleet.submit(r) for r in requests]
    assert fleet.drain(timeout=600.0)
    results = [t.result(timeout=1.0) for t in tickets]
    assert all(r.status == "ok" for r in results)
    busy = {}
    for r in results:
        busy[r.shard] = busy.get(r.shard, 0.0) + r.service_seconds
    critical = max(busy.values())
    return results, busy, critical


def _energy_map(results):
    return {r.key.rsplit("-", 1)[-1]: float(r.energy).hex()
            for r in results[:MOLECULES]}


def _run():
    rows = []
    reference = None
    pool = _pool()
    for shards in SHARDS:
        import time
        with ShardedFleet(shards=shards, queue_capacity=256) as fleet:
            t0 = time.perf_counter()
            cold_res, cold_busy, cold_crit = _pass(
                fleet, _requests(pool, f"cold{shards}"))
            cold_wall = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm_res, warm_busy, warm_crit = _pass(
                fleet, _requests(pool, f"warm{shards}",
                                 repeats=WARM_REPEATS))
            warm_wall = time.perf_counter() - t0
        assert all(r.cache == "epol" for r in warm_res), \
            "warm pass must be full epol hits"
        energies = _energy_map(cold_res)
        assert energies == _energy_map(warm_res), \
            "warm energies must be bitwise identical"
        if reference is None:
            reference = energies
        assert energies == reference, \
            "energies must not depend on the shard count"
        n_cold, n_warm = len(cold_res), len(warm_res)
        rows.append({
            "shards": shards,
            "cold_requests": n_cold,
            "warm_requests": n_warm,
            "cold_busy_seconds": sum(cold_busy.values()),
            "warm_busy_seconds": sum(warm_busy.values()),
            "cold_critical_path_seconds": cold_crit,
            "warm_critical_path_seconds": warm_crit,
            "cold_projected_rps": n_cold / cold_crit,
            "warm_projected_rps": n_warm / warm_crit,
            "cold_wall_seconds": cold_wall,
            "warm_wall_seconds": warm_wall,
            "per_shard_requests": {
                str(sid): sum(1 for r in cold_res if r.shard == sid)
                for sid in sorted(cold_busy)},
        })
    return rows


def test_fleet_scaleout(benchmark, record_table):
    rows = run_once(benchmark, _run)
    one = next(r for r in rows if r["shards"] == 1)
    four = next(r for r in rows if r["shards"] == 4)
    warm_speedup = (four["warm_projected_rps"]
                    / one["warm_projected_rps"])
    cold_speedup = (four["cold_projected_rps"]
                    / one["cold_projected_rps"])

    lines = [f"fleet scale-out ({MOLECULES} molecules, "
             f"{BASE_ATOMS}-{BASE_ATOMS + STEP_ATOMS * (MOLECULES - 1)}"
             f" atoms; projected = requests / busiest-shard seconds "
             f"on a 1-core container)"]
    for r in rows:
        lines.append(
            f"{r['shards']} shard(s): cold "
            f"{r['cold_projected_rps']:8.2f} req/s projected "
            f"(crit {r['cold_critical_path_seconds']:6.3f} s)   warm "
            f"{r['warm_projected_rps']:8.2f} req/s projected "
            f"(crit {r['warm_critical_path_seconds']:6.4f} s)")
    lines.append(f"projected speedup 4 shards vs 1: "
                 f"cold {cold_speedup:.2f}x, warm {warm_speedup:.2f}x "
                 f"(acceptance: warm >= 1.5x)")
    text = "\n".join(lines)
    config = {"shards": list(SHARDS), "molecules": MOLECULES,
              "warm_repeats": WARM_REPEATS,
              "atoms": [BASE_ATOMS + STEP_ATOMS * i
                        for i in range(MOLECULES)]}
    record_table("bench_fleet_scaleout", text, rows=rows, config=config)

    ROOT_JSON.write_text(json.dumps({
        "name": "fleet_scaleout",
        "config": config,
        "rows": rows,
        "warm_speedup_4v1": warm_speedup,
        "cold_speedup_4v1": cold_speedup,
        "acceptance": {"warm_speedup_4v1_min": 1.5,
                       "passed": warm_speedup >= 1.5},
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    assert warm_speedup >= 1.5, (
        f"4-shard warm projected throughput only {warm_speedup:.2f}x "
        f"the single shard")
