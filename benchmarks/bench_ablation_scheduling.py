"""Ablation: dynamic work stealing vs static intra-node partitioning.

The paper's hybrid relies on cilk++'s randomized work stealing inside
each rank.  This bench compares the simulated stealing schedule against
a static equal-count block split on the real (skewed) per-leaf costs of
a suite molecule — stealing should track the ideal makespan closely
while the static split eats the full imbalance.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import PAPER_PARAMS, _profile
from repro.cluster.costmodel import CostModel
from repro.cluster.workstealing import WorkStealingSim, static_block_makespan


def _leaf_costs():
    prof = _profile(9000, PAPER_PARAMS, "octree")
    cost = CostModel()
    bps = prof.born_per_source
    return cost.born_compute_seconds(
        bps.visits.astype(float), bps.far.astype(float),
        bps.exact_interactions.astype(float), True)


def test_stealing_vs_static(benchmark, record_table):
    costs = run_once(benchmark, _leaf_costs)
    p = 6
    ideal = float(np.sum(costs)) / p
    sim = WorkStealingSim(workers=p, seed=7)
    stats = sim.run(costs)
    static = static_block_makespan(costs, p)

    text = ("intra-node scheduling ablation (9000 atoms, p=6):\n"
            f"ideal balance: {ideal * 1e3:.3f} ms\n"
            f"work stealing: {stats.makespan * 1e3:.3f} ms "
            f"(util {stats.utilization:.3f}, {stats.steals} steals)\n"
            f"static blocks: {static * 1e3:.3f} ms")
    record_table("ablation_scheduling", text,
                 rows=[{"schedule": "ideal", "makespan": ideal},
                       {"schedule": "stealing",
                        "makespan": stats.makespan,
                        "utilization": stats.utilization,
                        "steals": stats.steals},
                       {"schedule": "static", "makespan": static}],
                 config={"natoms": 9000, "workers": p, "seed": 7})

    # Stealing lands within 15 % of perfect balance …
    assert stats.makespan < 1.15 * ideal
    # … and beats (or at worst matches) the static split.
    assert stats.makespan <= static * 1.02
