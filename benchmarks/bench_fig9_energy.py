"""Fig. 9: energy values computed by every algorithm.

Paper result: Amber, GBr⁶, Gromacs, NAMD and the octree solvers track
the naive energy closely; Tinker reports ≈70 % of the naive energy;
Tinker and GBr⁶ run out of memory above ~12k / ~13k atoms.
"""

from conftest import run_once

from repro.analysis.experiments import fig9_energy_values


def test_fig9_energy_values(benchmark, record_table):
    rows, text = run_once(benchmark, fig9_energy_values)
    record_table("fig9_energy", text, rows=rows,
                 config={"experiment": "fig9_energy_values"})

    for r in rows:
        ref = r["Naive"]
        # Octree tracks naive; at eps 0.9 per-molecule errors run up to
        # a few per cent (the paper's own Fig. 10 envelope).
        assert abs(r["OCT"] - ref) / abs(ref) < 0.03
        # HCT/OBC/GBr6 families track the naive energy.
        for name in ("Amber", "Gromacs", "NAMD", "GBr6"):
            if r[name] is not None:
                assert abs(r[name] - ref) / abs(ref) < 0.25, (name, r)
        # Tinker is systematically shifted (paper: ≈70 % of naive).
        if r["Tinker"] is not None:
            assert 0.3 < r["Tinker"] / ref < 0.9

    # OOM behaviour: Tinker/GBr6 die on the largest molecules only.
    big = [r for r in rows if r["natoms"] > 13500]
    for r in big:
        assert r["Tinker"] is None and r["GBr6"] is None
    small = [r for r in rows if r["natoms"] < 10000]
    for r in small:
        assert r["Tinker"] is not None and r["GBr6"] is not None
