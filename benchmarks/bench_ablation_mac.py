"""Ablation: the two readings of the Born-radius MAC (DESIGN.md §1).

``distance`` — far when ``r > (r_A+r_Q)(1+2/ε)`` (the Fig. 3 form; the
reading consistent with the paper's running times).  ``strict`` — the
§II prose bound ``(1+ε)^(1/6)`` on the distance ratio, which guarantees
per-term integrand error ≤ ε but accepts almost no far pairs at protein
scale.  The bench quantifies the trade: the strict MAC does many times
more exact work for an error improvement nobody can spend.
"""

import numpy as np
from conftest import run_once

from repro.config import ApproxParams
from repro.analysis.experiments import suite_molecule
from repro.core.born_naive import born_radii_naive_r6
from repro.core.born_octree import born_radii_octree


def _run(mac: str):
    mol = suite_molecule(5200)
    res = born_radii_octree(mol, ApproxParams(eps_born=0.9, born_mac=mac))
    return res


def test_born_mac_tradeoff(benchmark, record_table):
    dist = run_once(benchmark, _run, "distance")
    strict = _run("strict")
    mol = suite_molecule(5200)
    ref = born_radii_naive_r6(mol)

    err_d = float(np.mean(np.abs(dist.radii - ref) / ref))
    err_s = float(np.mean(np.abs(strict.radii - ref) / ref))
    text = (
        "Born MAC ablation (5200 atoms, eps_born=0.9):\n"
        f"distance: exact={dist.counts.exact_interactions} "
        f"far={dist.counts.far_evaluations} mean rel err={err_d:.2e}\n"
        f"strict:   exact={strict.counts.exact_interactions} "
        f"far={strict.counts.far_evaluations} mean rel err={err_s:.2e}")
    record_table(
        "ablation_born_mac", text,
        rows=[{"mac": "distance",
               "exact": dist.counts.exact_interactions,
               "far": dist.counts.far_evaluations, "err": err_d},
              {"mac": "strict",
               "exact": strict.counts.exact_interactions,
               "far": strict.counts.far_evaluations, "err": err_s}],
        config={"natoms": 5200, "eps_born": 0.9})

    # Strict MAC is (much) more exact work …
    assert strict.counts.exact_interactions > \
        2 * dist.counts.exact_interactions
    # … for an error both readings keep far below the ε target.
    assert err_d < 0.09
    assert err_s <= err_d
