"""Fig. 7: OCT_CILK vs OCT_MPI vs OCT_MPI+CILK across the suite.

Paper result (§V-C): OCT_CILK is fastest below ~2,500 atoms (no MPI
overhead, near-perfect work stealing); OCT_MPI overtakes it above
~2,500 and the gap widens; OCT_MPI is only slightly ahead of the hybrid
below ~7,500 atoms and the two converge beyond that.
"""

from conftest import run_once

from repro.analysis.experiments import fig7_octree_variants


def test_fig7_octree_variants(benchmark, record_table):
    rows, text = run_once(benchmark, fig7_octree_variants)
    record_table("fig7_octree_variants", text, rows=rows,
                 config={"experiment": "fig7_octree_variants"})

    by_size = {r["natoms"]: r for r in rows}
    # Crossover sits between 400 and 1,500 atoms at this suite's scale
    # (the paper's 2,500 on Lonestar4); stay clear of it on both sides.
    small = [n for n in by_size if n < 500]
    large = [n for n in by_size if n > 4000]
    # OCT_CILK wins small molecules …
    assert all(by_size[n]["OCT_CILK"] < by_size[n]["OCT_MPI"]
               for n in small)
    # … and loses the large ones to OCT_MPI.
    assert all(by_size[n]["OCT_MPI"] < by_size[n]["OCT_CILK"]
               for n in large)
    # Hybrid tracks OCT_MPI within ~35 % on large molecules ("similar
    # performance" past the crossover).
    for n in large:
        ratio = by_size[n]["OCT_MPI+CILK"] / by_size[n]["OCT_MPI"]
        assert 0.65 < ratio < 1.35
