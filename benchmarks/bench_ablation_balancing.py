"""Ablation: all three inter-rank balancing schemes head-to-head.

The paper ships static equal-count division and names two future-work
directions; this bench compares the trio on the same recorded work
profile: equal-count segments (paper), cost-aware segments, and
cross-rank work stealing.
"""

from conftest import run_once

from repro.analysis.experiments import PAPER_PARAMS, _profile
from repro.parallel import simulate_fig4


def _run():
    prof = _profile(9000, PAPER_PARAMS, "octree")
    out = {}
    for scheme in ("count", "weighted", "stealing"):
        out[scheme] = simulate_fig4(prof, 12, 1, seed=4, noise_sigma=0.0,
                                    segmenting=scheme).wall_seconds
    return out


def test_balancing_schemes(benchmark, record_table):
    out = run_once(benchmark, _run)
    base = out["count"]
    lines = ["inter-rank balancing ablation (9000 atoms, 12 ranks):"]
    for scheme, t in out.items():
        lines.append(f"{scheme:9s}: {t * 1e3:8.3f} ms "
                     f"({base / t:.2f}x vs count)")
    record_table("ablation_balancing", "\n".join(lines),
                 rows=[{"scheme": s, "wall_seconds": t}
                       for s, t in out.items()],
                 config={"natoms": 9000, "ranks": 12, "seed": 4})

    # Both future-work schemes recover imbalance lost to count division.
    assert out["weighted"] <= base * 1.02
    assert out["stealing"] <= base * 1.05