"""HTTP edge overhead: warm in-process solves vs the same over HTTP.

The edge's contract is that the wire adds *transport*, not *compute*:
the same recipe produces the bitwise-identical energy whether
submitted as a library call or POSTed to ``/v1/solve``.  This
benchmark measures what the transport costs on warm (epol-cache-hit)
requests — the regime where middleware overhead is most visible,
since the solve itself is microseconds.

Acceptance: every HTTP energy bitwise equals its in-process twin, and
zero requests fail in either path.  No latency bound is asserted
(single-core CI containers make wall-clock promises dishonest); the
per-request overhead lands in ``BENCH_http_edge.json`` at the repo
root for trend-watching.
"""

import json
import time
import urllib.request
from pathlib import Path

from conftest import run_once

from repro.edge import EdgeApp, EdgeServer, TenantConfig, TenantRegistry
from repro.molecules import synthetic_protein
from repro.serve import SolveRequest, SolveService

MOLECULES = 6
WARM_REPEATS = 4
BASE_ATOMS = 150
STEP_ATOMS = 10
TOKEN = "bench-secret"

ROOT_JSON = Path(__file__).parents[1] / "BENCH_http_edge.json"


def _recipes():
    return [(BASE_ATOMS + STEP_ATOMS * i, 40 + i)
            for i in range(MOLECULES)]


def _in_process(service, pool):
    """Warm pass through the library path; returns (hex map, seconds)."""
    t0 = time.perf_counter()
    tickets = [(seed, service.submit(SolveRequest(
        molecule=mol, idempotency_key=f"lib-{seed}-{rep}")))
        for rep in range(WARM_REPEATS)
        for (seed, mol) in pool.items()]
    outcomes = [(seed, t.result(timeout=300.0)) for seed, t in tickets]
    wall = time.perf_counter() - t0
    assert all(r.status == "ok" for _, r in outcomes)
    hexes = {}
    for seed, r in outcomes:
        hexes.setdefault(seed, set()).add(float(r.energy).hex())
    assert all(len(h) == 1 for h in hexes.values())
    return {s: h.pop() for s, h in hexes.items()}, wall, len(outcomes)


def _over_http(url, recipes):
    """The same warm traffic POSTed through the edge."""
    t0 = time.perf_counter()
    hexes = {}
    n = 0
    for rep in range(WARM_REPEATS):
        for atoms, seed in recipes:
            body = json.dumps({
                "atoms": atoms, "seed": seed,
                "idempotency_key": f"http-{seed}-{rep}"}).encode()
            req = urllib.request.Request(
                url + "/v1/solve", data=body,
                headers={"Authorization": f"Bearer {TOKEN}"})
            with urllib.request.urlopen(req, timeout=300) as resp:
                doc = json.load(resp)
            result = doc["result"]
            assert result["status"] == "ok", result
            hexes.setdefault(seed, set()).add(result["energy_hex"])
            n += 1
    wall = time.perf_counter() - t0
    assert all(len(h) == 1 for h in hexes.values())
    return {s: h.pop() for s, h in hexes.items()}, wall, n


def _run():
    recipes = _recipes()
    pool = {seed: synthetic_protein(atoms, seed=seed)
            for atoms, seed in recipes}
    with SolveService(workers=2, queue_capacity=256) as service:
        # One cold pass primes the epol cache for both measured passes.
        warmup = [service.submit(SolveRequest(molecule=mol))
                  for mol in pool.values()]
        for t in warmup:
            assert t.result(timeout=300.0).ok
        lib_hex, lib_wall, lib_n = _in_process(service, pool)
        tenants = TenantRegistry([TenantConfig(
            name="bench", token=TOKEN, rate_per_s=10_000.0,
            burst=1_000)])
        app = EdgeApp(service, tenants, seed=11)
        with EdgeServer(app) as server:
            http_hex, http_wall, http_n = _over_http(server.url,
                                                     recipes)
    assert lib_hex == http_hex, "HTTP energies diverged from library"
    return {
        "in_process": {"requests": lib_n, "wall_seconds": lib_wall,
                       "per_request_ms": lib_wall / lib_n * 1e3},
        "over_http": {"requests": http_n, "wall_seconds": http_wall,
                      "per_request_ms": http_wall / http_n * 1e3},
        "http_overhead_ms": (http_wall / http_n
                             - lib_wall / lib_n) * 1e3,
        "energies_hex": dict(sorted(lib_hex.items())),
    }


def test_http_edge_overhead(benchmark, record_table):
    doc = run_once(benchmark, _run)
    lib = doc["in_process"]
    http = doc["over_http"]
    text = "\n".join([
        f"http edge overhead ({MOLECULES} warm molecules x "
        f"{WARM_REPEATS} repeats, epol cache hits)",
        f"in-process: {lib['requests']} req in "
        f"{lib['wall_seconds']:.3f} s "
        f"({lib['per_request_ms']:.2f} ms/req)",
        f"over HTTP : {http['requests']} req in "
        f"{http['wall_seconds']:.3f} s "
        f"({http['per_request_ms']:.2f} ms/req)",
        f"transport overhead: {doc['http_overhead_ms']:.2f} ms/req "
        f"(bitwise parity on every energy)",
    ])
    config = {"molecules": MOLECULES, "warm_repeats": WARM_REPEATS,
              "atoms": [a for a, _ in _recipes()]}
    record_table("bench_http_edge", text, rows=[doc], config=config)

    ROOT_JSON.write_text(json.dumps({
        "name": "http_edge",
        "config": config,
        "in_process": lib,
        "over_http": http,
        "http_overhead_ms": doc["http_overhead_ms"],
        "acceptance": {
            "bitwise_parity": True,
            "failed_requests": 0,
        },
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
