"""Fig. 11 (table): the large-capsid showdown at 12 and 144 cores.

Paper result (CMV shell, 509,640 atoms): OCT_MPI / OCT_MPI+CILK are
hundreds of times faster than Amber on 12 cores (488–520×) and hundreds
of times on 144 (325–430×), with < 1 % error vs the naive energy;
OCT_CILK reaches 187×.  Here the shell is a scaled stand-in, so the
factors are smaller but the ordering and the error bound must hold.
"""

from conftest import run_once

from repro.analysis.experiments import fig11_cmv_table


def test_fig11_cmv(benchmark, record_table):
    rows, text = run_once(benchmark, fig11_cmv_table)
    record_table("fig11_cmv", text, rows=rows,
                 config={"experiment": "fig11_cmv_table"})

    by_name = {r["program"]: r for r in rows}
    oct_mpi = by_name["OCT_MPI"]
    oct_hyb = by_name["OCT_MPI+CILK"]
    oct_cilk = by_name["OCT_CILK"]
    amber = by_name["Amber"]

    # Ordering at 12 cores: octree solvers ≫ Amber; OCT_CILK pays the
    # NUMA penalty but still beats Amber.
    assert oct_mpi["speedup12"] > 3.0
    assert oct_hyb["speedup12"] > 3.0
    assert oct_cilk["speedup12"] > 1.5
    # 144 cores still far ahead of Amber on 144 cores.
    assert oct_mpi["speedup144"] > 2.0
    # Accuracy: octree energies within 1 % of naive (paper: < 1 %).
    assert abs(oct_mpi["pct_diff"]) < 1.0
    assert abs(oct_cilk["pct_diff"]) < 1.0
    # Amber (HCT) is close to, but measurably off, the naive r6 energy.
    assert 0.1 < abs(amber["pct_diff"]) < 25.0
