"""Fig. 8: all packages vs the octree solvers — time and Amber-relative
speedup on 12 cores.

Paper result: OCT_MPI and OCT_MPI+CILK are the fastest throughout;
OCT_MPI reaches ≈11× over Amber at 16k atoms; Gromacs sits at ≈2.7× at
the large end; NAMD ≈ Amber; Tinker and GBr⁶ trail and eventually OOM.
"""

from conftest import run_once

from repro.analysis.experiments import fig8_packages


def test_fig8_packages(benchmark, record_table):
    rows, text = run_once(benchmark, fig8_packages)
    record_table("fig8_packages", text, rows=rows,
                 config={"cores": 12})

    largest = rows[-1]
    amber = largest["Amber"]
    # Octree dominates every package at the large end.
    for name in ("Amber", "Gromacs", "NAMD"):
        assert largest["OCT_MPI"] < largest[name]
    # OCT_MPI speedup vs Amber lands in the paper's ballpark (≈11×).
    speedup = amber / largest["OCT_MPI"]
    assert 5.0 < speedup < 40.0, speedup
    # Gromacs ≈ 2.7× Amber at the large end.
    assert 1.8 < amber / largest["Gromacs"] < 4.5
    # NAMD roughly tracks Amber (max speedup ≈ 1.1 in the paper).
    assert 0.5 < amber / largest["NAMD"] < 1.5
