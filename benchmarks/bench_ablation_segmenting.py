"""Ablation (paper conclusion, future work): cost-aware static division.

The paper's static division cuts the leaf list into equal *counts* and
notes that "explicit dynamic load balancing techniques" could "improve
the performance even further".  Cost-aware segmenting — equal modelled
*cost* per rank — is the cheapest version of that idea.  This bench
quantifies the win on a real skewed per-leaf cost profile.
"""

from conftest import run_once

from repro.analysis.experiments import PAPER_PARAMS, _profile
from repro.parallel import simulate_fig4


def _run():
    prof = _profile(9000, PAPER_PARAMS, "octree")
    count = simulate_fig4(prof, 12, 1, segmenting="count",
                          noise_sigma=0.0).wall_seconds
    weighted = simulate_fig4(prof, 12, 1, segmenting="weighted",
                             noise_sigma=0.0).wall_seconds
    return count, weighted


def test_weighted_segmenting(benchmark, record_table):
    count, weighted = run_once(benchmark, _run)
    text = ("static-division ablation (9000 atoms, OCT_MPI, 12 ranks):\n"
            f"equal-count segments:  {count * 1e3:.3f} ms\n"
            f"equal-cost segments:   {weighted * 1e3:.3f} ms "
            f"({count / weighted:.2f}x)")
    record_table("ablation_segmenting", text,
                 rows=[{"segmenting": "count", "wall_seconds": count},
                       {"segmenting": "weighted",
                        "wall_seconds": weighted}],
                 config={"natoms": 9000, "ranks": 12})
    # Cost-aware cuts never lose and usually win on skewed profiles.
    assert weighted <= count * 1.02
