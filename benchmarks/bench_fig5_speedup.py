"""Fig. 5: running time / speedup vs core count on a large capsid.

Paper result: both OCT_MPI and OCT_MPI+CILK scale to 144+ cores on the
6M-atom BTV; speedup grows with core count.  Here the BTV is a scaled
icosahedral-capsid stand-in (see DESIGN.md §2).
"""

from conftest import run_once

from repro.analysis.experiments import fig5_speedup


def test_fig5_speedup(benchmark, record_table):
    rows, text = run_once(benchmark, fig5_speedup)
    record_table("fig5_speedup", text, rows=rows,
                 config={"experiment": "fig5_speedup"})

    # Running time decreases monotonically-ish with cores for both
    # layouts (paper Fig. 5): endpoint must beat the single node well.
    assert rows[-1].mpi_seconds < 0.5 * rows[0].mpi_seconds
    assert rows[-1].hybrid_seconds < 0.5 * rows[0].hybrid_seconds
    # Speedup at the largest core count is substantial.
    assert rows[0].mpi_seconds / rows[-1].mpi_seconds > 4.0
