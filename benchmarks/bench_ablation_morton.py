"""Ablation: Morton-ordered memory layout vs random point order.

The paper credits part of its speedup to "cache-efficient data
structures" — octree leaves own *contiguous* slices of Morton-sorted
arrays, so leaf kernels stream memory instead of gathering it.  This
is the one cache effect we can measure for real on this host rather
than model: the same leaf-vs-leaf energy kernel is timed once reading
contiguous slices and once gathering the same atoms through a random
permutation.
"""

import time

import numpy as np
from conftest import run_once

from repro.analysis.experiments import suite_molecule
from repro.core.gb import inv_fgb_still
from repro.octree.build import build_octree


def _kernel_time(pos, q, R, starts, ends, index=None, repeats=3):
    """Leaf-pair energy kernels over slices (or gathered indices)."""
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0.0
        for s, e in zip(starts, ends):
            qq, rr = q[s:e], R[s:e]
            if index is None:
                p = pos[s:e]
            else:
                p = pos[index[s:e]]   # same atoms via random gather
            diff = p[:, None, :] - p[None, :, :]
            r2 = np.einsum("ijk,ijk->ij", diff, diff)
            inv = inv_fgb_still(r2, rr[:, None] * rr[None, :])
            acc += float(np.einsum("i,ij,j->", qq, inv, qq))
        best = min(best, time.perf_counter() - t0)
    return best, acc


def _measure():
    mol = suite_molecule(9000)
    tree = build_octree(mol.positions, leaf_size=64)
    pos = tree.points
    q = mol.charges[tree.perm]
    R = np.full(len(q), 2.0)
    starts = tree.start[tree.leaves]
    ends = tree.end[tree.leaves]

    contiguous, acc1 = _kernel_time(pos, q, R, starts, ends)
    # Same atoms, same arithmetic — but reached through a random gather.
    rng = np.random.default_rng(0)
    perm = rng.permutation(len(pos))
    inv_perm = np.argsort(perm)
    shuffled_pos = pos[perm]
    gathered, acc2 = _kernel_time(shuffled_pos, q, R, starts, ends,
                                  index=inv_perm)
    assert abs(acc1 - acc2) < 1e-6 * abs(acc1)
    return contiguous, gathered


def test_morton_layout_cache_effect(benchmark, record_table):
    contiguous, gathered = run_once(benchmark, _measure)
    text = ("memory-layout ablation (9000 atoms, leaf kernels, real "
            "wall time on this host):\n"
            f"Morton-contiguous slices: {contiguous * 1e3:.2f} ms\n"
            f"random-gather layout:     {gathered * 1e3:.2f} ms "
            f"({gathered / contiguous:.2f}x slower)")
    record_table("ablation_morton", text,
                 rows=[{"layout": "morton", "seconds": contiguous},
                       {"layout": "gather", "seconds": gathered}],
                 config={"natoms": 9000, "leaf_size": 64})
    # Gathering through a permutation must not be faster; on most hosts
    # it is measurably slower.
    assert gathered > 0.95 * contiguous
