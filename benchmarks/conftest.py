"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure: it runs the
corresponding :mod:`repro.analysis.experiments` function exactly once
under pytest-benchmark (``rounds=1`` — these are minutes-scale harness
runs, not microbenchmarks), prints the paper-style table, and appends it
to ``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Print a rendered table and persist it to results/<name>.txt."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
