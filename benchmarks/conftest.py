"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure: it runs the
corresponding :mod:`repro.analysis.experiments` function exactly once
under pytest-benchmark (``rounds=1`` — these are minutes-scale harness
runs, not microbenchmarks), prints the paper-style table, and persists
it to ``benchmarks/results/`` twice: the rendered text as
``<name>.txt`` and a machine-readable ``<name>.json`` carrying the
config, the per-row metrics and the measured wall seconds.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Optional

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of benchmark rows to JSON-ready data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if hasattr(value, "_asdict"):                      # namedtuple
        return {k: _jsonable(v) for k, v in value._asdict().items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:                                           # numpy scalar
            return value.item()
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):                       # numpy array
        return value.tolist()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _wall_seconds(request) -> Optional[float]:
    """Measured mean wall seconds from the test's benchmark fixture."""
    if "benchmark" not in request.fixturenames:
        return None
    stats = getattr(request.getfixturevalue("benchmark"), "stats", None)
    inner = getattr(stats, "stats", None)
    mean = getattr(inner, "mean", None)
    return float(mean) if mean is not None else None


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir, request):
    """Persist a benchmark result as ``<name>.txt`` + ``<name>.json``.

    ``text`` is printed and written verbatim (the paper-style table);
    ``rows`` (any sequence of dataclasses / namedtuples / dicts /
    tuples) and ``config`` land in the JSON document together with the
    wall seconds pytest-benchmark measured for the test.
    """

    def _record(name: str, text: str, rows: Any = None,
                config: Any = None) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        doc = {
            "name": name,
            "test": request.node.nodeid,
            "config": _jsonable(config) if config is not None else {},
            "rows": _jsonable(rows) if rows is not None else [],
            "wall_seconds": _wall_seconds(request),
        }
        (results_dir / f"{name}.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
