"""Paper §II, "Octrees vs Nblists": memory scaling with the cutoff.

An nblist's footprint grows ~cubically with the distance cutoff at
fixed density; the octree's footprint does not depend on the
approximation parameter at all.  This bench measures both on the same
molecule.
"""

from conftest import run_once

from repro.analysis.experiments import suite_molecule
from repro.baselines.nblist import NonbondedList
from repro.config import ApproxParams
from repro.octree import build_octree, octree_stats


def _measure():
    mol = suite_molecule(5200)
    cutoffs = (6.0, 9.0, 12.0, 18.0, 24.0)
    nb_bytes = [NonbondedList.build(mol.positions, c).nbytes()
                for c in cutoffs]
    tree = build_octree(mol.positions,
                        ApproxParams().leaf_size)
    return cutoffs, nb_bytes, octree_stats(tree).nbytes


def test_nblist_vs_octree_space(benchmark, record_table):
    cutoffs, nb_bytes, oct_bytes = run_once(benchmark, _measure)
    lines = ["nblist vs octree memory (5200 atoms):",
             "cutoff (Å) | nblist bytes | octree bytes (cutoff-free)"]
    for c, b in zip(cutoffs, nb_bytes):
        lines.append(f"{c:10.1f} | {b:12d} | {oct_bytes:12d}")
    record_table("nblist_space", "\n".join(lines),
                 rows=[{"cutoff": c, "nblist_bytes": b,
                        "octree_bytes": oct_bytes}
                       for c, b in zip(cutoffs, nb_bytes)],
                 config={"natoms": 5200})

    # Cubic-ish growth: doubling the cutoff from 9 → 18 Å grows the
    # nblist by ≳5× (ideal 8×, edge effects shave it).
    i9, i18 = cutoffs.index(9.0), cutoffs.index(18.0)
    assert nb_bytes[i18] > 5.0 * nb_bytes[i9]
    # At large cutoffs the octree is (much) smaller than the nblist.
    assert oct_bytes < nb_bytes[-1] / 3
