"""Fig. 10: % error and running time vs the E_pol approximation
parameter (ε_born fixed at 0.9, approximate math off).

Paper result: average error grows with ε (up to a few per cent),
running time falls; for small molecules time barely depends on ε.
"""

from conftest import run_once

from repro.analysis.experiments import fig10_epsilon_sweep


def test_fig10_epsilon_sweep(benchmark, record_table):
    rows, text = run_once(benchmark, fig10_epsilon_sweep)
    record_table("fig10_epsilon", text, rows=rows,
                 config={"eps_born": 0.9, "approx_math": False})

    errs = [r["err_avg"] for r in rows]
    times = [r["time_total"] for r in rows]
    # Error grows (weakly monotone) with eps …
    assert errs[0] <= errs[-1]
    assert errs[-1] < 5.0          # still small in absolute terms
    # … while total suite time shrinks.
    assert times[-1] < times[0]
