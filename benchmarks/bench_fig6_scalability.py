"""Fig. 6: min/max running time over 20 seeded runs per configuration.

Paper result: the hybrid's *minimum* beats pure MPI's minimum once the
core count passes ~180 (fewer ranks → less collective/sync overhead),
while the hybrid's *maximum* stays above pure MPI's maximum at every
core count (work-stealing schedule variance).
"""

from conftest import run_once

from repro.analysis.experiments import FIG56_CORES, fig6_minmax


def test_fig6_minmax(benchmark, record_table):
    out, text = run_once(benchmark, fig6_minmax)
    record_table("fig6_minmax", text,
                 rows=[{"cores": c, **out[c]} for c in FIG56_CORES],
                 config={"cores": list(FIG56_CORES)})

    high = [c for c in FIG56_CORES if c >= 192]
    low = [c for c in FIG56_CORES if c <= 96]
    # Beyond the crossover the hybrid's best run wins (paper: >180 cores).
    assert all(out[c]["hybrid"][0] < out[c]["mpi"][0] for c in high)
    # Below it, pure MPI's best run wins.
    assert all(out[c]["mpi"][0] < out[c]["hybrid"][0] for c in low)
    # Hybrid max ≥ MPI max for most configurations (schedule variance).
    worse_max = sum(out[c]["hybrid"][1] > out[c]["mpi"][1]
                    for c in FIG56_CORES)
    assert worse_max >= len(FIG56_CORES) // 2
